//! E8 — queries of varying selectivity intersected with access rights.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdds_bench::workloads;

fn bench(c: &mut Criterion) {
    let doc = workloads::hospital(2_000);
    let secure = workloads::secure(&doc, 128, 32);
    let rules = workloads::medical_rules();
    let mut group = c.benchmark_group("e8_query_mix");
    group.sample_size(10);
    for (label, query) in [("broad", "//patient"), ("narrow", "//patient/name")] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &query, |b, q| {
            b.iter(|| workloads::run_secure(&secure, &rules, "doctor", Some(q), true))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
