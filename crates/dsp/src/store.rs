//! Encrypted document and protected-rule storage.

use std::collections::BTreeMap;

use sdds_sync::sync::Arc;

use sdds_core::secdoc::SecureDocument;
use sdds_core::session::ProtectedRules;
use sdds_core::CoreError;

/// One stored document: its encrypted body plus the protected rule sets of the
/// subjects allowed to ask for it (the DSP cannot read either).
#[derive(Debug, Clone)]
pub struct DocumentRecord {
    /// The encrypted document.
    pub document: SecureDocument,
    /// Protected rule blobs, keyed by subject name. Opaque to the DSP, and
    /// `Arc`-shared so serving one is a refcount bump, not a copy.
    pub rules: BTreeMap<String, Arc<[u8]>>,
    /// Upload counter (bumped on every replacement).
    pub revision: u64,
}

/// The DSP's storage back-end.
#[derive(Debug, Default)]
pub struct DspStore {
    documents: BTreeMap<String, DocumentRecord>,
}

impl DspStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        DspStore::default()
    }

    /// Uploads (or replaces) a document, keeping any stored rule blobs.
    ///
    /// Keeping the blobs is only sound when the replacement has the same
    /// schema as the original (a content refresh): protected rules reference
    /// the document's tag vocabulary, so a replace that changes the schema
    /// must use [`DspStore::put_document_with`] with
    /// `clear_rules_on_replace = true` or the stale blobs of the previous
    /// schema keep being served.
    pub fn put_document(&mut self, document: SecureDocument) {
        self.put_document_with(document, false);
    }

    /// Uploads (or replaces) a document, choosing what happens to the
    /// protected rule blobs already stored for it. The revision is bumped on
    /// every replacement either way, so a subscriber can detect that its
    /// cached rules may predate the current document.
    pub fn put_document_with(&mut self, document: SecureDocument, clear_rules_on_replace: bool) {
        let id = document.header.doc_id.clone();
        match self.documents.get_mut(&id) {
            Some(record) => {
                record.document = document;
                record.revision += 1;
                if clear_rules_on_replace {
                    record.rules.clear();
                }
            }
            None => {
                self.documents.insert(
                    id,
                    DocumentRecord {
                        document,
                        rules: BTreeMap::new(),
                        revision: 0,
                    },
                );
            }
        }
    }

    /// Stores the protected rules of `subject` for `doc_id`.
    pub fn put_rules(
        &mut self,
        doc_id: &str,
        subject: &str,
        rules: &ProtectedRules,
    ) -> Result<(), CoreError> {
        let record = self
            .documents
            .get_mut(doc_id)
            .ok_or_else(|| CoreError::NotFound {
                doc_id: doc_id.to_owned(),
            })?;
        record
            .rules
            .insert(subject.to_owned(), rules.encode().into());
        Ok(())
    }

    /// Looks up a document record.
    pub fn get(&self, doc_id: &str) -> Option<&DocumentRecord> {
        self.documents.get(doc_id)
    }

    /// Lists stored document ids.
    pub fn document_ids(&self) -> Vec<String> {
        self.documents.keys().cloned().collect()
    }

    /// Total ciphertext bytes stored (documents only).
    pub fn stored_bytes(&self) -> usize {
        self.documents
            .values()
            .map(|r| r.document.ciphertext_len())
            .sum()
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_core::rule::RuleSet;
    use sdds_core::secdoc::SecureDocumentBuilder;
    use sdds_crypto::SecretKey;
    use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};

    fn document(id: &str) -> SecureDocument {
        let doc = generator::hospital(
            &HospitalProfile {
                patients: 2,
                ..HospitalProfile::default()
            },
            &GeneratorConfig::default(),
        );
        SecureDocumentBuilder::new(id, SecretKey::derive(b"s", "k")).build(&doc)
    }

    #[test]
    fn put_get_and_revisions() {
        let mut store = DspStore::new();
        assert!(store.is_empty());
        store.put_document(document("a"));
        store.put_document(document("b"));
        assert_eq!(store.len(), 2);
        assert_eq!(store.document_ids(), vec!["a", "b"]);
        assert_eq!(store.get("a").unwrap().revision, 0);
        store.put_document(document("a"));
        assert_eq!(store.get("a").unwrap().revision, 1);
        assert!(store.get("zzz").is_none());
        assert!(store.stored_bytes() > 0);
    }

    #[test]
    fn replace_semantics_pin_rule_blob_survival_and_clearing() {
        let key = SecretKey::derive(b"s", "rules");
        let sealed = ProtectedRules::seal(&RuleSet::parse("+, doctor, //patient").unwrap(), &key);

        // Default replace: a content refresh keeps the stored blobs and bumps
        // the revision.
        let mut store = DspStore::new();
        store.put_document(document("a"));
        store.put_rules("a", "doctor", &sealed).unwrap();
        store.put_document(document("a"));
        let record = store.get("a").unwrap();
        assert_eq!(record.revision, 1);
        assert_eq!(record.rules.len(), 1, "refresh keeps the rule blobs");

        // Schema-changing replace: the caller opts into clearing, so no stale
        // blob of the previous schema can be served afterwards.
        store.put_document_with(document("a"), true);
        let record = store.get("a").unwrap();
        assert_eq!(record.revision, 2, "revision bumps on every replacement");
        assert!(record.rules.is_empty(), "stale rule blobs are dropped");

        // First upload through the explicit path behaves like a plain insert.
        store.put_document_with(document("b"), true);
        assert_eq!(store.get("b").unwrap().revision, 0);
    }

    #[test]
    fn rules_are_stored_per_subject_as_opaque_blobs() {
        let mut store = DspStore::new();
        store.put_document(document("a"));
        let rules = RuleSet::parse("+, doctor, //patient").unwrap();
        let sealed = ProtectedRules::seal(&rules, &SecretKey::derive(b"s", "rules"));
        store.put_rules("a", "doctor", &sealed).unwrap();
        assert!(store.put_rules("nope", "doctor", &sealed).is_err());
        let record = store.get("a").unwrap();
        assert_eq!(record.rules.len(), 1);
        assert_eq!(record.rules["doctor"][..], sealed.encode()[..]);
    }
}
