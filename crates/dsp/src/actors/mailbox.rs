//! The per-actor bounded mailbox: one mutex guards the event queue *and* the
//! scheduling state, which is what makes the park/unpark hand-off race-free
//! (see the [`crate::actors`] module docs for the protocol).

use std::collections::VecDeque;

use sdds_sync::sync::{Condvar, Mutex, MutexExt};

/// Scheduling state of one actor (the full protocol is documented on
/// [`crate::actors`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MailboxState {
    /// No queued events, id in no run queue: only a send wakes the actor.
    Parked,
    /// Id sits in exactly one run queue, waiting to be claimed.
    Scheduled,
    /// Claimed: one worker is delivering this actor's events.
    Running,
    /// Retired (completed or failed): sends are rejected.
    Complete,
}

/// Queue and state, behind the one mutex of the mailbox.
#[derive(Debug)]
struct Inner<E> {
    queue: VecDeque<E>,
    state: MailboxState,
}

/// What a send did to the scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SendOutcome {
    /// The actor was parked; the caller must enqueue its id (the mailbox has
    /// already transitioned it to [`MailboxState::Scheduled`]).
    Unparked,
    /// The actor was already scheduled or running; the post-dispatch check
    /// will see the queued event, so nothing to enqueue.
    Queued,
}

/// A bounded event queue fused with the actor's scheduling state.
#[derive(Debug)]
pub(crate) struct Mailbox<E> {
    inner: Mutex<Inner<E>>,
    /// Senders blocked on a full queue wait here; drains and retirement
    /// notify.
    space: Condvar,
    capacity: usize,
}

impl<E> Mailbox<E> {
    /// A parked, empty mailbox holding at most `capacity` events (clamped to
    /// at least 1 — a zero-capacity mailbox could never accept a send).
    pub(crate) fn new(capacity: usize) -> Self {
        Mailbox {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                state: MailboxState::Parked,
            }),
            space: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Marks a parked actor as scheduled without an event (initial seeding
    /// of ready actors). Returns `false` if the actor was not parked.
    pub(crate) fn seed(&self) -> bool {
        let mut inner = self.inner.lock_np();
        if inner.state == MailboxState::Parked {
            inner.state = MailboxState::Scheduled;
            true
        } else {
            false
        }
    }

    /// Queues one event, blocking while the mailbox is full (backpressure:
    /// the driver cannot outrun the workers by more than `capacity` events
    /// per actor). Fails once the actor retired. The second half of the `Ok`
    /// pair counts how many times the sender had to block on a full queue —
    /// the backpressure-stall figure the telemetry layer tallies.
    pub(crate) fn send(&self, event: E) -> Result<(SendOutcome, usize), ()> {
        let mut inner = self.inner.lock_np();
        let mut stalls = 0;
        loop {
            if inner.state == MailboxState::Complete {
                return Err(());
            }
            if inner.queue.len() < self.capacity {
                break;
            }
            stalls += 1;
            inner = self
                .space
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        inner.queue.push_back(event);
        if inner.state == MailboxState::Parked {
            inner.state = MailboxState::Scheduled;
            Ok((SendOutcome::Unparked, stalls))
        } else {
            Ok((SendOutcome::Queued, stalls))
        }
    }

    /// Claims the actor (`Scheduled → Running`) and drains up to `batch`
    /// events for delivery. Draining frees queue space, so blocked senders
    /// are woken.
    pub(crate) fn claim(&self, batch: usize) -> Vec<E> {
        let mut inner = self.inner.lock_np();
        inner.state = MailboxState::Running;
        let take = inner.queue.len().min(batch);
        // alloc: amortized — one delivery vector per claim, amortized over the drained batch.
        let events: Vec<E> = inner.queue.drain(..take).collect();
        drop(inner);
        if !events.is_empty() {
            self.space.notify_all();
        }
        events
    }

    /// Ends a dispatch (`Running → Scheduled | Parked`): requeues when the
    /// actor is still ready or a send landed mid-dispatch, parks otherwise.
    /// Returns `true` iff the caller must put the id back on a run queue.
    /// This is the worker's half of the no-lost-wakeup hand-off: the queue
    /// check and the state transition happen under the same mutex a sender
    /// uses.
    pub(crate) fn release(&self, ready: bool) -> bool {
        let mut inner = self.inner.lock_np();
        if ready || !inner.queue.is_empty() {
            inner.state = MailboxState::Scheduled;
            true
        } else {
            inner.state = MailboxState::Parked;
            false
        }
    }

    /// Retires the actor: undelivered events are dropped (returned as a
    /// count) and blocked senders are woken to observe the retirement.
    pub(crate) fn retire(&self) -> usize {
        let mut inner = self.inner.lock_np();
        inner.state = MailboxState::Complete;
        let dropped = inner.queue.len();
        inner.queue.clear();
        drop(inner);
        self.space.notify_all();
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_unparks_exactly_once() {
        let mailbox: Mailbox<u32> = Mailbox::new(4);
        assert_eq!(mailbox.send(1), Ok((SendOutcome::Unparked, 0)));
        // Already scheduled: further sends only queue.
        assert_eq!(mailbox.send(2), Ok((SendOutcome::Queued, 0)));
        let events = mailbox.claim(8);
        assert_eq!(events, vec![1, 2]);
        // Drained and not ready: parks, so the next send unparks again.
        assert!(!mailbox.release(false));
        assert_eq!(mailbox.send(3), Ok((SendOutcome::Unparked, 0)));
    }

    #[test]
    fn release_requeues_when_a_send_raced_the_dispatch() {
        let mailbox: Mailbox<u32> = Mailbox::new(4);
        assert_eq!(mailbox.send(1), Ok((SendOutcome::Unparked, 0)));
        let events = mailbox.claim(1);
        assert_eq!(events, vec![1]);
        // A send lands while the actor is Running: no unpark...
        assert_eq!(mailbox.send(2), Ok((SendOutcome::Queued, 0)));
        // ...but the release sees the queued event and requeues.
        assert!(mailbox.release(false));
        assert_eq!(mailbox.claim(1), vec![2]);
        assert!(!mailbox.release(false));
    }

    #[test]
    fn retirement_rejects_sends_and_drops_the_queue() {
        let mailbox: Mailbox<u32> = Mailbox::new(4);
        assert_eq!(mailbox.send(1), Ok((SendOutcome::Unparked, 0)));
        assert_eq!(mailbox.send(2), Ok((SendOutcome::Queued, 0)));
        assert_eq!(mailbox.retire(), 2);
        assert_eq!(mailbox.send(3), Err(()));
    }

    #[test]
    fn seeding_schedules_only_parked_actors() {
        let mailbox: Mailbox<u32> = Mailbox::new(4);
        assert!(mailbox.seed());
        assert!(!mailbox.seed(), "already scheduled");
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mailbox: Mailbox<u32> = Mailbox::new(0);
        assert_eq!(mailbox.send(7), Ok((SendOutcome::Unparked, 0)));
        assert_eq!(mailbox.claim(1), vec![7]);
    }
}
