//! Shim atomics.
//!
//! Each shim atomic wraps the real `std` atomic and inserts one scheduling
//! point before every operation, so the DFS explores the interleavings of
//! atomic accesses with everything else. The model serializes execution, so
//! the *memory ordering* argument has no observable effect under the model —
//! the shim performs every inner operation `SeqCst` and explores reorderings
//! at the scheduling level instead. This checks interleaving races (lost
//! updates, check-then-act windows), not weak-memory behaviour.

pub use std::sync::atomic::Ordering;

use crate::exec::current_ctx;

macro_rules! shim_atomic {
    ($name:ident, $inner:path, $value:ty) => {
        /// Model-checked stand-in for the `std` atomic of the same name.
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $inner,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(value: $value) -> Self {
                Self {
                    inner: <$inner>::new(value),
                }
            }

            fn point() {
                if let Some(ctx) = current_ctx() {
                    ctx.point();
                }
            }

            /// Loads the value (`order` is accepted for API parity; the model
            /// always runs the inner operation `SeqCst`).
            pub fn load(&self, _order: Ordering) -> $value {
                Self::point();
                // ordering: the model serialises every step, so SeqCst
                // underneath costs nothing and is never weaker than the
                // ordering the caller asked for.
                self.inner.load(Ordering::SeqCst)
            }

            /// Stores `value`.
            pub fn store(&self, value: $value, _order: Ordering) {
                Self::point();
                // ordering: see `load` — the model always runs SeqCst.
                self.inner.store(value, Ordering::SeqCst)
            }

            /// Atomically replaces the value, returning the previous one.
            pub fn swap(&self, value: $value, _order: Ordering) -> $value {
                Self::point();
                // ordering: see `load` — the model always runs SeqCst.
                self.inner.swap(value, Ordering::SeqCst)
            }

            /// Atomically adds, returning the previous value.
            pub fn fetch_add(&self, value: $value, _order: Ordering) -> $value {
                Self::point();
                // ordering: see `load` — the model always runs SeqCst.
                self.inner.fetch_add(value, Ordering::SeqCst)
            }

            /// Atomically subtracts, returning the previous value.
            pub fn fetch_sub(&self, value: $value, _order: Ordering) -> $value {
                Self::point();
                // ordering: see `load` — the model always runs SeqCst.
                self.inner.fetch_sub(value, Ordering::SeqCst)
            }

            /// Consumes the atomic, returning the inner value.
            pub fn into_inner(self) -> $value {
                self.inner.into_inner()
            }

            /// Mutable access without synchronization (requires exclusive
            /// ownership).
            pub fn get_mut(&mut self) -> &mut $value {
                self.inner.get_mut()
            }
        }

        impl From<$value> for $name {
            fn from(value: $value) -> Self {
                Self::new(value)
            }
        }
    };
}

shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
shim_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);

/// Model-checked stand-in for [`std::sync::atomic::AtomicBool`].
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a new atomic flag with the given initial value.
    pub const fn new(value: bool) -> Self {
        AtomicBool {
            inner: std::sync::atomic::AtomicBool::new(value),
        }
    }

    fn point() {
        if let Some(ctx) = current_ctx() {
            ctx.point();
        }
    }

    /// Loads the flag.
    pub fn load(&self, _order: Ordering) -> bool {
        Self::point();
        // ordering: see the integer shims — the model always runs SeqCst.
        self.inner.load(Ordering::SeqCst)
    }

    /// Stores the flag.
    pub fn store(&self, value: bool, _order: Ordering) {
        Self::point();
        // ordering: see `load` — the model always runs SeqCst.
        self.inner.store(value, Ordering::SeqCst)
    }

    /// Atomically replaces the flag, returning the previous value.
    pub fn swap(&self, value: bool, _order: Ordering) -> bool {
        Self::point();
        // ordering: see `load` — the model always runs SeqCst.
        self.inner.swap(value, Ordering::SeqCst)
    }

    /// Consumes the atomic, returning the inner value.
    pub fn into_inner(self) -> bool {
        self.inner.into_inner()
    }
}
