//! Streaming execution of the rule automata (§2.3), over the shared dispatch
//! automaton of [`crate::dispatch`].
//!
//! "When an open or a value event is received, all the automata are checked
//! and go to their next state. Upon receiving a close event, all the automata
//! backtrack. To manage these automata efficiently, we use a stack that keeps
//! track of active states, materializing all the possible paths that can be
//! followed on the non-deterministic automata. [...] This is controlled using
//! a predicate set which records all the final states of predicates that have
//! been reached. [...] the rule is said to be pending [...]"
//!
//! [`RuleEngine`] implements that machinery, but instead of checking *all* the
//! automata per event (which scales linearly with the installed rule count —
//! the E1 cliff), it dispatches through one combined structure:
//!
//! * the **token stack** is the per-depth `Frame` vector: every navigational
//!   state activated by an element is recorded in that element's frame and
//!   discarded when the element closes (backtracking),
//! * active states sit on [`DispatchTable`] trie nodes shared by every rule
//!   with the same step prefix, and are additionally indexed in **per-symbol
//!   buckets**: an `open` event interns its name to a symbol (one hash probe)
//!   and only touches the states actually waiting on that symbol (plus the
//!   wildcard waiters),
//! * the **predicate set** is the [`InstanceId`] space: every deferred
//!   predicate encountered along a navigational run spawns a *pending
//!   instance* referencing an arena-backed `PredProgram` (no per-instance
//!   copy of the predicate), resolved to `true` when its predicate path
//!   reaches its final state (and its value condition holds) or to `false`
//!   when its context element closes,
//! * **pending rules** are rule matches whose status is
//!   [`MatchAlternatives`] with unresolved instances; the decision they imply
//!   is deferred by the view assembler until the instances resolve.
//!
//! Rules can be added and removed mid-stream ([`RuleEngine::add_rule`] /
//! [`RuleEngine::remove_rule`]): the dispatch trie is rebuilt (symbols and
//! predicate programs are append-only, so live state stays valid) and the
//! active runs are remapped onto the new trie, preserving the matches of every
//! rule that survives the change.
//!
//! The engine does **not** decide anything by itself: it annotates the event
//! stream with the rule/query matches of each node and emits instance
//! resolutions; conflict resolution and view construction happen downstream in
//! [`crate::assembler`], mirroring the sign-stack of the paper.

use std::collections::HashMap;

use sdds_xml::{Attribute, Event};
use sdds_xpath::Axis;

use crate::automaton::{CompiledPath, ValueCondition};
use crate::dispatch::{DispatchTable, EdgeId, NodeId, PredId, Target};
use crate::rule::{AccessRule, RuleId, Sign};

/// Identifier of a pending predicate instance (an entry of the paper's
/// *predicate set*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u32);

/// The alternatives under which a rule (or the query) matches a node: each
/// alternative is a conjunction of pending instances that must all resolve to
/// `true`; the match applies if **any** alternative holds. An empty
/// conjunction means the match holds unconditionally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchAlternatives {
    /// The alternatives.
    pub alternatives: Vec<Vec<InstanceId>>,
}

impl MatchAlternatives {
    /// Adds one alternative (a conjunction of instance ids).
    pub fn add(&mut self, conjunction: Vec<InstanceId>) {
        // An unconditional alternative makes every other alternative redundant.
        if conjunction.is_empty() {
            self.alternatives.clear();
            self.alternatives.push(conjunction);
        } else if !self.is_unconditional() {
            self.alternatives.push(conjunction);
        }
    }

    /// True if the match holds whatever the pending instances resolve to.
    pub fn is_unconditional(&self) -> bool {
        self.alternatives.iter().any(Vec::is_empty)
    }

    /// Evaluates the match against the currently known instance truths.
    /// Returns `Some(true)` / `Some(false)` when determined, `None` while at
    /// least one relevant instance is still unresolved.
    pub fn evaluate(&self, truth: &dyn Fn(InstanceId) -> Option<bool>) -> Option<bool> {
        let mut any_unknown = false;
        for alt in &self.alternatives {
            let mut all_true = true;
            let mut unknown = false;
            for &id in alt {
                match truth(id) {
                    Some(true) => {}
                    Some(false) => {
                        all_true = false;
                        break;
                    }
                    None => {
                        unknown = true;
                        all_true = false;
                    }
                }
            }
            if all_true {
                return Some(true);
            }
            if unknown {
                any_unknown = true;
            }
        }
        if any_unknown {
            None
        } else {
            Some(false)
        }
    }

    /// All instance ids mentioned by the alternatives.
    pub fn instance_ids(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.alternatives.iter().flatten().copied()
    }
}

/// A rule that reached its navigational final state on a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectMatch {
    /// The rule.
    pub rule: RuleId,
    /// Its sign.
    pub sign: Sign,
    /// Conditions under which the match actually applies.
    pub matches: MatchAlternatives,
}

/// Per-node annotation produced by the engine for `open` events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeAnnotation {
    /// Rules whose navigational path ends on this node.
    pub direct: Vec<DirectMatch>,
    /// Query match on this node, if a query is installed and its navigational
    /// path ends here.
    pub query: Option<MatchAlternatives>,
}

/// Output of the engine for one input event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineOutput {
    /// The input event, annotated for `open` events.
    Annotated {
        /// The event.
        event: Event,
        /// Node annotation (`Some` for `Open`, `None` otherwise).
        annotation: Option<NodeAnnotation>,
    },
    /// A pending predicate instance was resolved.
    Resolved {
        /// The instance.
        instance: InstanceId,
        /// Whether the predicate is satisfied.
        satisfied: bool,
    },
}

/// An active navigational state: the runs of a frame sit on the trie node the
/// element owning the frame moved them to.
#[derive(Debug, Clone)]
struct Run {
    node: NodeId,
    deps: Vec<InstanceId>,
}

/// An active state of a predicate path instance (`position` steps of the
/// instance's program are matched).
#[derive(Debug, Clone, Copy)]
struct PredRun {
    instance: InstanceId,
    position: u32,
}

/// Direct-text accumulator for a value condition (`[. = "v"]`, `[c = "v"]`).
#[derive(Debug, Clone)]
struct Watcher {
    instance: InstanceId,
    condition: Option<ValueCondition>,
    buffer: String,
    saw_text: bool,
}

/// Runtime state of a pending predicate instance: one bit of truth plus a
/// reference into the shared predicate arena. The program itself lives in the
/// [`DispatchTable`] (program memory, like the compiled rules), not in the
/// per-instance secure RAM.
#[derive(Debug, Clone, Copy)]
struct InstanceSlot {
    resolved: Option<bool>,
    pred: PredId,
}

/// Bucket id of the wildcard waiters (named waiters use the symbol index).
const WILD_BUCKET: u32 = u32::MAX;

/// An entry of a per-symbol bucket: an active state waiting on that symbol.
#[derive(Debug, Clone, Copy)]
enum BucketEntry {
    /// `frames[depth].runs[run]` can advance across `edge`.
    Nav { depth: u32, run: u32, edge: EdgeId },
    /// `frames[depth].pred_runs[run]` can advance on this symbol.
    Pred { depth: u32, run: u32 },
}

impl BucketEntry {
    fn depth(self) -> u32 {
        match self {
            BucketEntry::Nav { depth, .. } | BucketEntry::Pred { depth, .. } => depth,
        }
    }
}

/// One entry of the token stack: everything activated by the element at the
/// corresponding depth.
#[derive(Debug, Default)]
struct Frame {
    runs: Vec<Run>,
    pred_runs: Vec<PredRun>,
    watchers: Vec<Watcher>,
    owned_instances: Vec<InstanceId>,
    /// Buckets this frame registered entries into; popped on close.
    touched: Vec<u32>,
}

impl Frame {
    fn ram_bytes(&self) -> usize {
        // With interned names the stack entry itself is a token id, not the
        // tag string: charge a small fixed bookkeeping cost per frame.
        4 + self
            .runs
            .iter()
            .map(|r| 8 + 4 * r.deps.len())
            .sum::<usize>()
            + self.pred_runs.len() * 6
            + self
                .watchers
                .iter()
                .map(|w| 8 + w.buffer.len())
                .sum::<usize>()
            + self.owned_instances.len() * 4
            + self.touched.len() * 2
    }
}

/// A rule installed in the engine.
#[derive(Debug, Clone)]
pub struct EngineRule {
    /// Rule identifier.
    pub id: RuleId,
    /// Sign.
    pub sign: Sign,
    /// Compiled object path.
    pub path: CompiledPath,
}

impl EngineRule {
    /// Compiles an [`AccessRule`] for the engine.
    pub fn compile(rule: &AccessRule) -> Result<Self, crate::error::CoreError> {
        Ok(EngineRule {
            id: rule.id,
            sign: rule.sign,
            path: crate::automaton::compile(&rule.object)?,
        })
    }
}

/// Counters exposed by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events processed.
    pub events: usize,
    /// Pending predicate instances created.
    pub instances_created: usize,
    /// Navigational state activations (token stack pushes).
    pub run_activations: usize,
    /// Peak secure-RAM footprint of the engine structures, in bytes.
    pub peak_ram_bytes: usize,
    /// Combined-automaton rebuilds triggered by rule updates.
    pub dispatch_rebuilds: usize,
}

/// A rule-or-query key stable across rule vector reindexing, used to remap
/// active runs when the dispatch trie is rebuilt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TargetKey {
    Rule(RuleId),
    Query,
}

/// Trie-independent image of the active runs (per frame, per run: the stable
/// `(target, position)` pairs of its node plus its instance dependencies).
type RunSnapshot = Vec<Vec<(Vec<(TargetKey, u32)>, Vec<InstanceId>)>>;

/// The streaming automata engine.
#[derive(Debug)]
pub struct RuleEngine {
    rules: Vec<EngineRule>,
    query: Option<CompiledPath>,
    table: DispatchTable,
    frames: Vec<Frame>,
    instances: Vec<InstanceSlot>,
    /// Per-symbol buckets of active states (indexed by symbol), plus the
    /// wildcard bucket. Entries are appended when a frame registers its runs
    /// and truncated when the frame closes (entries of a bucket are in
    /// non-decreasing depth order, so a close pops a suffix).
    buckets: Vec<Vec<BucketEntry>>,
    wild_bucket: Vec<BucketEntry>,
    /// Reusable per-event scratch (candidate snapshot).
    scratch: Vec<BucketEntry>,
    root_scratch: Vec<EdgeId>,
    /// Unresolved pending instances (incremental — the instance pool is
    /// append-only, so scanning it per event would be quadratic in stream
    /// length).
    unresolved_instances: usize,
    /// Live entries across all buckets (incremental, same reason).
    bucket_entries: usize,
    stats: EngineStats,
}

impl RuleEngine {
    /// Creates an engine for a set of compiled rules and an optional query.
    pub fn new(rules: Vec<EngineRule>, query: Option<CompiledPath>) -> Self {
        let table = DispatchTable::build(rules.iter().map(|r| &r.path), query.as_ref());
        let symbol_count = table.symbols().len();
        RuleEngine {
            rules,
            query,
            table,
            // frames[0] is the virtual document node.
            // alloc: startup — engine construction at session open.
            frames: vec![Frame::default()],
            instances: Vec::new(),
            // alloc: startup — engine construction at session open.
            buckets: vec![Vec::new(); symbol_count],
            wild_bucket: Vec::new(),
            scratch: Vec::new(),
            root_scratch: Vec::new(),
            unresolved_instances: 0,
            bucket_entries: 0,
            stats: EngineStats::default(),
        }
    }

    /// Installed rules.
    pub fn rules(&self) -> &[EngineRule] {
        &self.rules
    }

    /// Installed query automaton, if any.
    pub fn query(&self) -> Option<&CompiledPath> {
        self.query.as_ref()
    }

    /// The combined dispatch structure (introspection / statistics).
    pub fn dispatch(&self) -> &DispatchTable {
        &self.table
    }

    /// Engine counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Current element depth (0 before the root opens).
    pub fn depth(&self) -> usize {
        self.frames.len() - 1
    }

    /// Positions (numbers of matched navigational steps) currently active for
    /// each installed rule, including the implicit initial position 0. The
    /// skip-index logic uses these to ask whether a rule could still progress
    /// inside an upcoming subtree.
    pub fn active_positions(&self) -> Vec<Vec<usize>> {
        // alloc: amortized — one position list per skip probe, bounded by the rule count.
        let mut positions = vec![vec![0usize]; self.rules.len()];
        for frame in &self.frames {
            for run in &frame.runs {
                for &(target, pos) in &self.table.node(run.node).positions {
                    if let Target::Rule(i) = target {
                        if !positions[i].contains(&(pos as usize)) {
                            positions[i].push(pos as usize);
                        }
                    }
                }
            }
        }
        positions
    }

    /// Active positions of the query automaton (empty when no query is set).
    pub fn active_query_positions(&self) -> Vec<usize> {
        if self.query.is_none() {
            return Vec::new();
        }
        // alloc: amortized — one position list per skip probe, bounded by the rule count.
        let mut positions = vec![0usize];
        for frame in &self.frames {
            for run in &frame.runs {
                for &(target, pos) in &self.table.node(run.node).positions {
                    if target == Target::Query && !positions.contains(&(pos as usize)) {
                        positions.push(pos as usize);
                    }
                }
            }
        }
        positions
    }

    /// True if at least one pending predicate instance is unresolved.
    pub fn has_unresolved_instances(&self) -> bool {
        self.unresolved_instances > 0
    }

    /// Current secure-RAM footprint of the engine structures, in bytes. Only
    /// the token stack is walked (bounded by document depth); the instance and
    /// bucket contributions are tracked incrementally.
    pub fn ram_bytes(&self) -> usize {
        let frames: usize = self.frames.iter().map(Frame::ram_bytes).sum();
        // An unresolved instance is one predicate-set entry referencing a
        // shared program (the program itself lives with the compiled rules in
        // program memory); resolved instances boil down to one bit.
        frames + self.bucket_entries * 4 + self.unresolved_instances * 8 + self.instances.len() / 8
    }

    /// Installs an additional rule mid-stream. The combined automaton is
    /// rebuilt (symbols and predicate programs are reused) and the active runs
    /// of the existing rules are preserved; the new rule starts matching from
    /// the current stream position.
    ///
    /// Retroactivity over the *currently open* subtree is best-effort: the
    /// events that opened it are gone, so partial matches for the new rule
    /// cannot be reconstructed in general (in particular, predicate evidence
    /// seen before the addition is unrecoverable). Prefixes the new rule
    /// shares with existing rules keep their live runs (and immediately serve
    /// it); unshared prefixes begin matching at the next element opening.
    /// Security-sensitive callers should apply policy changes between
    /// documents — the paper's model — where this distinction vanishes.
    ///
    /// Fails on a duplicate rule id: run remapping across the rebuild is
    /// keyed by rule id, so two rules sharing one id would corrupt the live
    /// state of both.
    pub fn add_rule(&mut self, rule: EngineRule) -> Result<(), crate::error::CoreError> {
        if self.rules.iter().any(|r| r.id == rule.id) {
            return Err(crate::error::CoreError::BadState {
                message: format!("rule id {} is already installed", rule.id.0),
            });
        }
        let snapshot = self.snapshot_runs();
        self.rules.push(rule);
        self.rebuild_dispatch(snapshot);
        Ok(())
    }

    /// Removes a rule by id mid-stream; returns true if it was installed.
    /// Pending instances spawned by the removed rule resolve normally (their
    /// resolutions simply stop influencing any match).
    pub fn remove_rule(&mut self, id: RuleId) -> bool {
        let Some(pos) = self.rules.iter().position(|r| r.id == id) else {
            return false;
        };
        let snapshot = self.snapshot_runs();
        self.rules.remove(pos);
        self.rebuild_dispatch(snapshot);
        true
    }

    /// Captures, per frame, each active run as its stable `(target key,
    /// position)` pairs plus its dependencies — the trie-independent view of
    /// the run used for remapping.
    fn snapshot_runs(&self) -> RunSnapshot {
        self.frames
            .iter()
            .map(|frame| {
                frame
                    .runs
                    .iter()
                    .map(|run| {
                        let keys = self
                            .table
                            .node(run.node)
                            .positions
                            .iter()
                            .map(|&(t, p)| (self.target_key(t), p))
                            .collect();
                        (keys, run.deps.clone())
                    })
                    .collect()
            })
            .collect()
    }

    fn target_key(&self, target: Target) -> TargetKey {
        match target {
            Target::Rule(i) => TargetKey::Rule(self.rules[i].id),
            Target::Query => TargetKey::Query,
        }
    }

    /// Rebuilds the dispatch trie for the current rule vector and remaps the
    /// snapshotted runs onto it. Incremental in the sense that the symbol
    /// table and predicate arena are reused and only the live runs (bounded by
    /// depth × distinct prefixes) are re-registered.
    fn rebuild_dispatch(&mut self, snapshot: RunSnapshot) {
        self.stats.dispatch_rebuilds += 1;
        self.table
            .rebuild(self.rules.iter().map(|r| &r.path), self.query.as_ref());
        let key_map: HashMap<(TargetKey, u32), NodeId> = self
            .table
            .position_map()
            .into_iter()
            .map(|((t, p), n)| {
                let key = match t {
                    Target::Rule(i) => TargetKey::Rule(self.rules[i].id),
                    Target::Query => TargetKey::Query,
                };
                ((key, p), n)
            })
            .collect();

        // Remap runs: every (target, position) pair of an old node maps to the
        // same new node (nodes group prefix-equal paths), so the first
        // surviving pair locates it.
        for (frame, old_runs) in self.frames.iter_mut().zip(snapshot) {
            frame.runs.clear();
            for (keys, deps) in old_runs {
                let Some(&node) = keys.iter().find_map(|k| key_map.get(k)) else {
                    continue; // every rule of this prefix was removed
                };
                if !frame.runs.iter().any(|r| r.node == node && r.deps == deps) {
                    frame.runs.push(Run { node, deps });
                }
            }
        }

        // Re-register every live state in the (resized) buckets, in depth
        // order so each bucket stays sorted by depth.
        self.buckets.clear();
        self.buckets
            .resize_with(self.table.symbols().len(), Vec::new);
        self.wild_bucket.clear();
        self.bucket_entries = 0;
        for depth in 0..self.frames.len() {
            let frame = &mut self.frames[depth];
            frame.touched.clear();
            register_frame(
                &self.table,
                &self.instances,
                frame,
                depth as u32,
                &mut self.buckets,
                &mut self.wild_bucket,
                &mut self.bucket_entries,
            );
        }
    }

    /// Processes one event and returns the engine outputs it triggers.
    pub fn process(&mut self, event: &Event) -> Vec<EngineOutput> {
        self.stats.events += 1;
        let mut outputs = Vec::new();
        match event {
            Event::Open { name, attrs } => self.process_open(name, attrs, event, &mut outputs),
            Event::Text(text) => self.process_text(text, event, &mut outputs),
            Event::Close(_) => self.process_close(event, &mut outputs),
        }
        self.stats.peak_ram_bytes = self.stats.peak_ram_bytes.max(self.ram_bytes());
        outputs
    }

    fn process_open(
        &mut self,
        name: &str,
        attrs: &[Attribute],
        event: &Event,
        outputs: &mut Vec<EngineOutput>,
    ) {
        let depth = self.frames.len(); // depth of the element being opened
        let sym = self.table.symbols().lookup(name);

        // Snapshot the candidates: initial transitions for this symbol plus
        // the bucketed active states waiting on it (or on a wildcard). New
        // states registered by this event only participate for descendants.
        let mut root_scratch = std::mem::take(&mut self.root_scratch);
        root_scratch.clear();
        root_scratch.extend(self.table.root_edges(sym));
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        if let Some(s) = sym {
            scratch.extend_from_slice(&self.buckets[s.index()]);
        }
        scratch.extend_from_slice(&self.wild_bucket);

        let mut new_frame = Frame::default();
        let mut direct: Vec<(usize, MatchAlternatives)> = Vec::new();
        let mut query_match: Option<MatchAlternatives> = None;
        let mut memo: Vec<(PredId, InstanceId)> = Vec::new();

        {
            let RuleEngine {
                ref table,
                ref frames,
                ref mut instances,
                ref mut unresolved_instances,
                ref mut stats,
                ..
            } = *self;
            let mut scope = OpenScope {
                table,
                instances,
                unresolved: unresolved_instances,
                stats,
                outputs,
                new_frame: &mut new_frame,
                memo: &mut memo,
                direct: &mut direct,
                query_match: &mut query_match,
                depth,
                attrs,
            };

            for &edge in &root_scratch {
                scope.fire_edge(edge, 0, &[]);
            }
            for &entry in &scratch {
                match entry {
                    BucketEntry::Nav {
                        depth: run_depth,
                        run,
                        edge,
                    } => {
                        let deps = &frames[run_depth as usize].runs[run as usize].deps;
                        scope.fire_edge(edge, run_depth as usize, deps);
                    }
                    BucketEntry::Pred {
                        depth: run_depth,
                        run,
                    } => {
                        let pr = frames[run_depth as usize].pred_runs[run as usize];
                        scope.advance_pred(pr, run_depth as usize);
                    }
                }
            }
        }
        self.scratch = scratch;
        self.root_scratch = root_scratch;

        // Assemble the annotation and push + register the frame.
        let mut annotation = NodeAnnotation {
            // alloc: amortized — annotation scratch bounded by the rules matching this node.
            direct: Vec::with_capacity(direct.len()),
            query: query_match,
        };
        direct.sort_unstable_by_key(|(i, _)| *i);
        for (i, matches) in direct {
            annotation.direct.push(DirectMatch {
                rule: self.rules[i].id,
                sign: self.rules[i].sign,
                matches,
            });
        }
        self.frames.push(new_frame);
        // lint: infallible — pushed on the preceding line.
        let frame = self.frames.last_mut().expect("frame just pushed");
        register_frame(
            &self.table,
            &self.instances,
            frame,
            depth as u32,
            &mut self.buckets,
            &mut self.wild_bucket,
            &mut self.bucket_entries,
        );
        outputs.push(EngineOutput::Annotated {
            // alloc: amortized — the hand-off to the assembler owns its event; one copy per node.
            event: event.clone(),
            annotation: Some(annotation),
        });
    }

    fn process_text(&mut self, text: &str, event: &Event, outputs: &mut Vec<EngineOutput>) {
        // Feed the watchers of the element directly containing this text.
        let depth = self.frames.len() - 1;
        let mut resolved_now: Vec<(InstanceId, bool)> = Vec::new();
        if depth >= 1 {
            let frame = &mut self.frames[depth];
            for w in &mut frame.watchers {
                if self.instances[w.instance.0 as usize].resolved.is_some() {
                    continue;
                }
                w.buffer.push_str(text);
                w.saw_text = true;
                if w.condition.is_none() && !text.trim().is_empty() {
                    // Existence of direct text is enough.
                    resolved_now.push((w.instance, true));
                }
            }
        }
        for (id, value) in resolved_now {
            resolve_instance(
                &mut self.instances,
                &mut self.unresolved_instances,
                outputs,
                id,
                value,
            );
        }
        outputs.push(EngineOutput::Annotated {
            // alloc: amortized — the hand-off to the assembler owns its event; one copy per node.
            event: event.clone(),
            annotation: None,
        });
    }

    fn process_close(&mut self, event: &Event, outputs: &mut Vec<EngineOutput>) {
        let depth = (self.frames.len() - 1) as u32;
        // lint: infallible — the tokenizer only emits balanced events, so
        // every close has a matching open frame.
        let frame = self.frames.pop().expect("close without a matching open");
        // Unregister the frame's bucket entries (always the bucket suffix:
        // registrations only ever target the innermost open element).
        for &b in &frame.touched {
            let bucket = if b == WILD_BUCKET {
                &mut self.wild_bucket
            } else {
                &mut self.buckets[b as usize]
            };
            while bucket.last().is_some_and(|e| e.depth() == depth) {
                bucket.pop();
                self.bucket_entries -= 1;
            }
        }
        // Evaluate the direct-text watchers anchored on the closing element.
        for w in &frame.watchers {
            if self.instances[w.instance.0 as usize].resolved.is_some() {
                continue;
            }
            if let Some(condition) = &w.condition {
                if w.saw_text && condition.holds(&w.buffer) {
                    resolve_instance(
                        &mut self.instances,
                        &mut self.unresolved_instances,
                        outputs,
                        w.instance,
                        true,
                    );
                }
                // A failed candidate does not fail the instance: another
                // element matched by the predicate path may still satisfy it.
            }
        }
        // Instances whose context element closes without having been satisfied
        // are now definitely unsatisfied.
        for id in &frame.owned_instances {
            resolve_instance(
                &mut self.instances,
                &mut self.unresolved_instances,
                outputs,
                *id,
                false,
            );
        }
        outputs.push(EngineOutput::Annotated {
            // alloc: amortized — the hand-off to the assembler owns its event; one copy per node.
            event: event.clone(),
            annotation: None,
        });
    }
}

/// Mutable context of one `open` event (split borrows of the engine).
struct OpenScope<'a> {
    table: &'a DispatchTable,
    instances: &'a mut Vec<InstanceSlot>,
    unresolved: &'a mut usize,
    stats: &'a mut EngineStats,
    outputs: &'a mut Vec<EngineOutput>,
    new_frame: &'a mut Frame,
    /// Per-event memo: one pending instance per deferred predicate, shared by
    /// every run/rule reaching this element through it (the predicate is
    /// anchored on the element, not on the path that led here).
    memo: &'a mut Vec<(PredId, InstanceId)>,
    direct: &'a mut Vec<(usize, MatchAlternatives)>,
    query_match: &'a mut Option<MatchAlternatives>,
    depth: usize,
    attrs: &'a [Attribute],
}

impl OpenScope<'_> {
    /// Fires one navigational transition from a run at `run_depth` (the bucket
    /// guarantees the name test already matched).
    fn fire_edge(&mut self, edge_id: EdgeId, run_depth: usize, deps: &[InstanceId]) {
        let edge = self.table.edge(edge_id);
        let axis_ok = match edge.axis {
            Axis::Child => run_depth == self.depth - 1,
            Axis::Descendant => run_depth < self.depth,
        };
        if !axis_ok {
            return;
        }
        if !edge.immediate.iter().all(|check| {
            attr_holds(
                self.attrs,
                self.table.symbols().resolve(check.name),
                check.condition.as_ref(),
            )
        }) {
            return;
        }
        // alloc: amortized — dependency list per fired edge, bounded by the edge's deferred predicates.
        let mut new_deps = deps.to_vec();
        for &pid in &edge.deferred {
            new_deps.push(self.instance_for(pid));
        }
        for &target in &edge.accepts {
            match target {
                Target::Rule(i) => {
                    let matches = match self.direct.iter_mut().find(|(r, _)| *r == i) {
                        Some((_, m)) => m,
                        None => {
                            self.direct.push((i, MatchAlternatives::default()));
                            // lint: infallible — pushed on the line above.
                            &mut self.direct.last_mut().expect("just pushed").1
                        }
                    };
                    // alloc: amortized — alternative sets share the per-edge dependency list, bounded by rule fan-out.
                    matches.add(new_deps.clone());
                }
                Target::Query => {
                    self.query_match
                        .get_or_insert_with(MatchAlternatives::default)
                        // alloc: amortized — alternative sets share the per-edge dependency list, bounded by rule fan-out.
                        .add(new_deps.clone());
                }
            }
        }
        if let Some(node) = edge.to {
            self.stats.run_activations += 1;
            self.new_frame.runs.push(Run {
                node,
                deps: new_deps,
            });
        }
    }

    /// The pending instance for a deferred predicate of the element being
    /// opened, creating it on first use within the event.
    fn instance_for(&mut self, pid: PredId) -> InstanceId {
        if let Some(&(_, id)) = self.memo.iter().find(|(p, _)| *p == pid) {
            return id;
        }
        let id = InstanceId(self.instances.len() as u32);
        self.stats.instances_created += 1;
        *self.unresolved += 1;
        self.instances.push(InstanceSlot {
            resolved: None,
            pred: pid,
        });
        let program = self.table.pred(pid);
        if program.is_self_text() {
            self.new_frame.watchers.push(Watcher {
                instance: id,
                // alloc: amortized — a watcher captures its predicate condition once per instantiation.
                condition: program.condition.clone(),
                buffer: String::new(),
                saw_text: false,
            });
        } else {
            // The initial state of the predicate path lives in the context
            // element's frame.
            self.new_frame.pred_runs.push(PredRun {
                instance: id,
                position: 0,
            });
        }
        self.new_frame.owned_instances.push(id);
        self.memo.push((pid, id));
        id
    }

    /// Advances one predicate-path run (the bucket guarantees the name test).
    fn advance_pred(&mut self, pr: PredRun, run_depth: usize) {
        let slot = self.instances[pr.instance.0 as usize];
        if slot.resolved.is_some() {
            return;
        }
        let program = self.table.pred(slot.pred);
        let step = &program.steps[pr.position as usize];
        let axis_ok = match step.axis {
            Axis::Child => run_depth == self.depth - 1,
            Axis::Descendant => run_depth < self.depth,
        };
        if !axis_ok {
            return;
        }
        if pr.position as usize + 1 == program.steps.len() {
            // Final state of the predicate path reached on this element.
            if let Some(attr_sym) = program.attribute {
                let attr_name = self.table.symbols().resolve(attr_sym);
                if attr_holds(self.attrs, attr_name, program.condition.as_ref()) {
                    resolve_instance(
                        self.instances,
                        self.unresolved,
                        self.outputs,
                        pr.instance,
                        true,
                    );
                }
            } else if program.condition.is_none() {
                // Pure existence test.
                resolve_instance(
                    self.instances,
                    self.unresolved,
                    self.outputs,
                    pr.instance,
                    true,
                );
            } else {
                // A value condition on the element's direct text: watch it.
                self.new_frame.watchers.push(Watcher {
                    instance: pr.instance,
                    // alloc: amortized — a watcher captures its predicate condition once per instantiation.
                    condition: program.condition.clone(),
                    buffer: String::new(),
                    saw_text: false,
                });
            }
        } else {
            self.new_frame.pred_runs.push(PredRun {
                instance: pr.instance,
                position: pr.position + 1,
            });
        }
    }
}

/// `[@name]` / `[@name = "v"]` against an open tag's attributes: the attribute
/// must exist and, when a condition is given, satisfy it. Shared by the
/// immediate edge checks and the final step of attribute predicate paths.
fn attr_holds(attrs: &[Attribute], name: &str, condition: Option<&ValueCondition>) -> bool {
    match attrs.iter().find(|a| a.name == name) {
        Some(attr) => condition.map(|c| c.holds(&attr.value)).unwrap_or(true),
        None => false,
    }
}

fn resolve_instance(
    instances: &mut [InstanceSlot],
    unresolved: &mut usize,
    outputs: &mut Vec<EngineOutput>,
    id: InstanceId,
    satisfied: bool,
) {
    let slot = &mut instances[id.0 as usize];
    if slot.resolved.is_none() {
        slot.resolved = Some(satisfied);
        *unresolved -= 1;
        outputs.push(EngineOutput::Resolved {
            instance: id,
            satisfied,
        });
    }
}

/// Registers every run and predicate run of `frame` (at `depth`) in the
/// per-symbol buckets, recording the touched buckets on the frame.
fn register_frame(
    table: &DispatchTable,
    instances: &[InstanceSlot],
    frame: &mut Frame,
    depth: u32,
    buckets: &mut [Vec<BucketEntry>],
    wild_bucket: &mut Vec<BucketEntry>,
    entries: &mut usize,
) {
    let Frame {
        runs,
        pred_runs,
        touched,
        ..
    } = frame;
    let mut push = |sym: Option<sdds_xml::Symbol>, entry: BucketEntry| {
        let (id, bucket) = match sym {
            Some(s) => (s.0, &mut buckets[s.index()]),
            None => (WILD_BUCKET, &mut *wild_bucket),
        };
        bucket.push(entry);
        *entries += 1;
        if touched.last() != Some(&id) {
            touched.push(id);
        }
    };
    for (i, run) in runs.iter().enumerate() {
        for &e in &table.node(run.node).edges {
            push(
                table.edge(e).sym,
                BucketEntry::Nav {
                    depth,
                    run: i as u32,
                    edge: e,
                },
            );
        }
    }
    for (i, pr) in pred_runs.iter().enumerate() {
        let program = table.pred(instances[pr.instance.0 as usize].pred);
        let step = &program.steps[pr.position as usize];
        push(
            step.sym,
            BucketEntry::Pred {
                depth,
                run: i as u32,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::compile_str;
    use sdds_xml::Parser;

    fn engine_for(rules: &[(&str, Sign)], query: Option<&str>) -> RuleEngine {
        let compiled: Vec<EngineRule> = rules
            .iter()
            .enumerate()
            .map(|(i, (expr, sign))| EngineRule {
                id: RuleId(i as u32),
                sign: *sign,
                path: compile_str(expr).unwrap(),
            })
            .collect();
        RuleEngine::new(compiled, query.map(|q| compile_str(q).unwrap()))
    }

    fn run(engine: &mut RuleEngine, doc: &str) -> Vec<EngineOutput> {
        let events = Parser::parse_all(doc).unwrap();
        events.iter().flat_map(|e| engine.process(e)).collect()
    }

    /// Collects, for each element (in document order), the rules that matched
    /// unconditionally on it.
    fn unconditional_matches(outputs: &[EngineOutput]) -> Vec<(String, Vec<u32>)> {
        let mut out = Vec::new();
        for o in outputs {
            if let EngineOutput::Annotated {
                event: Event::Open { name, .. },
                annotation: Some(ann),
            } = o
            {
                let rules: Vec<u32> = ann
                    .direct
                    .iter()
                    .filter(|d| d.matches.is_unconditional())
                    .map(|d| d.rule.0)
                    .collect();
                out.push((name.clone(), rules));
            }
        }
        out
    }

    fn resolutions(outputs: &[EngineOutput]) -> Vec<(u32, bool)> {
        outputs
            .iter()
            .filter_map(|o| match o {
                EngineOutput::Resolved {
                    instance,
                    satisfied,
                } => Some((instance.0, *satisfied)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn simple_child_path_matches_expected_nodes() {
        let mut e = engine_for(&[("/a/b", Sign::Permit)], None);
        let out = run(&mut e, "<a><b/><c><b/></c><b/></a>");
        let matches = unconditional_matches(&out);
        // Only the two b children of a match /a/b; the nested one does not.
        assert_eq!(
            matches,
            vec![
                ("a".into(), vec![]),
                ("b".into(), vec![0]),
                ("c".into(), vec![]),
                ("b".into(), vec![]),
                ("b".into(), vec![0]),
            ]
        );
    }

    #[test]
    fn descendant_and_wildcard_paths() {
        let mut e = engine_for(&[("//b", Sign::Permit), ("/a/*", Sign::Deny)], None);
        let out = run(&mut e, "<a><b><b/></b><c/></a>");
        let matches = unconditional_matches(&out);
        assert_eq!(
            matches,
            vec![
                ("a".into(), vec![]),
                ("b".into(), vec![0, 1]), // //b and /a/*
                ("b".into(), vec![0]),    // //b only (not a child of a)
                ("c".into(), vec![1]),    // /a/* only
            ]
        );
    }

    #[test]
    fn attribute_predicates_filter_matches_immediately() {
        let mut e = engine_for(&[("//item[@sensitive = \"true\"]", Sign::Deny)], None);
        let out = run(
            &mut e,
            "<r><item sensitive=\"true\"/><item sensitive=\"false\"/><item/></r>",
        );
        let matches = unconditional_matches(&out);
        assert_eq!(matches[1].1, vec![0]);
        assert!(matches[2].1.is_empty());
        assert!(matches[3].1.is_empty());
        // No pending instance was needed.
        assert_eq!(e.stats().instances_created, 0);
    }

    #[test]
    fn figure2_rule_is_pending_until_predicate_resolves() {
        // //b[c]/d with the c arriving *after* d: the match on d must be
        // conditional, and the instance must resolve to true later.
        let mut e = engine_for(&[("//b[c]/d", Sign::Permit)], None);
        let out = run(&mut e, "<r><b><d>x</d><c/></b></r>");
        // The d node match is conditional (no unconditional match recorded).
        let matches = unconditional_matches(&out);
        assert!(matches.iter().all(|(_, rules)| rules.is_empty()));
        // One instance created, resolved true when c opens.
        assert_eq!(e.stats().instances_created, 1);
        assert_eq!(resolutions(&out), vec![(0, true)]);
        // And the conditional match on d references that instance.
        let d_annotation = out
            .iter()
            .find_map(|o| match o {
                EngineOutput::Annotated {
                    event: Event::Open { name, .. },
                    annotation: Some(ann),
                } if name == "d" => Some(ann.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(d_annotation.direct.len(), 1);
        assert_eq!(
            d_annotation.direct[0].matches.alternatives,
            vec![vec![InstanceId(0)]]
        );
    }

    #[test]
    fn unsatisfied_predicate_resolves_false_at_context_close() {
        let mut e = engine_for(&[("//b[c]/d", Sign::Permit)], None);
        let out = run(&mut e, "<r><b><d>x</d></b><b><c/><d>y</d></b></r>");
        // First b: no c => instance resolves false at </b>.
        // Second b: c present => instance resolves true; d match conditional on it.
        let res = resolutions(&out);
        assert!(res.contains(&(0, false)));
        assert!(res.contains(&(1, true)));
        assert_eq!(e.stats().instances_created, 2);
    }

    #[test]
    fn value_condition_on_element_text() {
        let mut e = engine_for(&[("//act[date = \"2004\"]/report", Sign::Permit)], None);
        let out = run(
            &mut e,
            "<r><act><date>2004</date><report>a</report></act><act><date>2005</date><report>b</report></act></r>",
        );
        let res = resolutions(&out);
        // First act: date text matches => true. Second act: never satisfied =>
        // false at </act>.
        assert!(res.contains(&(0, true)));
        assert!(res.contains(&(1, false)));
    }

    #[test]
    fn self_text_condition() {
        let mut e = engine_for(&[("//rating[. <= 12]", Sign::Deny)], None);
        let out = run(&mut e, "<r><rating>7</rating><rating>16</rating></r>");
        let res = resolutions(&out);
        assert!(res.contains(&(0, true)));
        assert!(res.contains(&(1, false)));
    }

    #[test]
    fn query_matches_are_annotated_separately() {
        let mut e = engine_for(&[("//b", Sign::Permit)], Some("//c"));
        let out = run(&mut e, "<a><b/><c/></a>");
        let mut saw_query = false;
        for o in &out {
            if let EngineOutput::Annotated {
                event: Event::Open { name, .. },
                annotation: Some(ann),
            } = o
            {
                if name == "c" {
                    assert!(ann.query.as_ref().unwrap().is_unconditional());
                    saw_query = true;
                } else {
                    assert!(ann.query.is_none());
                }
            }
        }
        assert!(saw_query);
        assert_eq!(e.active_query_positions(), vec![0]);
    }

    #[test]
    fn active_positions_reflect_partial_matches() {
        let mut e = engine_for(&[("/a/b/c", Sign::Permit)], None);
        let events = Parser::parse_all("<a><b><c/></b></a>").unwrap();
        e.process(&events[0]); // <a>
        assert_eq!(e.active_positions(), vec![vec![0, 1]]);
        e.process(&events[1]); // <b>
        assert_eq!(e.active_positions(), vec![vec![0, 1, 2]]);
        e.process(&events[2]); // <c>
        e.process(&events[3]); // </c>
        e.process(&events[4]); // </b>
        assert_eq!(e.active_positions(), vec![vec![0, 1]]);
        e.process(&events[5]); // </a>
        assert_eq!(e.active_positions(), vec![vec![0]]);
        assert_eq!(e.depth(), 0);
    }

    #[test]
    fn backtracking_discards_runs_created_in_closed_subtrees() {
        let mut e = engine_for(&[("//b//d", Sign::Permit)], None);
        let out = run(&mut e, "<a><b><x/></b><d/></a>");
        // The d element is NOT under a b (the b closed before), so no match.
        let matches = unconditional_matches(&out);
        assert!(matches.iter().all(|(_, rules)| rules.is_empty()));
    }

    #[test]
    fn match_alternatives_evaluation() {
        let mut m = MatchAlternatives::default();
        m.add(vec![InstanceId(0), InstanceId(1)]);
        m.add(vec![InstanceId(2)]);
        let truth = |known: Vec<(u32, bool)>| {
            move |id: InstanceId| known.iter().find(|(i, _)| *i == id.0).map(|(_, v)| *v)
        };
        assert_eq!(m.evaluate(&truth(vec![])), None);
        assert_eq!(m.evaluate(&truth(vec![(0, true), (1, true)])), Some(true));
        assert_eq!(m.evaluate(&truth(vec![(2, true)])), Some(true));
        assert_eq!(
            m.evaluate(&truth(vec![(0, false), (2, false)])),
            Some(false)
        );
        assert_eq!(m.evaluate(&truth(vec![(0, false)])), None);
        // Unconditional alternative short-circuits everything.
        m.add(vec![]);
        assert!(m.is_unconditional());
        assert_eq!(m.evaluate(&truth(vec![])), Some(true));
        assert_eq!(m.instance_ids().count(), 0);
    }

    #[test]
    fn ram_accounting_grows_with_depth_and_shrinks_on_close() {
        let mut e = engine_for(&[("//a//a//a", Sign::Permit)], None);
        let deep: String = (0..10).map(|_| "<a>").collect::<String>()
            + &(0..10).map(|_| "</a>").collect::<String>();
        let events = Parser::parse_all(&deep).unwrap();
        let mut max_seen = 0usize;
        for ev in &events[..10] {
            e.process(ev);
            max_seen = max_seen.max(e.ram_bytes());
        }
        let at_peak = e.ram_bytes();
        for ev in &events[10..] {
            e.process(ev);
        }
        assert!(e.ram_bytes() < at_peak);
        assert!(e.stats().peak_ram_bytes >= max_seen);
        assert!(e.stats().run_activations > 0);
    }

    #[test]
    fn multiple_rules_matching_same_node_are_all_reported() {
        let mut e = engine_for(
            &[
                ("//patient/name", Sign::Permit),
                ("//name", Sign::Deny),
                ("/hospital/patient/name", Sign::Permit),
            ],
            None,
        );
        let out = run(
            &mut e,
            "<hospital><patient><name>x</name></patient></hospital>",
        );
        let name_ann = out
            .iter()
            .find_map(|o| match o {
                EngineOutput::Annotated {
                    event: Event::Open { name, .. },
                    annotation: Some(ann),
                } if name == "name" => Some(ann.clone()),
                _ => None,
            })
            .unwrap();
        let rule_ids: Vec<u32> = name_ann.direct.iter().map(|d| d.rule.0).collect();
        assert_eq!(rule_ids, vec![0, 1, 2]);
    }

    #[test]
    fn duplicate_rules_share_one_path_and_both_match() {
        let mut e = engine_for(
            &[
                ("//patient/name", Sign::Permit),
                ("//patient/name", Sign::Deny),
            ],
            None,
        );
        assert_eq!(e.dispatch().edge_count(), 2, "duplicate objects collapse");
        let out = run(&mut e, "<h><patient><name>x</name></patient></h>");
        let matches = unconditional_matches(&out);
        assert_eq!(matches[2], ("name".into(), vec![0, 1]));
    }

    #[test]
    fn add_rule_mid_stream_matches_remaining_elements() {
        let mut e = engine_for(&[("//a", Sign::Permit)], None);
        let events = Parser::parse_all("<r><b/><b/></r>").unwrap();
        let mut out = Vec::new();
        out.extend(e.process(&events[0])); // <r>
        out.extend(e.process(&events[1])); // <b/> — not matched yet
        out.extend(e.process(&events[2]));
        e.add_rule(EngineRule {
            id: RuleId(7),
            sign: Sign::Deny,
            path: compile_str("//b").unwrap(),
        })
        .unwrap();
        // A duplicate id is rejected: the rebuild remap is keyed by rule id.
        assert!(e
            .add_rule(EngineRule {
                id: RuleId(7),
                sign: Sign::Permit,
                path: compile_str("//c").unwrap(),
            })
            .is_err());
        for ev in &events[3..] {
            out.extend(e.process(ev));
        }
        let matches = unconditional_matches(&out);
        assert_eq!(
            matches,
            vec![
                ("r".into(), vec![]),
                ("b".into(), vec![]),  // before the grant
                ("b".into(), vec![7]), // after the grant
            ]
        );
        assert!(e.stats().dispatch_rebuilds >= 1);
    }

    #[test]
    fn remove_rule_mid_stream_stops_matching_and_preserves_others() {
        let mut e = engine_for(&[("//x/y", Sign::Permit), ("//y", Sign::Deny)], None);
        let events = Parser::parse_all("<r><x><y/><y/></x></r>").unwrap();
        let mut out = Vec::new();
        // Process through the first <y/> (events: <r>, <x>, <y>, </y>).
        for ev in &events[..4] {
            out.extend(e.process(ev));
        }
        // Remove //x/y while <x> is still open; rule 1 (//y) keeps matching.
        assert!(e.remove_rule(RuleId(0)));
        assert!(!e.remove_rule(RuleId(0)), "already removed");
        for ev in &events[4..] {
            out.extend(e.process(ev));
        }
        let matches = unconditional_matches(&out);
        assert_eq!(
            matches,
            vec![
                ("r".into(), vec![]),
                ("x".into(), vec![]),
                ("y".into(), vec![0, 1]), // both rules before the removal
                ("y".into(), vec![1]),    // only //y after
            ]
        );
    }

    #[test]
    fn rebuild_preserves_active_descendant_runs() {
        // A run deep inside the document must survive an unrelated rule
        // addition: //a//c is two steps into its path when the rebuild hits.
        let mut e = engine_for(&[("//a//c", Sign::Permit)], None);
        let events = Parser::parse_all("<a><b><c/></b></a>").unwrap();
        let mut out = Vec::new();
        out.extend(e.process(&events[0])); // <a>
        out.extend(e.process(&events[1])); // <b>
        e.add_rule(EngineRule {
            id: RuleId(9),
            sign: Sign::Deny,
            path: compile_str("//zzz").unwrap(),
        })
        .unwrap();
        for ev in &events[2..] {
            out.extend(e.process(ev));
        }
        let matches = unconditional_matches(&out);
        assert_eq!(matches[2], ("c".into(), vec![0]));
    }
}
