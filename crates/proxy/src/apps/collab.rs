//! Demonstration application 1: collaborative work within a community.
//!
//! "The first application deals with collaborative works among a community of
//! users" (§3). A community (family, friends, research team) shares documents
//! through an untrusted DSP; every member holds a smart card personalised for
//! them; the sharing policy is user-specific and changes over time — which is
//! exactly what static encryption schemes handle poorly (§1) and what the SOE
//! approach makes cheap: a policy change is just a new protected rule set.

use sdds_card::{CardProfile, CostModel, LatencyBreakdown};
use sdds_core::rule::{RuleSet, Sign, Subject};
use sdds_core::secdoc::SecureDocumentBuilder;
use sdds_core::session::TrustedServer;
use sdds_dsp::DspServer;
use sdds_xml::Document;

use crate::pki::SimulatedPki;
use crate::proxy::{ProxyError, Terminal};

/// Per-member outcome of one access to the shared document.
#[derive(Debug, Clone)]
pub struct MemberAccess {
    /// Member name.
    pub member: String,
    /// Authorized view delivered by the member's card.
    pub view: String,
    /// Bytes served by the DSP for this access.
    pub bytes_from_dsp: usize,
    /// Simulated latency of the access on the e-gate cost model.
    pub latency: LatencyBreakdown,
}

/// A collaborative workspace: one community document, one trusted rule issuer,
/// one DSP, one terminal per member.
pub struct CollaborativeWorkspace {
    community_secret: Vec<u8>,
    server: TrustedServer,
    dsp: DspServer,
    doc_id: String,
    card_profile: CardProfile,
}

impl CollaborativeWorkspace {
    /// Creates a workspace: publishes `document` (encrypted) on a fresh DSP
    /// under the community's document key and installs the initial policy.
    pub fn new(
        community_secret: &[u8],
        doc_id: &str,
        document: &Document,
        initial_rules: RuleSet,
        card_profile: CardProfile,
    ) -> Self {
        let server = TrustedServer::new(community_secret, initial_rules);
        let secure = SecureDocumentBuilder::new(doc_id, server.document_key()).build(document);
        let mut dsp = DspServer::new();
        dsp.store_mut().put_document(secure);
        CollaborativeWorkspace {
            community_secret: community_secret.to_vec(),
            server,
            dsp,
            doc_id: doc_id.to_owned(),
            card_profile,
        }
    }

    /// The trusted rule issuer (to inspect or change the policy).
    pub fn server(&self) -> &TrustedServer {
        &self.server
    }

    /// The DSP (to inspect serving statistics).
    pub fn dsp(&self) -> &DspServer {
        &self.dsp
    }

    /// Members named in the current policy.
    pub fn members(&self) -> Vec<Subject> {
        self.server.rules().subjects()
    }

    /// Changes the policy: adds a rule for `member`. Nothing happens to the
    /// stored document — no re-encryption, no key redistribution.
    pub fn grant(&mut self, member: &str, sign: Sign, object: &str) -> Result<(), ProxyError> {
        self.server
            .rules_mut()
            .push(sign, member, object)
            .map_err(ProxyError::Core)?;
        Ok(())
    }

    /// Issues and provisions a terminal + card for `member`.
    pub fn terminal_for(&self, member: &str) -> Result<Terminal, ProxyError> {
        let pki = SimulatedPki::new(&self.community_secret);
        let subject = Subject::new(member);
        let mut terminal =
            Terminal::issue_card(member, pki.card_transport_key(&subject), self.card_profile);
        terminal.provision_from(&self.server)?;
        Ok(terminal)
    }

    /// One member accesses the shared document (optionally through a query).
    pub fn access(
        &mut self,
        member: &str,
        query: Option<&str>,
    ) -> Result<MemberAccess, ProxyError> {
        let mut terminal = self.terminal_for(member)?;
        if let Some(q) = query {
            terminal.set_query(q)?;
        }
        self.dsp.reset_stats();
        let view = terminal.evaluate_from_dsp(&mut self.dsp, &self.doc_id)?;
        Ok(MemberAccess {
            member: member.to_owned(),
            view,
            bytes_from_dsp: self.dsp.stats().bytes_served,
            latency: terminal.latency(&CostModel::egate()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_xml::generator::{self, CommunityProfile, GeneratorConfig};

    fn workspace() -> CollaborativeWorkspace {
        let doc = generator::community(
            &CommunityProfile {
                members: 3,
                ..CommunityProfile::default()
            },
            &GeneratorConfig::default(),
        );
        let rules = RuleSet::parse(
            "+, alice, /community\n\
             -, alice, //budget\n\
             +, bob, //member/name\n\
             +, bob, //project/title",
        )
        .unwrap();
        CollaborativeWorkspace::new(
            b"research-team",
            "team-doc",
            &doc,
            rules,
            CardProfile::modern_secure_element(),
        )
    }

    #[test]
    fn members_see_their_own_views() {
        let mut ws = workspace();
        assert_eq!(ws.members().len(), 2);
        let alice = ws.access("alice", None).unwrap();
        assert!(alice.view.contains("<project"));
        assert!(!alice.view.contains("<budget>"));
        assert!(alice.bytes_from_dsp > 0);
        assert!(alice.latency.total().as_secs_f64() > 0.0);

        let bob = ws.access("bob", None).unwrap();
        assert!(bob.view.contains("<title>"));
        assert!(!bob.view.contains("<note>"));
        assert!(bob.view.len() < alice.view.len());

        // An outsider gets an empty view.
        let eve = ws.access("eve", None).unwrap();
        assert!(eve.view.is_empty());
    }

    #[test]
    fn policy_changes_take_effect_without_touching_the_document() {
        let mut ws = workspace();
        let stored_before = ws.dsp().store().stored_bytes();
        let before = ws.access("bob", None).unwrap();
        assert!(!before.view.contains("<budget>"));

        ws.grant("bob", Sign::Permit, "//project/budget").unwrap();
        let after = ws.access("bob", None).unwrap();
        assert!(after.view.contains("<budget>"));
        // The encrypted document at the DSP did not change at all.
        assert_eq!(ws.dsp().store().stored_bytes(), stored_before);
        assert_eq!(ws.dsp().store().get("team-doc").unwrap().revision, 0);
    }

    #[test]
    fn queries_restrict_member_views() {
        let mut ws = workspace();
        let access = ws.access("alice", Some("//member/name")).unwrap();
        assert!(access.view.contains("<name>"));
        assert!(!access.view.contains("<project"));
    }
}
