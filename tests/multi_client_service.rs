//! Integration test of the E10 multi-client DSP service: the sharded store
//! must actually buy aggregate throughput under load, on the deterministic
//! simulated clock the whole workspace measures with (counters × model
//! rates), so this assertion holds on any hardware.

use sdds_bench::workloads::{hot_document, multi_client, HotDocumentConfig, MultiClientConfig};

#[test]
fn sixteen_shards_triple_aggregate_throughput_at_64_clients() {
    let one_shard = multi_client(MultiClientConfig::new(64, 1));
    let sixteen_shards = multi_client(MultiClientConfig::new(64, 16));

    // Work conservation: sharding changes where requests queue, not what is
    // served or evaluated.
    assert_eq!(one_shard.total_events, sixteen_shards.total_events);
    assert!(one_shard.total_events > 0);

    // The acceptance bar of the E10 experiment: ≥ 3× aggregate simulated
    // throughput at 64 clients with 16 shards versus 1 shard. (The measured
    // ratio is far higher; 3× is the contract.)
    let ratio = sixteen_shards.events_per_s() / one_shard.events_per_s();
    assert!(
        ratio >= 3.0,
        "16 shards must give >= 3x aggregate throughput at 64 clients, got {ratio:.2}x \
         ({:.0} vs {:.0} events/s)",
        sixteen_shards.events_per_s(),
        one_shard.events_per_s(),
    );

    // Under 64-client load the single shard is the bottleneck: its serial
    // service time dominates the makespan; with 16 shards the service side
    // stops dominating the cards by anything like that margin.
    assert!(one_shard.busiest_shard > one_shard.slowest_session());
    assert!(sixteen_shards.busiest_shard < one_shard.busiest_shard);

    // Batched APDU fan-out really coalesced round-trips in both runs.
    assert!(sixteen_shards.apdus_saved > 0);
    assert_eq!(one_shard.apdus_saved, sixteen_shards.apdus_saved);

    // Latency percentiles are well formed and heterogeneous subjects give a
    // real spread.
    let p50 = sixteen_shards.latency_percentile(0.50);
    let p99 = sixteen_shards.latency_percentile(0.99);
    assert!(p50 > std::time::Duration::ZERO);
    assert!(p99 >= p50);
}

#[test]
fn replicating_the_hot_document_doubles_aggregate_throughput() {
    // The hot-document scenario: every client pulls the SAME folder, so the
    // shard count alone buys nothing — all requests queue on the one home
    // shard. Replication is the lever the ROADMAP names; the acceptance bar
    // is >= 2x aggregate simulated throughput with the document pinned to
    // every shard versus the single-copy path. (The harness gates the full
    // 256-client point as `e10.hot.*`; 96 clients keep this tier-1 test
    // quick while exercising the same contention.)
    let single_copy = hot_document(HotDocumentConfig::new(96, 16, 1));
    let replicated = hot_document(HotDocumentConfig::new(96, 16, 16));

    // Replication changes where requests are served, not what is served.
    assert_eq!(single_copy.total_events, replicated.total_events);
    assert!(single_copy.total_events > 0);
    assert_eq!(single_copy.apdus_saved, replicated.apdus_saved);

    let ratio = replicated.events_per_s() / single_copy.events_per_s();
    assert!(
        ratio >= 2.0,
        "pinning the hot document to every shard must give >= 2x aggregate \
         throughput, got {ratio:.2}x ({:.0} vs {:.0} events/s)",
        replicated.events_per_s(),
        single_copy.events_per_s(),
    );

    // Under single-copy load the home shard paces everything; replication
    // takes it off the critical path.
    assert!(single_copy.busiest_shard > single_copy.slowest_session());
    assert!(replicated.busiest_shard < single_copy.busiest_shard);
}

#[test]
fn a_single_client_gains_nothing_from_sharding() {
    // Sharding is a load phenomenon: one card cannot saturate even one shard,
    // so its throughput is card-bound and identical under both layouts.
    let one = multi_client(MultiClientConfig::new(1, 1));
    let sixteen = multi_client(MultiClientConfig::new(1, 16));
    assert_eq!(one.total_events, sixteen.total_events);
    assert!((one.events_per_s() - sixteen.events_per_s()).abs() < 1e-6);
    assert!(one.busiest_shard < one.slowest_session());
}
