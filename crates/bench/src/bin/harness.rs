//! Prints, for every experiment E1–E9 of EXPERIMENTS.md, the table or series
//! the paper's evaluation corresponds to.
//!
//! Run with: `cargo run -p sdds-bench --bin harness --release`

use std::time::Instant;

use sdds_bench::workloads;
use sdds_card::{CardProfile, CostModel};
use sdds_core::baseline::{DomBaseline, StaticEncryptionScheme};
use sdds_core::conflict::AccessPolicy;
use sdds_core::evaluator::{EvaluatorConfig, StreamingEvaluator};
use sdds_core::rule::{RuleSet, Sign, Subject};
use sdds_core::secdoc::SecureDocumentBuilder;
use sdds_core::skipindex::encode::{DocumentEncoder, EncoderConfig};
use sdds_proxy::apps::dissem::DisseminationApp;
use sdds_xml::generator::{self, Corpus, GeneratorConfig};
use sdds_xml::stats::DocStats;

fn banner(id: &str, title: &str) {
    println!("\n==================================================================");
    println!("{id} — {title}");
    println!("==================================================================");
}

fn e1_rules_scaling() {
    banner("E1", "streaming evaluation cost vs. number of access rules");
    let doc = workloads::hospital(4_000);
    let events = doc.to_events();
    println!("document: {}", DocStats::from_events(&events).summary());
    println!("{:>8} {:>14} {:>16} {:>14}", "#rules", "wall time (ms)", "events/s", "peak RAM (B)");
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let rules = workloads::rule_pool(n);
        let config = EvaluatorConfig::new(rules, "subject");
        let start = Instant::now();
        let (_, stats) = StreamingEvaluator::evaluate_all(&config, &events).unwrap();
        let elapsed = start.elapsed().as_secs_f64();
        println!(
            "{:>8} {:>14.2} {:>16.0} {:>14}",
            n,
            elapsed * 1e3,
            events.len() as f64 / elapsed,
            stats.peak_ram_bytes()
        );
    }
}

fn e2_skip_index() {
    banner("E2", "skip index: transferred/decrypted volume, with vs. without");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "elements", "subject", "plain (B)", "no-index (B)", "index (B)", "saving", "egate (s)"
    );
    for elements in [1_000usize, 4_000, 12_000] {
        let doc = workloads::hospital(elements);
        let secure = workloads::secure(&doc, 128, 32);
        for subject in ["doctor", "secretary"] {
            let with = workloads::run_secure(&secure, &workloads::medical_rules(), subject, None, true);
            let without =
                workloads::run_secure(&secure, &workloads::medical_rules(), subject, None, false);
            let saving = 1.0
                - with.ledger.bytes_decrypted as f64 / without.ledger.bytes_decrypted.max(1) as f64;
            println!(
                "{:>10} {:>10} {:>12} {:>12} {:>10} {:>11.0}% {:>12.1}",
                elements,
                subject,
                secure.header.plaintext_len,
                without.ledger.bytes_decrypted,
                with.ledger.bytes_decrypted,
                saving * 100.0,
                workloads::egate_seconds(&with),
            );
        }
    }
}

fn e3_index_overhead() {
    banner("E3", "skip index compactness (overhead vs. recursive compression)");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "corpus", "tokens (B)", "summaries", "index (B)", "overhead", "recursive"
    );
    for corpus in Corpus::all() {
        let doc = corpus.generate(4_000, &GeneratorConfig::default());
        for recursive in [true, false] {
            let enc = DocumentEncoder::new(EncoderConfig {
                min_index_bytes: 32,
                recursive_bitmaps: recursive,
                ..EncoderConfig::default()
            })
            .encode(&doc);
            println!(
                "{:>10} {:>12} {:>12} {:>12} {:>11.2}% {:>10}",
                corpus.name(),
                enc.stats.token_bytes,
                enc.stats.summaries,
                enc.stats.index_bytes,
                enc.index_overhead() * 100.0,
                recursive
            );
        }
    }
}

fn e4_ram_budget() {
    banner("E4", "secure working memory vs. document depth and rule count (1 KiB budget)");
    println!(
        "{:>8} {:>8} {:>16} {:>14}",
        "depth", "#rules", "peak RAM (B)", "fits e-gate?"
    );
    let budget = CardProfile::egate().ram_bytes;
    for depth in [4usize, 8, 16, 32, 64] {
        for n_rules in [4usize, 16, 64] {
            let doc = generator::deep_chain(depth, &GeneratorConfig::default());
            let rules = workloads::rule_pool(n_rules);
            let config = EvaluatorConfig::new(rules, "subject");
            let events = doc.to_events();
            let (_, stats) = StreamingEvaluator::evaluate_all(&config, &events).unwrap();
            let peak = stats.peak_ram_bytes();
            println!(
                "{:>8} {:>8} {:>16} {:>14}",
                depth,
                n_rules,
                peak,
                if peak <= budget { "yes" } else { "NO" }
            );
        }
    }
}

fn e5_latency_breakdown() {
    banner("E5", "pull-mode latency breakdown on the e-gate cost model");
    for corpus in [Corpus::Hospital, Corpus::Community, Corpus::Catalog] {
        let doc = corpus.generate(2_000, &GeneratorConfig::default());
        let secure = SecureDocumentBuilder::new("bench-doc", workloads::bench_key())
            .chunk_size(128)
            .build(&doc);
        let rules = match corpus {
            Corpus::Hospital => workloads::medical_rules(),
            _ => RuleSet::parse("+, secretary, //name\n+, secretary, //title").unwrap(),
        };
        let stats = workloads::run_secure(&secure, &rules, "secretary", None, true);
        let breakdown = stats.ledger.breakdown(&CostModel::egate());
        println!("{:>10}: {}", corpus.name(), breakdown.summary_ms());
        let modern = stats.ledger.breakdown(&CostModel::modern_secure_element());
        println!(
            "{:>10}  (modern secure element: total {:.1} ms)",
            "", modern.total().as_secs_f64() * 1e3
        );
    }
}

fn e6_dissemination() {
    banner("E6", "push-mode selective dissemination throughput (parental control)");
    let stream = workloads::stream(30);
    let (rules, policy) = workloads::parental_rules();
    let app = DisseminationApp::new(b"bench", &stream, rules, CardProfile::modern_secure_element());
    let report = app.consume_in_process("child", policy).unwrap();
    println!(
        "items: {} delivered / {} blocked; worst per-item latency {:.1} ms; total {:.2} s; skipped {} B",
        report.items_delivered,
        report.items_blocked,
        report.max_item_latency.as_secs_f64() * 1e3,
        report.total_latency.as_secs_f64(),
        report.bytes_skipped
    );
    for period_ms in [500u64, 1000, 2000] {
        println!(
            "  sustains 1 item / {period_ms} ms on the e-gate model: {}",
            report.meets_real_time(std::time::Duration::from_millis(period_ms))
        );
    }
}

fn e7_dynamic_rules() {
    banner("E7", "cost of a policy change: SOE approach vs. server-side static encryption");
    let doc = workloads::hospital(2_000);
    let policy = AccessPolicy::paper();
    println!(
        "{:>28} {:>18} {:>14} {:>12}",
        "policy change", "re-encrypted (B)", "keys redistrib.", "SOE cost (B)"
    );
    let changes: Vec<(&str, Box<dyn Fn(&mut RuleSet)>)> = vec![
        (
            "grant nurse //patient/name",
            Box::new(|r: &mut RuleSet| {
                r.push(Sign::Permit, "nurse", "//patient/name").unwrap();
            }),
        ),
        (
            "revoke secretary address",
            Box::new(|r: &mut RuleSet| {
                r.push(Sign::Deny, "secretary", "//patient/address").unwrap();
            }),
        ),
        (
            "grant researcher //acts",
            Box::new(|r: &mut RuleSet| {
                r.push(Sign::Permit, "researcher", "//acts").unwrap();
            }),
        ),
    ];
    let mut rules = workloads::medical_rules();
    let mut scheme = StaticEncryptionScheme::build(&doc, &rules, &policy);
    for (label, change) in changes {
        change(&mut rules);
        let cost = scheme.apply_rule_change(&doc, &rules, &policy);
        // The SOE approach only ships a new protected rule set to the subject.
        let soe_cost = rules.encode().len() + 64;
        println!(
            "{:>28} {:>18} {:>14} {:>12}",
            label, cost.bytes_reencrypted, cost.keys_redistributed, soe_cost
        );
    }
    println!(
        "(static scheme: {} equivalence classes; doctor holds {} keys)",
        scheme.class_count(),
        scheme.keys_held_by(&Subject::new("doctor"))
    );
}

fn e8_query_mix() {
    banner("E8", "query + access control: fetched volume per query selectivity");
    let doc = workloads::hospital(4_000);
    let secure = workloads::secure(&doc, 128, 32);
    println!(
        "{:>34} {:>12} {:>12} {:>12}",
        "query (subject = doctor)", "fetched (B)", "skipped (B)", "egate (s)"
    );
    for query in [
        "//patient",
        "//patient/name",
        "//acts/act[@type = \"surgery\"]",
        "//patient[@id = \"P00003\"]",
    ] {
        let stats = workloads::run_secure(
            &secure,
            &workloads::medical_rules(),
            "doctor",
            Some(query),
            true,
        );
        println!(
            "{:>34} {:>12} {:>12} {:>12.1}",
            query,
            stats.ledger.bytes_decrypted,
            stats.ledger.bytes_skipped,
            workloads::egate_seconds(&stats)
        );
    }
}

fn e9_streaming_vs_dom() {
    banner("E9", "streaming SOE engine vs. DOM materialisation baseline");
    println!(
        "{:>10} {:>18} {:>18} {:>16} {:>16}",
        "elements", "SOE peak RAM (B)", "DOM footprint (B)", "SOE decrypt (B)", "DOM decrypt (B)"
    );
    for elements in [500usize, 2_000, 8_000] {
        let doc = workloads::hospital(elements);
        let secure = workloads::secure(&doc, 128, 32);
        let rules = workloads::medical_rules();
        let soe = workloads::run_secure(&secure, &rules, "secretary", None, true);
        let dom = DomBaseline::run(
            &secure,
            &workloads::bench_key(),
            &rules,
            &Subject::new("secretary"),
            None,
            &AccessPolicy::paper(),
        )
        .unwrap();
        println!(
            "{:>10} {:>18} {:>18} {:>16} {:>16}",
            elements,
            soe.evaluator.map(|e| e.peak_ram_bytes()).unwrap_or(0),
            dom.materialized_bytes,
            soe.ledger.bytes_decrypted,
            dom.ledger.bytes_decrypted
        );
    }
}

fn main() {
    let start = Instant::now();
    e1_rules_scaling();
    e2_skip_index();
    e3_index_overhead();
    e4_ram_budget();
    e5_latency_breakdown();
    e6_dissemination();
    e7_dynamic_rules();
    e8_query_mix();
    e9_streaming_vs_dom();
    println!(
        "\nharness completed in {:.1} s",
        start.elapsed().as_secs_f64()
    );
}
