//! Multi-subscriber dissemination without per-subscriber encryption.
//!
//! The paper's dissemination scenario (§3, application 2) broadcasts each
//! encrypted stream item over an unsecured channel; *selection happens in the
//! subscriber's SOE*, not at the publisher. The consequence — the reason the
//! architecture scales to many subscribers — is that the publisher encrypts
//! each item **once**, regardless of how many subscribers receive it: access
//! differentiation costs nothing at publication time because it is carried by
//! the per-subscriber protected rules, not by per-subscriber ciphertexts.
//!
//! The trust boundary runs through the middle of the scenario, and this
//! module sits on the untrusted side of it: the proxy-side
//! `sdds_proxy::DisseminationChannel` holds the key, encrypts each item once,
//! and hands the DSP an `Arc<StreamItem>` — [`FanOutDisseminator`] merely
//! clones that [`Arc`] into every subscriber mailbox. It cannot re-encrypt,
//! inspect or differentiate the stream because it never holds a key or a
//! cleartext byte (the `sdds-lint` taint analyzer proves this statically).
//! The property test in `tests/fanout_properties.rs` pins the scaling claim:
//! the fanned-out ciphertext is byte-identical to what M independent unicast
//! channels would have produced, and the publisher's encryption count stays
//! equal to the number of published items no matter how many subscribers are
//! attached.

use sdds_sync::sync::Arc;
use std::collections::VecDeque;

use crate::dissemination::StreamItem;

/// Handle to one subscriber's mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriberId(usize);

/// One subscriber: a name (the subject whose rules its SOE enforces) and the
/// queue of items broadcast since it joined.
#[derive(Debug)]
struct Subscriber {
    subject: String,
    mailbox: VecDeque<Arc<StreamItem>>,
}

/// DSP-side fan-out of one broadcast channel: ciphertext in, ciphertext out.
#[derive(Debug)]
pub struct FanOutDisseminator {
    name: String,
    /// Broadcast history, in delivery order — what a late subscriber missed.
    delivered: Vec<Arc<StreamItem>>,
    subscribers: Vec<Subscriber>,
}

impl FanOutDisseminator {
    /// Creates the fan-out for a broadcast channel named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        FanOutDisseminator {
            name: name.into(),
            delivered: Vec::new(),
            subscribers: Vec::new(),
        }
    }

    /// Channel name this fan-out serves.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attaches a subscriber; it receives items delivered from now on.
    pub fn subscribe(&mut self, subject: impl Into<String>) -> SubscriberId {
        self.subscribers.push(Subscriber {
            subject: subject.into(),
            mailbox: VecDeque::new(),
        });
        SubscriberId(self.subscribers.len() - 1)
    }

    /// Number of attached subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Subject of a subscriber.
    pub fn subject_of(&self, id: SubscriberId) -> &str {
        &self.subscribers[id.0].subject
    }

    /// Delivers one already-encrypted item to every subscriber mailbox. The
    /// history and every mailbox hold the same allocation — the DSP never
    /// copies, let alone re-encrypts, the item.
    pub fn deliver(&mut self, item: Arc<StreamItem>) {
        for subscriber in &mut self.subscribers {
            subscriber.mailbox.push_back(Arc::clone(&item));
        }
        self.delivered.push(item);
    }

    /// Delivers a batch of items (a publisher's `published()` history, say);
    /// returns the number delivered.
    pub fn deliver_all(&mut self, items: &[Arc<StreamItem>]) -> usize {
        for item in items {
            self.deliver(Arc::clone(item));
        }
        items.len()
    }

    /// Drains the mailbox of one subscriber.
    pub fn drain(&mut self, id: SubscriberId) -> Vec<Arc<StreamItem>> {
        // alloc: amortized — hands the subscriber its queued Arc items: refcount bumps plus one Vec per drain.
        self.subscribers[id.0].mailbox.drain(..).collect()
    }

    /// Items currently queued for one subscriber.
    pub fn queued(&self, id: SubscriberId) -> usize {
        self.subscribers[id.0].mailbox.len()
    }

    /// Every item delivered so far, in delivery order.
    pub fn delivered(&self) -> &[Arc<StreamItem>] {
        &self.delivered
    }

    /// Ciphertext bytes that crossed the broadcast medium. A broadcast
    /// channel carries each item once — this does **not** scale with the
    /// subscriber count, unlike M unicasts which would ship
    /// `broadcast_bytes() * M`.
    pub fn broadcast_bytes(&self) -> usize {
        self.delivered
            .iter()
            .map(|i| i.document.ciphertext_len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_core::secdoc::SecureDocumentBuilder;
    use sdds_crypto::SecretKey;
    use sdds_xml::Document;

    /// An encrypted stream item, as the proxy-side publisher would hand over.
    fn item(sequence: u64) -> Arc<StreamItem> {
        let doc = Document::parse(&format!("<item><title>t{sequence}</title></item>")).unwrap();
        let plaintext_len = doc.to_xml().len();
        let key = SecretKey::derive(b"fanout-test", "k");
        let document = SecureDocumentBuilder::new(format!("feed#{sequence}"), key).build(&doc);
        Arc::new(StreamItem {
            sequence,
            document,
            plaintext_len,
        })
    }

    #[test]
    fn one_ciphertext_per_item_regardless_of_subscribers() {
        let mut fanout = FanOutDisseminator::new("feed");
        let subscribers: Vec<SubscriberId> =
            (0..32).map(|i| fanout.subscribe(format!("s{i}"))).collect();
        assert_eq!(fanout.subscriber_count(), 32);
        let items: Vec<Arc<StreamItem>> = (0..5).map(item).collect();
        let delivered = fanout.deliver_all(&items);
        assert_eq!(delivered, 5);
        assert_eq!(
            fanout.delivered().len(),
            5,
            "one ciphertext per item, not 5*32"
        );
        for id in subscribers {
            assert_eq!(fanout.queued(id), 5);
        }
        let one_copy: usize = items.iter().map(|i| i.document.ciphertext_len()).sum();
        assert_eq!(fanout.broadcast_bytes(), one_copy);
    }

    #[test]
    fn every_mailbox_shares_the_same_ciphertext_allocation() {
        let mut fanout = FanOutDisseminator::new("feed");
        let a = fanout.subscribe("alice");
        let b = fanout.subscribe("bob");
        assert_eq!(fanout.subject_of(a), "alice");
        for seq in 0..3 {
            fanout.deliver(item(seq));
        }
        let from_a = fanout.drain(a);
        let from_b = fanout.drain(b);
        assert_eq!(fanout.queued(a), 0);
        for (x, y) in from_a.iter().zip(from_b.iter()) {
            // Not just equal bytes: literally the same allocation.
            assert!(Arc::ptr_eq(x, y));
        }
        // Three Arcs outstanding per item: the delivery history and the two
        // drained vectors all share one allocation.
        assert_eq!(Arc::strong_count(&from_a[0]), 3);
        assert!(Arc::ptr_eq(&from_a[0], &fanout.delivered()[0]));
    }

    #[test]
    fn late_subscribers_receive_only_later_items() {
        let mut fanout = FanOutDisseminator::new("feed");
        let early = fanout.subscribe("early");
        let items: Vec<Arc<StreamItem>> = (0..4).map(item).collect();
        fanout.deliver(Arc::clone(&items[0]));
        fanout.deliver(Arc::clone(&items[1]));
        let late = fanout.subscribe("late");
        fanout.deliver(Arc::clone(&items[2]));
        fanout.deliver(Arc::clone(&items[3]));
        assert_eq!(fanout.queued(early), 4);
        assert_eq!(fanout.queued(late), 2);
        let got: Vec<u64> = fanout.drain(late).iter().map(|i| i.sequence).collect();
        assert_eq!(got, vec![2, 3]);
        assert_eq!(fanout.name(), "feed");
    }
}
