#![forbid(unsafe_code)]
//! Workspace driver for the `sdds-lint` rules: walks the first-party crates,
//! applies the rule set that matches each file's path, prints violations in
//! `file:line: [rule] message` form, and exits non-zero if any were found.
//!
//! Run from anywhere in the workspace: `cargo run -p sdds-lint`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use sdds_lint::{
    check_doc_sync, check_metric_sync, metric_families, scan_file, FileRules, Violation,
};

/// First-party crate directories, relative to the workspace root. Vendored
/// crates (`vendor/`) are deliberately out of scope.
const CRATES: &[&str] = &[
    "crates/core",
    "crates/card",
    "crates/crypto",
    "crates/xml",
    "crates/xpath",
    "crates/dsp",
    "crates/proxy",
    "crates/bench",
    "crates/sync",
    "crates/check",
    "crates/lint",
    "crates/obs",
    ".",
];

/// Crates whose library code must route synchronization through `sdds-sync`
/// and never sleep: the serving core the model checker instruments, plus the
/// facade crate that drives it and the telemetry layer they embed.
const FACADE_CRATES: &[&str] = &["crates/dsp", "crates/proxy", "crates/obs", "."];

fn workspace_root() -> PathBuf {
    // crates/lint/ -> crates/ -> workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_sources(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rules_for(crate_dir: &str, path: &Path) -> FileRules {
    let is_facade_scope = FACADE_CRATES.contains(&crate_dir);
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    // The no-panic rule covers *library* code; binaries under src/bin may
    // abort on startup or I/O errors like any CLI tool.
    let is_bin = path
        .components()
        .any(|c| c.as_os_str().to_str() == Some("bin"));
    FileRules {
        facade: is_facade_scope,
        no_sleep: is_facade_scope,
        no_panic: !is_bin,
        ordering: true,
        // lib.rs is always a crate root; main.rs is the root of a bin crate.
        forbid_unsafe: name == "lib.rs" || name == "main.rs",
        // sdds-obs is where the metric cells live; everywhere else in the
        // facade-routed service code, a fresh AtomicU64 is a shadow metric.
        adhoc_atomic: is_facade_scope && crate_dir != "crates/obs",
    }
}

fn run() -> Result<Vec<Violation>, String> {
    let root = workspace_root();
    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for crate_dir in CRATES {
        let src = root.join(crate_dir).join("src");
        if !src.is_dir() {
            return Err(format!("missing source directory: {}", src.display()));
        }
        let mut files = Vec::new();
        rust_sources(&src, &mut files).map_err(|e| format!("walking {}: {e}", src.display()))?;
        for file in files {
            let contents = std::fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            let shown = file.strip_prefix(&root).unwrap_or(&file);
            violations.extend(scan_file(shown, &contents, rules_for(crate_dir, &file)));
            scanned += 1;
        }
    }
    violations.extend(doc_sync(&root)?);
    eprintln!(
        "sdds-lint: scanned {scanned} files across {} crates, {} violation(s)",
        CRATES.len(),
        violations.len()
    );
    Ok(violations)
}

/// The doc-sync rule: every `crates/bench/benches/e*.rs` experiment bench
/// must be named in ARCHITECTURE.md's experiment table, and every metric
/// family declared in `crates/obs/src/families.rs` must appear in the book's
/// metric table.
fn doc_sync(root: &Path) -> Result<Vec<Violation>, String> {
    let benches_dir = root.join("crates/bench/benches");
    let mut files = Vec::new();
    rust_sources(&benches_dir, &mut files)
        .map_err(|e| format!("walking {}: {e}", benches_dir.display()))?;
    let bench_files: Vec<String> = files
        .iter()
        .filter_map(|p| p.file_name().and_then(|n| n.to_str()))
        .filter(|n| n.starts_with('e') && n[1..].starts_with(|c: char| c.is_ascii_digit()))
        .map(str::to_owned)
        .collect();
    let book_path = Path::new("ARCHITECTURE.md");
    let book = std::fs::read_to_string(root.join(book_path))
        .map_err(|e| format!("reading {}: {e}", book_path.display()))?;
    let mut violations = check_doc_sync(book_path, &book, &bench_files);

    let families_path = root.join("crates/obs/src/families.rs");
    let families_src = std::fs::read_to_string(&families_path)
        .map_err(|e| format!("reading {}: {e}", families_path.display()))?;
    violations.extend(check_metric_sync(
        book_path,
        &book,
        &metric_families(&families_src),
    ));
    Ok(violations)
}

fn main() -> ExitCode {
    match run() {
        Err(error) => {
            eprintln!("sdds-lint: error: {error}");
            ExitCode::from(2)
        }
        Ok(violations) if violations.is_empty() => ExitCode::SUCCESS,
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            ExitCode::FAILURE
        }
    }
}
