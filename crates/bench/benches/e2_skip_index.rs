//! E2 — secure evaluation with and without the skip index.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdds_bench::workloads;

fn bench(c: &mut Criterion) {
    let doc = workloads::hospital(2_000);
    let secure = workloads::secure(&doc, 128, 32);
    let rules = workloads::medical_rules();
    let mut group = c.benchmark_group("e2_skip_index");
    group.sample_size(10);
    for (label, use_index) in [("with_index", true), ("without_index", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &use_index, |b, &ui| {
            b.iter(|| workloads::run_secure(&secure, &rules, "secretary", None, ui))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
