//! The workspace-wide error type of the `sdds` facade.
//!
//! Every crate of the workspace keeps its own focused error type
//! (`CoreError`, `CardError`, `CryptoError`, `XmlError`, the XPath
//! `ParseError`, the proxy's `ProxyError`), but applications built on the
//! facade see exactly one: [`SddsError`]. Conversions normalise to the most
//! specific layer — a `CoreError::Crypto` arriving through three crates still
//! surfaces as [`SddsError::Crypto`] — so callers match on *what went wrong*,
//! not on *which crate noticed*.

use std::fmt;

use sdds_card::CardError;
use sdds_core::CoreError;
use sdds_crypto::CryptoError;
use sdds_proxy::ProxyError;
use sdds_xml::XmlError;
use sdds_xpath::ParseError;

/// The one error type of the `sdds` facade API.
#[derive(Debug)]
#[non_exhaustive]
pub enum SddsError {
    /// Malformed XML (parsing a document or a delivered view).
    Xml(XmlError),
    /// An XPath expression (rule object or query) failed to parse.
    XPath(ParseError),
    /// Cryptographic failure: integrity, bad key, tampered data.
    Crypto(CryptoError),
    /// The card (SOE) refused a command or exceeded a resource budget.
    Card(CardError),
    /// Access-control core failure: bad rule, bad secure document, bad
    /// session state.
    Core(CoreError),
    /// The requested document is not stored at the DSP — the request was
    /// well formed, the content simply is not there.
    NotFound {
        /// Identifier of the missing document.
        doc_id: String,
    },
    /// The DSP stores the document but no protected rule blob for the
    /// requesting subject (e.g. the subject was never provisioned against
    /// this service).
    NoRulesForSubject {
        /// Document the rules were requested for.
        doc_id: String,
        /// Subject with no stored blob.
        subject: String,
    },
    /// The document was republished while a session held a pinned revision:
    /// re-open the session to read the new upload. This is a staleness
    /// signal, **not** a security event — without pinning it would surface
    /// as an inscrutable Merkle verification failure.
    StaleRevision {
        /// Document whose revision moved.
        doc_id: String,
        /// Revision the session pinned at open.
        pinned: u64,
        /// Revision currently stored at the DSP.
        current: u64,
    },
    /// The builder was asked for an impossible configuration (e.g.
    /// `.shards(0)`).
    Config(String),
    /// The terminal proxy and the card disagree on the protocol state, or a
    /// scheduled session failed with a transported message.
    Protocol(String),
}

impl fmt::Display for SddsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SddsError::Xml(e) => write!(f, "xml error: {e}"),
            SddsError::XPath(e) => write!(f, "xpath error: {e}"),
            SddsError::Crypto(e) => write!(f, "cryptographic error: {e}"),
            SddsError::Card(e) => write!(f, "card error: {e}"),
            SddsError::Core(e) => write!(f, "core error: {e}"),
            SddsError::NotFound { doc_id } => {
                write!(f, "document `{doc_id}` is not stored at this DSP")
            }
            SddsError::NoRulesForSubject { doc_id, subject } => {
                write!(f, "no rules stored for subject `{subject}` on `{doc_id}`")
            }
            SddsError::StaleRevision {
                doc_id,
                pinned,
                current,
            } => write!(
                f,
                "document `{doc_id}` was republished mid-session: \
                 pinned revision {pinned}, now {current} (re-open to resume)"
            ),
            SddsError::Config(m) => write!(f, "configuration error: {m}"),
            SddsError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for SddsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SddsError::Xml(e) => Some(e),
            SddsError::XPath(e) => Some(e),
            SddsError::Crypto(e) => Some(e),
            SddsError::Card(e) => Some(e),
            SddsError::Core(e) => Some(e),
            SddsError::NotFound { .. }
            | SddsError::NoRulesForSubject { .. }
            | SddsError::StaleRevision { .. }
            | SddsError::Config(_)
            | SddsError::Protocol(_) => None,
        }
    }
}

impl From<XmlError> for SddsError {
    fn from(e: XmlError) -> Self {
        SddsError::Xml(e)
    }
}

impl From<ParseError> for SddsError {
    fn from(e: ParseError) -> Self {
        SddsError::XPath(e)
    }
}

impl From<CryptoError> for SddsError {
    fn from(e: CryptoError) -> Self {
        SddsError::Crypto(e)
    }
}

impl From<CardError> for SddsError {
    fn from(e: CardError) -> Self {
        SddsError::Card(e)
    }
}

impl From<CoreError> for SddsError {
    fn from(e: CoreError) -> Self {
        // Normalise to the most specific layer when the core just wrapped a
        // lower-level failure, and surface the typed storage outcomes
        // ("not stored" / "no blob" / "republished under you") as their own
        // variants so callers can distinguish them from corrupt requests.
        match e {
            CoreError::Crypto(inner) => SddsError::Crypto(inner),
            CoreError::Card(inner) => SddsError::Card(inner),
            CoreError::Xml(inner) => SddsError::Xml(inner),
            CoreError::NotFound { doc_id } => SddsError::NotFound { doc_id },
            CoreError::NoRulesForSubject { doc_id, subject } => {
                SddsError::NoRulesForSubject { doc_id, subject }
            }
            CoreError::StaleRevision {
                doc_id,
                pinned,
                current,
            } => SddsError::StaleRevision {
                doc_id,
                pinned,
                current,
            },
            other => SddsError::Core(other),
        }
    }
}

impl From<ProxyError> for SddsError {
    fn from(e: ProxyError) -> Self {
        match e {
            ProxyError::Card(inner) => SddsError::Card(inner),
            ProxyError::Core(inner) => SddsError::from(inner),
            ProxyError::Protocol(message) => SddsError::Protocol(message),
            other => SddsError::Protocol(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_normalise_to_the_most_specific_layer() {
        let e: SddsError = CoreError::Crypto(CryptoError::BadPadding).into();
        assert!(matches!(e, SddsError::Crypto(_)));
        let e: SddsError = ProxyError::Core(CoreError::Card(CardError::Refused {
            status: 0x6982,
            reason: "no key".into(),
        }))
        .into();
        assert!(matches!(e, SddsError::Card(_)));
        let e: SddsError = ProxyError::Protocol("desync".into()).into();
        assert!(e.to_string().contains("desync"));
        let e: SddsError = XmlError::EmptyDocument.into();
        assert!(matches!(e, SddsError::Xml(_)));
        let e: SddsError = ParseError::new("bad", 0, "/x[").into();
        assert!(e.to_string().contains("bad"));
        let e: SddsError = CoreError::BadState {
            message: "half-open session".into(),
        }
        .into();
        assert!(matches!(e, SddsError::Core(_)));
    }

    #[test]
    fn storage_outcomes_surface_as_their_own_variants() {
        let e: SddsError = CoreError::NotFound {
            doc_id: "folder".into(),
        }
        .into();
        assert!(matches!(e, SddsError::NotFound { ref doc_id } if doc_id == "folder"));
        let e: SddsError = CoreError::NoRulesForSubject {
            doc_id: "folder".into(),
            subject: "stranger".into(),
        }
        .into();
        assert!(matches!(e, SddsError::NoRulesForSubject { ref subject, .. }
            if subject == "stranger"));
        // ...including when the proxy layer transported them.
        let e: SddsError = ProxyError::Core(CoreError::StaleRevision {
            doc_id: "folder".into(),
            pinned: 0,
            current: 1,
        })
        .into();
        assert!(matches!(
            e,
            SddsError::StaleRevision {
                pinned: 0,
                current: 1,
                ..
            }
        ));
        assert!(e.to_string().contains("republished"));
        let e = SddsError::Config("shards must be at least 1".into());
        assert!(e.to_string().contains("configuration"));
    }

    #[test]
    fn sources_are_exposed_for_error_chains() {
        use std::error::Error;
        let e: SddsError = CryptoError::BadPadding.into();
        assert!(e.source().is_some());
        let e = SddsError::Protocol("oops".into());
        assert!(e.source().is_none());
    }
}
