//! The SOE engine: fetch → integrity-check → decrypt → parse → evaluate,
//! under the card's constraints.
//!
//! Two layers are provided:
//!
//! * [`SecureEvaluationSession`] — the incremental state machine that consumes
//!   encrypted chunks one at a time, drives the [`TokenReader`], asks for the
//!   *next chunk it actually needs* (which is how skipping translates into
//!   fewer transferred and decrypted bytes), feeds the streaming evaluator and
//!   exposes the authorized events. It is transport-agnostic: tests and
//!   benches drive it with [`run_local`], the demonstrator drives it through
//!   APDUs.
//! * [`AccessControlApplet`] — the APDU front-end implementing
//!   [`sdds_card::Applet`], i.e. what is actually "installed on the card" in
//!   the demonstrator architecture (Figure 3): key provisioning, rule refresh,
//!   query registration, session management, chunk push and output retrieval.

use sdds_card::apdu::{ins, Apdu, ApduResponse, StatusWord};
use sdds_card::{Applet, CardError, CostLedger, SmartCard};
use sdds_crypto::merkle::MerkleProof;
use sdds_crypto::{KeyId, SecretKey};
use sdds_xml::{writer, Event, TagDict};
use sdds_xpath::tagset::PathSignature;

use crate::conflict::Decision;
use crate::error::CoreError;
use crate::evaluator::{EvaluatorConfig, EvaluatorStats, StreamingEvaluator};
use crate::query::Query;
use crate::rule::{RuleSet, Sign, Subject};
use crate::secdoc::{decrypt_chunk, DocumentHeader, SecureDocument};
use crate::session::{KeyProvisioning, ProtectedRules};
use crate::skipindex::decode::{ReadResult, TokenEvent, TokenReader};
use crate::skipindex::encode::SubtreeSummary;

/// Configuration of a secure evaluation session.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Evaluator configuration (rules, subject, query, policy).
    pub evaluator: EvaluatorConfig,
    /// Honour subtree summaries and skip irrelevant subtrees. Disabling this
    /// is the *no skip index* baseline of experiment E2.
    pub use_skip_index: bool,
    /// Secure working-memory budget enforced on the session (`None` in the
    /// unconstrained test profile). The e-gate applet budget is 1024 bytes.
    pub ram_budget: Option<usize>,
}

impl EngineConfig {
    /// Creates a configuration with the skip index enabled and no RAM budget.
    pub fn new(evaluator: EvaluatorConfig) -> Self {
        EngineConfig {
            evaluator,
            use_skip_index: true,
            ram_budget: None,
        }
    }

    /// Disables the skip index.
    pub fn without_skip_index(mut self) -> Self {
        self.use_skip_index = false;
        self
    }

    /// Sets the RAM budget.
    pub fn with_ram_budget(mut self, bytes: usize) -> Self {
        self.ram_budget = Some(bytes);
        self
    }
}

/// What the session needs next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionRequest {
    /// The ciphertext of this chunk (with its Merkle proof).
    NeedChunk(u32),
    /// The document is fully processed.
    Done,
}

/// Statistics of a finished (or running) session.
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    /// Cost counters (bytes transferred, decrypted, hashed, skipped, events).
    pub ledger: CostLedger,
    /// Evaluator statistics (available after the document ends).
    pub evaluator: Option<EvaluatorStats>,
    /// Subtrees skipped thanks to the index.
    pub skipped_subtrees: usize,
    /// Chunks actually supplied to the card.
    pub chunks_fetched: usize,
    /// Chunks never requested because they fell entirely inside skips.
    pub chunks_skipped: usize,
    /// Peak secure-RAM footprint observed (evaluator + reader window).
    pub peak_ram_bytes: usize,
}

/// The incremental SOE session.
pub struct SecureEvaluationSession {
    header: DocumentHeader,
    key: SecretKey,
    config: EngineConfig,
    evaluator: Option<StreamingEvaluator>,
    reader: Option<TokenReader>,
    /// Accumulates the first plaintext bytes until the dictionary is complete.
    dict_buf: Vec<u8>,
    /// `(sign, signature)` per installed rule, in engine order; built when the
    /// dictionary becomes available.
    rule_signatures: Vec<(Sign, PathSignature)>,
    query_signature: Option<PathSignature>,
    output: Vec<Event>,
    stats: SessionStats,
    next_chunk: u32,
    last_supplied_chunk: Option<u32>,
    done: bool,
}

impl std::fmt::Debug for SecureEvaluationSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureEvaluationSession")
            .field("doc_id", &self.header.doc_id)
            .field("next_chunk", &self.next_chunk)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl SecureEvaluationSession {
    /// Opens a session: verifies the document header under `key` and prepares
    /// the evaluator.
    pub fn open(
        header: DocumentHeader,
        key: SecretKey,
        config: EngineConfig,
    ) -> Result<Self, CoreError> {
        header.verify(&key)?;
        let evaluator = StreamingEvaluator::new(&config.evaluator)?;
        Ok(SecureEvaluationSession {
            header,
            key,
            config,
            evaluator: Some(evaluator),
            reader: None,
            dict_buf: Vec::new(),
            rule_signatures: Vec::new(),
            query_signature: None,
            output: Vec::new(),
            stats: SessionStats::default(),
            next_chunk: 0,
            last_supplied_chunk: None,
            done: false,
        })
    }

    /// Document header of the session.
    pub fn header(&self) -> &DocumentHeader {
        &self.header
    }

    /// What the session needs next.
    pub fn next_request(&self) -> SessionRequest {
        if self.done {
            SessionRequest::Done
        } else {
            SessionRequest::NeedChunk(self.next_chunk)
        }
    }

    /// Running statistics.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// True once the whole document has been processed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Takes the authorized events produced so far.
    pub fn take_output(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.output)
    }

    /// Accounts one chunk transfer on the session ledger (`wire_bytes` served
    /// to the SOE, `produced_bytes` of authorized output shipped back) — the
    /// channel-side counterpart of [`SecureEvaluationSession::supply_chunk`]
    /// used by drivers outside this crate (e.g. the facade's `ViewStream`),
    /// mirroring what [`run_local`] records.
    pub fn record_exchange(&mut self, wire_bytes: usize, produced_bytes: usize) {
        self.stats
            .ledger
            .channel
            .record_exchange(wire_bytes, produced_bytes);
    }

    /// Finishes the session and returns the final statistics.
    pub fn finish(mut self) -> Result<(Vec<Event>, SessionStats), CoreError> {
        if !self.done {
            return Err(CoreError::BadState {
                message: "the document has not been fully processed".into(),
            });
        }
        let output = std::mem::take(&mut self.output);
        Ok((output, self.stats))
    }

    fn current_ram(&self) -> usize {
        let reader = self
            .reader
            .as_ref()
            .map(TokenReader::window_bytes)
            .unwrap_or(0);
        let evaluator = self
            .evaluator
            .as_ref()
            .map(StreamingEvaluator::ram_bytes)
            .unwrap_or(0);
        reader + evaluator + self.dict_buf.len()
    }

    fn check_ram(&mut self) -> Result<(), CoreError> {
        let current = self.current_ram();
        self.stats.peak_ram_bytes = self.stats.peak_ram_bytes.max(current);
        if let Some(budget) = self.config.ram_budget {
            if current > budget {
                return Err(CardError::RamExceeded {
                    requested: current,
                    in_use: current,
                    budget,
                }
                .into());
            }
        }
        Ok(())
    }

    /// Supplies one encrypted chunk (with its Merkle proof). Returns the
    /// authorized events that became available.
    pub fn supply_chunk(
        &mut self,
        index: u32,
        ciphertext: &[u8],
        proof: &MerkleProof,
    ) -> Result<Vec<Event>, CoreError> {
        if self.done {
            return Err(CoreError::BadState {
                message: "session already finished".into(),
            });
        }
        if index != self.next_chunk {
            return Err(CoreError::BadState {
                // alloc: cold — out-of-order chunk error path.
                message: format!(
                    "expected chunk {} but received chunk {index}",
                    self.next_chunk
                ),
            });
        }
        if self.last_supplied_chunk == Some(index) {
            return Err(CoreError::BadState {
                // alloc: cold — duplicate chunk error path.
                message: format!("chunk {index} supplied twice"),
            });
        }

        // 1. Integrity: the proof must bind this ciphertext, at this position,
        //    to the authenticated Merkle root.
        if proof.leaf_index != index as usize {
            return Err(sdds_crypto::CryptoError::BadProof {
                // alloc: cold — mismatched proof error path.
                message: format!(
                    "proof is for chunk {} but chunk {index} was supplied",
                    proof.leaf_index
                ),
            }
            .into());
        }
        proof.verify(ciphertext, &self.header.merkle_root)?;
        self.stats.ledger.record_hash(ciphertext.len());

        // 2. Decrypt.
        let plaintext = decrypt_chunk(&self.key, &self.header, index, ciphertext);
        self.stats.ledger.record_decrypt(plaintext.len());
        self.stats.chunks_fetched += 1;
        self.last_supplied_chunk = Some(index);
        let chunk_start = u64::from(index) * u64::from(self.header.chunk_size);

        // 3. Feed the reader (building it first if the dictionary is still
        //    incomplete).
        if let Some(reader) = self.reader.as_mut() {
            reader.supply(chunk_start, &plaintext)?;
        } else {
            self.dict_buf.extend_from_slice(&plaintext);
            if (self.dict_buf.len() as u64) < self.header.tokens_start {
                self.next_chunk += 1;
                self.check_ram()?;
                return Ok(Vec::new());
            }
            let dict_bytes = &self.dict_buf[..self.header.tokens_start as usize];
            let (dict, _) = TagDict::decode(dict_bytes).ok_or_else(|| CoreError::BadDocument {
                message: "cannot decode the tag dictionary".into(),
            })?;
            self.build_signatures(&dict);
            let mut reader = TokenReader::new(
                dict,
                self.header.tokens_start,
                self.header.plaintext_len,
                self.header.recursive_bitmaps,
            );
            let rest = self.dict_buf.split_off(self.header.tokens_start as usize);
            reader.supply(self.header.tokens_start, &rest)?;
            self.dict_buf.clear();
            self.reader = Some(reader);
        }

        // 4. Pump the reader.
        let produced = self.pump()?;
        self.check_ram()?;
        Ok(produced)
    }

    /// Builds, for every installed rule and for the query, the tag-set
    /// satisfiability signature used by the skip decision.
    fn build_signatures(&mut self, dict: &TagDict) {
        let config = &self.config.evaluator;
        self.rule_signatures = config
            .rules
            .for_subject(&config.subject)
            .map(|r| (r.sign, PathSignature::build(&r.object, dict)))
            // alloc: startup — path signatures are built once per session, from the dictionary chunk.
            .collect();
        self.query_signature = config
            .query
            .as_ref()
            .map(|q| PathSignature::build(&q.path, dict));
    }

    fn pump(&mut self) -> Result<Vec<Event>, CoreError> {
        let mut produced = Vec::new();
        loop {
            let result = self
                .reader
                .as_mut()
                // lint: infallible — `pump` is only reached from `step`,
                // which bails out earlier when the reader is finished.
                .expect("pump requires a reader")
                .next_token()?;
            match result {
                ReadResult::Token(TokenEvent::Event(event)) => {
                    let evaluator = self.evaluator.as_mut().ok_or_else(|| CoreError::BadState {
                        message: "event received after the evaluator finished".into(),
                    })?;
                    self.stats.ledger.record_events(1);
                    produced.extend(evaluator.push(&event));
                    self.stats.peak_ram_bytes = self.stats.peak_ram_bytes.max(self.current_ram());
                }
                ReadResult::Token(TokenEvent::Summary(summary)) => {
                    if self.config.use_skip_index && self.can_skip(&summary) {
                        // lint: infallible — same guard as the `pump` entry.
                        let reader = self.reader.as_mut().expect("reader present");
                        reader.skip(summary.content_len);
                        self.stats.ledger.record_skip(summary.content_len as usize);
                        self.stats.skipped_subtrees += 1;
                    }
                }
                ReadResult::NeedData => {
                    let needed = self
                        .reader
                        .as_ref()
                        // lint: infallible — same guard as the `pump` entry.
                        .expect("reader present")
                        .needed_offset();
                    let target_chunk = (needed / u64::from(self.header.chunk_size)) as u32;
                    // Chunks strictly between the last supplied one and the
                    // target were skipped entirely.
                    if let Some(last) = self.last_supplied_chunk {
                        if target_chunk > last + 1 {
                            self.stats.chunks_skipped += (target_chunk - last - 1) as usize;
                        }
                    }
                    self.next_chunk = target_chunk;
                    break;
                }
                ReadResult::End => {
                    self.done = true;
                    let evaluator = self.evaluator.take().ok_or_else(|| CoreError::BadState {
                        message: "evaluator already finished".into(),
                    })?;
                    let (rest, stats) = evaluator.finish()?;
                    produced.extend(rest);
                    self.stats.evaluator = Some(stats);
                    break;
                }
            }
        }
        self.output.extend(produced.iter().cloned());
        Ok(produced)
    }

    /// Skip decision for a summarised subtree (§2.3: "detect rules and queries
    /// that cannot apply inside a given subtree, with the expected benefit to
    /// skip this subtree if it turns out to be forbidden or irrelevant wrt the
    /// query").
    fn can_skip(&self, summary: &SubtreeSummary) -> bool {
        let Some(evaluator) = self.evaluator.as_ref() else {
            return false;
        };
        // Any pending decision or unresolved predicate could be influenced by
        // the content of the subtree: stay conservative and read it.
        if evaluator.has_pending() {
            return false;
        }
        let Some((decision, in_scope)) = evaluator.current_context() else {
            return false;
        };
        // Could the query newly select nodes inside the subtree?
        let query_may_match_inside = match &self.query_signature {
            Some(signature) => evaluator
                .active_query_positions()
                .iter()
                .any(|&p| signature.satisfiable_in(p, &summary.tags)),
            None => false,
        };
        let scope_inside = in_scope || query_may_match_inside;
        if !scope_inside {
            // Nothing inside can belong to the query result.
            return true;
        }
        if decision.is_permit() {
            // Content inside is (at least partly) deliverable.
            return false;
        }
        debug_assert_eq!(decision, Decision::Deny);
        // Denied context: content inside becomes deliverable only if a positive
        // rule reaches its final state inside the subtree.
        let positions = evaluator.active_rule_positions();
        let positive_reachable = self
            .rule_signatures
            .iter()
            .zip(positions.iter())
            .filter(|((sign, _), _)| *sign == Sign::Permit)
            .any(|((_, signature), rule_positions)| {
                rule_positions
                    .iter()
                    .any(|&p| signature.satisfiable_in(p, &summary.tags))
            });
        !positive_reachable
    }
}

/// Drives a session against an in-memory [`SecureDocument`], accounting the
/// transfer of each served chunk + proof on the session ledger. This is the
/// path used by unit tests and by the benches that do not need the APDU layer.
pub fn run_local(
    document: &SecureDocument,
    session: &mut SecureEvaluationSession,
) -> Result<Vec<Event>, CoreError> {
    let mut output = Vec::new();
    loop {
        match session.next_request() {
            SessionRequest::Done => break,
            SessionRequest::NeedChunk(index) => {
                let chunk = document
                    .chunk(index as usize)
                    .ok_or_else(|| CoreError::BadDocument {
                        message: format!("chunk {index} out of range"),
                    })?
                    .to_vec();
                let proof = document.proof(index as usize)?;
                let wire = chunk.len() + proof.encode().len();
                let produced = session.supply_chunk(index, &chunk, &proof)?;
                let produced_len: usize = produced.iter().map(Event::serialized_len).sum();
                session
                    .stats
                    .ledger
                    .channel
                    .record_exchange(wire, produced_len);
                output.extend(produced);
            }
        }
    }
    Ok(output)
}

/// Convenience wrapper: opens a session, runs it locally and returns the
/// authorized view plus the final statistics.
pub fn evaluate_secure_document(
    document: &SecureDocument,
    key: &SecretKey,
    config: EngineConfig,
) -> Result<(Vec<Event>, SessionStats), CoreError> {
    let mut session = SecureEvaluationSession::open(document.header.clone(), key.clone(), config)?;
    run_local(document, &mut session)?;
    session.finish()
}

// ---------------------------------------------------------------------------
// APDU applet
// ---------------------------------------------------------------------------

/// Identifier under which the document key is expected in the card key ring
/// when `P1` of `OPEN_SESSION` does not say otherwise.
pub const DEFAULT_DOC_KEY_ID: u32 = 1;
/// Identifier of the rule-protection key in the card key ring.
pub const RULES_KEY_ID: u32 = 2;

/// The on-card access-control applet (Figure 3: "Access rights evaluator",
/// "Integrity control", "Decryption", "Keys" inside the smart card).
pub struct AccessControlApplet {
    /// Subject the card was issued to.
    subject: Subject,
    /// Transport key personalised at issuance (simulated PKI).
    transport_key: SecretKey,
    /// Rules installed via `PUT_RULES`.
    rules: Option<RuleSet>,
    /// Query registered via `PUT_QUERY`.
    query: Option<Query>,
    /// Whether to use the skip index.
    use_skip_index: bool,
    /// Active session.
    session: Option<SecureEvaluationSession>,
    /// Reassembly buffer for fragmented `PUT_RULES` payloads.
    rules_buf: Vec<u8>,
    /// Reassembly buffer for fragmented `PUSH_CHUNK` payloads.
    chunk_buf: Vec<u8>,
    /// Serialised authorized output awaiting `GET_OUTPUT`.
    output_text: Vec<u8>,
    /// Cursor into `output_text`.
    output_pos: usize,
}

impl std::fmt::Debug for AccessControlApplet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessControlApplet")
            .field("subject", &self.subject)
            .field("has_session", &self.session.is_some())
            .finish_non_exhaustive()
    }
}

impl AccessControlApplet {
    /// Creates an applet personalised for `subject`.
    pub fn new(subject: impl Into<String>, transport_key: SecretKey) -> Self {
        AccessControlApplet {
            subject: Subject::new(subject),
            transport_key,
            rules: None,
            query: None,
            use_skip_index: true,
            session: None,
            rules_buf: Vec::new(),
            chunk_buf: Vec::new(),
            output_text: Vec::new(),
            output_pos: 0,
        }
    }

    /// Disables the skip index for subsequent sessions (baseline runs).
    pub fn set_use_skip_index(&mut self, enabled: bool) {
        self.use_skip_index = enabled;
    }

    /// Statistics of the active session, if any.
    pub fn session_stats(&self) -> Option<&SessionStats> {
        self.session.as_ref().map(SecureEvaluationSession::stats)
    }

    fn status_for(error: &CoreError) -> StatusWord {
        match error {
            CoreError::Crypto(_) => StatusWord::SECURITY_NOT_SATISFIED,
            CoreError::Card(CardError::RamExceeded { .. })
            | CoreError::Card(CardError::EepromExceeded { .. }) => StatusWord::MEMORY_FAILURE,
            CoreError::Card(_) => StatusWord::CONDITIONS_NOT_SATISFIED,
            CoreError::BadState { .. }
            | CoreError::NotFound { .. }
            | CoreError::NoRulesForSubject { .. }
            | CoreError::StaleRevision { .. } => StatusWord::CONDITIONS_NOT_SATISFIED,
            CoreError::BadDocument { .. } | CoreError::Xml(_) => StatusWord::WRONG_LENGTH,
            CoreError::UnsupportedRule { .. } | CoreError::Parse(_) => StatusWord::NOT_FOUND,
        }
    }

    fn handle_put_key(&mut self, card: &mut SmartCard, command: &Apdu) -> ApduResponse {
        match KeyProvisioning::decode(&command.data) {
            Ok(provisioning) => match provisioning.unwrap_key(&self.transport_key) {
                Ok(key) => {
                    if card
                        .keys()
                        .install(KeyId(provisioning.key_id), key)
                        .is_err()
                    {
                        return ApduResponse::error(StatusWord::MEMORY_FAILURE);
                    }
                    ApduResponse::ok_empty()
                }
                Err(_) => ApduResponse::error(StatusWord::SECURITY_NOT_SATISFIED),
            },
            Err(_) => ApduResponse::error(StatusWord::WRONG_LENGTH),
        }
    }

    fn handle_put_rules(&mut self, card: &mut SmartCard, command: &Apdu) -> ApduResponse {
        self.rules_buf.extend_from_slice(&command.data);
        if command.p1 == 1 {
            // More fragments follow.
            return ApduResponse::ok_empty();
        }
        let payload = std::mem::take(&mut self.rules_buf);
        let protected = match ProtectedRules::decode(&payload) {
            Ok(p) => p,
            Err(_) => return ApduResponse::error(StatusWord::WRONG_LENGTH),
        };
        let rules_key = match card.keys_ref().get(KeyId(RULES_KEY_ID)) {
            // alloc: startup — PUT_RULES provisioning, once per session.
            Ok(k) => k.clone(),
            Err(_) => return ApduResponse::error(StatusWord::NOT_FOUND),
        };
        let minimum = self.rules.as_ref().map(RuleSet::version);
        match protected.open(&rules_key, minimum) {
            Ok(rules) => {
                // Rules live in EEPROM (persistent across sessions).
                if let Some(previous) = &self.rules {
                    card.eeprom().free(previous.storage_bytes());
                }
                if card.eeprom().store(rules.storage_bytes()).is_err() {
                    return ApduResponse::error(StatusWord::MEMORY_FAILURE);
                }
                self.rules = Some(rules);
                ApduResponse::ok_empty()
            }
            Err(e) => ApduResponse::error(Self::status_for(&e)),
        }
    }

    fn handle_put_query(&mut self, command: &Apdu) -> ApduResponse {
        match std::str::from_utf8(&command.data)
            .map_err(|_| ())
            .and_then(|text| Query::parse(text).map_err(|_| ()))
        {
            Ok(query) => {
                self.query = Some(query);
                ApduResponse::ok_empty()
            }
            Err(()) => ApduResponse::error(StatusWord::NOT_FOUND),
        }
    }

    fn handle_open_session(&mut self, card: &mut SmartCard, command: &Apdu) -> ApduResponse {
        // alloc: startup — session-open provisioning, once per session.
        let Some(rules) = self.rules.clone() else {
            return ApduResponse::error(StatusWord::CONDITIONS_NOT_SATISFIED);
        };
        let header = match DocumentHeader::decode(&command.data) {
            Ok(h) => h,
            Err(_) => return ApduResponse::error(StatusWord::WRONG_LENGTH),
        };
        let key_id = if command.p1 == 0 {
            DEFAULT_DOC_KEY_ID
        } else {
            u32::from(command.p1)
        };
        let key = match card.keys_ref().get(KeyId(key_id)) {
            // alloc: startup — session-open provisioning, once per session.
            Ok(k) => k.clone(),
            Err(_) => return ApduResponse::error(StatusWord::NOT_FOUND),
        };
        let mut evaluator_config = EvaluatorConfig::new(rules, self.subject.name());
        // P2 selects the conflict-resolution default: 0 = closed world (the
        // paper's policy), 1 = open world (used by dissemination scenarios
        // where only negative rules carve content out).
        if command.p2 == 1 {
            evaluator_config = evaluator_config.with_policy(crate::conflict::AccessPolicy::open());
        }
        if let Some(query) = &self.query {
            // alloc: startup — session-open provisioning, once per session.
            evaluator_config = evaluator_config.with_query(query.clone());
        }
        let mut config =
            EngineConfig::new(evaluator_config).with_ram_budget(card.profile().ram_bytes);
        config.use_skip_index = self.use_skip_index;
        match SecureEvaluationSession::open(header, key, config) {
            Ok(session) => {
                card.reset_session();
                self.session = Some(session);
                self.output_text.clear();
                self.output_pos = 0;
                self.chunk_buf.clear();
                ApduResponse::ok_empty()
            }
            Err(e) => ApduResponse::error(Self::status_for(&e)),
        }
    }

    fn handle_next_request(&mut self) -> ApduResponse {
        let Some(session) = &self.session else {
            return ApduResponse::error(StatusWord::CONDITIONS_NOT_SATISFIED);
        };
        let value = match session.next_request() {
            SessionRequest::NeedChunk(i) => i,
            SessionRequest::Done => u32::MAX,
        };
        // alloc: amortized — 4-byte response payload; the APDU response owns its data.
        ApduResponse::ok(value.to_le_bytes().to_vec())
    }

    fn handle_push_chunk(&mut self, card: &mut SmartCard, command: &Apdu) -> ApduResponse {
        if self.session.is_none() {
            return ApduResponse::error(StatusWord::CONDITIONS_NOT_SATISFIED);
        }
        self.chunk_buf.extend_from_slice(&command.data);
        if command.p1 == 1 {
            return ApduResponse::ok_empty();
        }
        let payload = std::mem::take(&mut self.chunk_buf);
        // Payload layout: chunk index (4), proof length (2), proof, ciphertext.
        if payload.len() < 6 {
            return ApduResponse::error(StatusWord::WRONG_LENGTH);
        }
        // lint: infallible — `payload.len() >= 6` is checked above, so both
        // fixed-width slices convert exactly.
        let index = u32::from_le_bytes(payload[..4].try_into().expect("4 bytes"));
        let proof_len = u16::from_le_bytes(payload[4..6].try_into().expect("2 bytes")) as usize; // lint: infallible — see above
        let Some(proof_bytes) = payload.get(6..6 + proof_len) else {
            return ApduResponse::error(StatusWord::WRONG_LENGTH);
        };
        let proof = match MerkleProof::decode(proof_bytes) {
            Ok(p) => p,
            Err(_) => return ApduResponse::error(StatusWord::WRONG_LENGTH),
        };
        let ciphertext = &payload[6 + proof_len..];
        // lint: infallible — the handler returns `CONDITIONS_NOT_SATISFIED`
        // earlier when no session is open.
        let session = self.session.as_mut().expect("session checked above");
        match session.supply_chunk(index, ciphertext, &proof) {
            Ok(events) => {
                // Mirror the session ledger into the card ledger so that card
                // level reports include on-card crypto work.
                card.ledger().record_decrypt(ciphertext.len());
                card.ledger().record_hash(ciphertext.len());
                card.ledger().record_events(events.len());
                if !events.is_empty() {
                    let text = writer::to_string(&events);
                    self.output_text.extend_from_slice(text.as_bytes());
                }
                let available = (self.output_text.len() - self.output_pos) as u32;
                // alloc: amortized — 4-byte response payload; the APDU response owns its data.
                ApduResponse::ok(available.to_le_bytes().to_vec())
            }
            Err(e) => ApduResponse::error(Self::status_for(&e)),
        }
    }

    fn handle_get_output(&mut self) -> ApduResponse {
        let available = &self.output_text[self.output_pos..];
        let take = available.len().min(250);
        // alloc: amortized — copies at most 250 output bytes into the APDU window, which owns its data.
        let data = available[..take].to_vec();
        self.output_pos += take;
        ApduResponse::ok(data)
    }

    fn handle_close_session(&mut self) -> ApduResponse {
        match self.session.take() {
            Some(session) => {
                // alloc: startup — session teardown, once per session.
                let stats = session.stats().clone();
                // alloc: startup — session teardown, once per session.
                let mut data = Vec::with_capacity(20);
                data.extend_from_slice(&(stats.ledger.bytes_decrypted as u32).to_le_bytes());
                data.extend_from_slice(&(stats.ledger.bytes_skipped as u32).to_le_bytes());
                data.extend_from_slice(&(stats.skipped_subtrees as u32).to_le_bytes());
                data.extend_from_slice(&(stats.chunks_fetched as u32).to_le_bytes());
                data.extend_from_slice(&(stats.peak_ram_bytes as u32).to_le_bytes());
                self.output_text.clear();
                self.output_pos = 0;
                ApduResponse::ok(data)
            }
            None => ApduResponse::error(StatusWord::CONDITIONS_NOT_SATISFIED),
        }
    }
}

impl Applet for AccessControlApplet {
    fn process(&mut self, card: &mut SmartCard, command: &Apdu) -> ApduResponse {
        match command.ins {
            ins::PUT_KEY => self.handle_put_key(card, command),
            ins::PUT_RULES => self.handle_put_rules(card, command),
            ins::PUT_QUERY => self.handle_put_query(command),
            ins::OPEN_SESSION => self.handle_open_session(card, command),
            ins::NEXT_REQUEST => self.handle_next_request(),
            ins::PUSH_CHUNK => self.handle_push_chunk(card, command),
            ins::GET_OUTPUT => self.handle_get_output(),
            ins::CLOSE_SESSION => self.handle_close_session(),
            _ => ApduResponse::error(StatusWord::INS_NOT_SUPPORTED),
        }
    }

    fn name(&self) -> &str {
        "sdds-access-control"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::authorized_view_oracle;
    use crate::conflict::AccessPolicy;
    use crate::secdoc::SecureDocumentBuilder;
    use crate::skipindex::encode::EncoderConfig;
    use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};
    use sdds_xml::{writer, Document};

    fn key() -> SecretKey {
        SecretKey::derive(b"community", "documents")
    }

    fn hospital_doc(patients: usize) -> Document {
        generator::hospital(
            &HospitalProfile {
                patients,
                ..HospitalProfile::default()
            },
            &GeneratorConfig::default(),
        )
    }

    fn medical_rules() -> RuleSet {
        RuleSet::parse(
            "+, doctor, //patient\n\
             -, doctor, //patient/ssn\n\
             +, secretary, //patient/name\n\
             +, secretary, //patient/address",
        )
        .unwrap()
    }

    fn config_for(subject: &str) -> EngineConfig {
        EngineConfig::new(EvaluatorConfig::new(medical_rules(), subject))
    }

    #[test]
    fn secure_evaluation_matches_plaintext_evaluation() {
        let doc = hospital_doc(6);
        let secure = SecureDocumentBuilder::new("folder", key()).build(&doc);
        let (events, stats) =
            evaluate_secure_document(&secure, &key(), config_for("doctor")).unwrap();
        // Oracle: evaluate the same rules on the plaintext tree.
        let expected = authorized_view_oracle(
            &doc,
            &medical_rules(),
            &Subject::new("doctor"),
            None,
            &AccessPolicy::paper(),
        );
        assert_eq!(writer::to_string(&events), writer::to_string(&expected));
        assert!(stats.chunks_fetched > 0);
        assert!(stats.evaluator.is_some());
    }

    #[test]
    fn skip_index_reduces_transferred_and_decrypted_bytes_for_restrictive_subjects() {
        let doc = hospital_doc(20);
        let secure = SecureDocumentBuilder::new("folder", key())
            .encoder_config(EncoderConfig {
                min_index_bytes: 32,
                ..EncoderConfig::default()
            })
            .build(&doc);

        // The secretary sees only names and addresses: most of each patient
        // subtree (acts, reports, prescriptions) is skippable.
        let (with_index, with_stats) =
            evaluate_secure_document(&secure, &key(), config_for("secretary")).unwrap();
        let (without_index, without_stats) = evaluate_secure_document(
            &secure,
            &key(),
            config_for("secretary").without_skip_index(),
        )
        .unwrap();

        assert_eq!(
            writer::to_string(&with_index),
            writer::to_string(&without_index),
            "skipping must not change the authorized view"
        );
        assert!(with_stats.skipped_subtrees > 0);
        assert!(with_stats.ledger.bytes_skipped > 0);
        assert!(
            with_stats.ledger.bytes_decrypted < without_stats.ledger.bytes_decrypted,
            "with index {} should decrypt less than without {}",
            with_stats.ledger.bytes_decrypted,
            without_stats.ledger.bytes_decrypted
        );
        assert!(with_stats.chunks_fetched < without_stats.chunks_fetched);
        assert!(with_stats.chunks_skipped > 0);
    }

    #[test]
    fn unknown_subject_skips_nearly_everything() {
        let doc = hospital_doc(10);
        let secure = SecureDocumentBuilder::new("folder", key()).build(&doc);
        let (events, stats) =
            evaluate_secure_document(&secure, &key(), config_for("intruder")).unwrap();
        assert!(events.is_empty());
        assert!(stats.ledger.bytes_skipped > 0);
        assert!(stats.chunks_fetched < secure.chunk_count());
    }

    #[test]
    fn query_restricts_what_is_fetched() {
        let doc = hospital_doc(12);
        let secure = SecureDocumentBuilder::new("folder", key())
            .encoder_config(EncoderConfig {
                min_index_bytes: 32,
                ..EncoderConfig::default()
            })
            .build(&doc);
        let mut config = config_for("doctor");
        config.evaluator = config
            .evaluator
            .with_query(Query::parse("//patient/name").unwrap());
        let (events, stats) = evaluate_secure_document(&secure, &key(), config).unwrap();
        let text = writer::to_string(&events);
        assert!(text.contains("<name>"));
        assert!(!text.contains("<report>"));
        // The query makes most of the document irrelevant: plenty of skipping.
        assert!(stats.skipped_subtrees > 0);

        // Oracle agreement.
        let expected = authorized_view_oracle(
            &doc,
            &medical_rules(),
            &Subject::new("doctor"),
            Some(&Query::parse("//patient/name").unwrap()),
            &AccessPolicy::paper(),
        );
        assert_eq!(text, writer::to_string(&expected));
    }

    #[test]
    fn wrong_key_fails_at_open() {
        let doc = hospital_doc(2);
        let secure = SecureDocumentBuilder::new("folder", key()).build(&doc);
        let wrong = SecretKey::derive(b"other", "documents");
        assert!(
            SecureEvaluationSession::open(secure.header.clone(), wrong, config_for("doctor"))
                .is_err()
        );
    }

    #[test]
    fn tampered_chunk_is_rejected_during_the_session() {
        let doc = hospital_doc(3);
        let secure = SecureDocumentBuilder::new("folder", key()).build(&doc);
        let mut session =
            SecureEvaluationSession::open(secure.header.clone(), key(), config_for("doctor"))
                .unwrap();
        let SessionRequest::NeedChunk(index) = session.next_request() else {
            panic!("expected a chunk request");
        };
        let mut chunk = secure.chunk(index as usize).unwrap().to_vec();
        chunk[0] ^= 0xA5;
        let proof = secure.proof(index as usize).unwrap();
        assert!(matches!(
            session.supply_chunk(index, &chunk, &proof),
            Err(CoreError::Crypto(_))
        ));
        // Supplying a proof for the wrong position is also rejected.
        let other_proof = secure.proof((index + 1) as usize).unwrap();
        assert!(session
            .supply_chunk(index, secure.chunk(index as usize).unwrap(), &other_proof)
            .is_err());
    }

    #[test]
    fn out_of_order_chunks_are_rejected() {
        let doc = hospital_doc(3);
        let secure = SecureDocumentBuilder::new("folder", key()).build(&doc);
        let mut session =
            SecureEvaluationSession::open(secure.header.clone(), key(), config_for("doctor"))
                .unwrap();
        let wrong_index = 1u32;
        let proof = secure.proof(wrong_index as usize).unwrap();
        assert!(session
            .supply_chunk(wrong_index, secure.chunk(1).unwrap(), &proof)
            .is_err());
    }

    #[test]
    fn ram_budget_violation_is_reported() {
        let doc = hospital_doc(5);
        let secure = SecureDocumentBuilder::new("folder", key()).build(&doc);
        let config = config_for("doctor").with_ram_budget(64); // absurdly small
        let mut session =
            SecureEvaluationSession::open(secure.header.clone(), key(), config).unwrap();
        let result = run_local(&secure, &mut session);
        assert!(matches!(
            result,
            Err(CoreError::Card(CardError::RamExceeded { .. }))
        ));
    }

    #[test]
    fn session_stats_report_progress() {
        let doc = hospital_doc(4);
        let secure = SecureDocumentBuilder::new("folder", key()).build(&doc);
        let mut session =
            SecureEvaluationSession::open(secure.header.clone(), key(), config_for("doctor"))
                .unwrap();
        assert!(!session.is_done());
        assert_eq!(session.header().doc_id, "folder");
        run_local(&secure, &mut session).unwrap();
        assert!(session.is_done());
        assert_eq!(session.next_request(), SessionRequest::Done);
        let (_, stats) = session.finish().unwrap();
        assert!(stats.peak_ram_bytes > 0);
        assert!(stats.ledger.events_processed > 0);
        assert!(stats.ledger.channel.total_bytes() > 0);
    }

    #[test]
    fn finishing_an_unfinished_session_is_an_error() {
        let doc = hospital_doc(2);
        let secure = SecureDocumentBuilder::new("folder", key()).build(&doc);
        let session =
            SecureEvaluationSession::open(secure.header.clone(), key(), config_for("doctor"))
                .unwrap();
        assert!(session.finish().is_err());
    }

    // -- Applet level ------------------------------------------------------

    mod applet {
        use super::*;
        use crate::session::TrustedServer;
        use sdds_card::apdu::fragment_payload;
        use sdds_card::{CardProfile, CardRuntime};

        /// Terminal-side driver for the applet (a miniature proxy used by the
        /// tests; the full proxy lives in `sdds-proxy`).
        fn provision(
            runtime: &mut CardRuntime<AccessControlApplet>,
            server: &TrustedServer,
            subject: &Subject,
        ) {
            let doc_key = server.provision_document_key(subject, DEFAULT_DOC_KEY_ID);
            runtime
                .exchange_expect_ok(&Apdu::new(ins::PUT_KEY, 0, 0, doc_key.encode()).unwrap())
                .unwrap();
            let rules_key = server.provision_rules_key(subject, RULES_KEY_ID);
            runtime
                .exchange_expect_ok(&Apdu::new(ins::PUT_KEY, 0, 0, rules_key.encode()).unwrap())
                .unwrap();
            let protected = server.protected_rules_for(subject).encode();
            let fragments = fragment_payload(&protected);
            for (i, frag) in fragments.iter().enumerate() {
                let more = u8::from(i + 1 < fragments.len());
                runtime
                    .exchange_expect_ok(&Apdu::new(ins::PUT_RULES, more, 0, frag.to_vec()).unwrap())
                    .unwrap();
            }
        }

        fn run_document(
            runtime: &mut CardRuntime<AccessControlApplet>,
            secure: &SecureDocument,
        ) -> String {
            runtime
                .exchange_expect_ok(
                    &Apdu::new(ins::OPEN_SESSION, 0, 0, secure.header.encode()).unwrap(),
                )
                .unwrap();
            loop {
                let next = runtime
                    .exchange_expect_ok(&Apdu::simple(ins::NEXT_REQUEST, 0, 0))
                    .unwrap();
                let index = u32::from_le_bytes(next[..4].try_into().unwrap());
                if index == u32::MAX {
                    break;
                }
                let mut payload = Vec::new();
                payload.extend_from_slice(&index.to_le_bytes());
                let proof = secure.proof(index as usize).unwrap().encode();
                payload.extend_from_slice(&(proof.len() as u16).to_le_bytes());
                payload.extend_from_slice(&proof);
                payload.extend_from_slice(secure.chunk(index as usize).unwrap());
                let fragments = fragment_payload(&payload);
                for (i, frag) in fragments.iter().enumerate() {
                    let more = u8::from(i + 1 < fragments.len());
                    runtime
                        .exchange_expect_ok(
                            &Apdu::new(ins::PUSH_CHUNK, more, 0, frag.to_vec()).unwrap(),
                        )
                        .unwrap();
                }
            }
            let mut text = Vec::new();
            loop {
                let part = runtime
                    .exchange_expect_ok(&Apdu::simple(ins::GET_OUTPUT, 0, 0))
                    .unwrap();
                if part.is_empty() {
                    break;
                }
                text.extend_from_slice(&part);
            }
            runtime
                .exchange_expect_ok(&Apdu::simple(ins::CLOSE_SESSION, 0, 0))
                .unwrap();
            String::from_utf8(text).unwrap()
        }

        #[test]
        fn full_apdu_round_trip_produces_the_authorized_view() {
            let server = TrustedServer::new(b"community", medical_rules());
            let subject = Subject::new("secretary");
            let doc = hospital_doc(3);
            let secure = SecureDocumentBuilder::new("folder", server.document_key()).build(&doc);

            let applet = AccessControlApplet::new("secretary", server.transport_key_for(&subject));
            // The modern profile gives the session enough applet RAM for a
            // 512-byte chunk plus the evaluator working set.
            let mut runtime = CardRuntime::new(CardProfile::modern_secure_element(), applet);
            provision(&mut runtime, &server, &subject);
            let view = run_document(&mut runtime, &secure);

            let expected = authorized_view_oracle(
                &doc,
                &medical_rules(),
                &subject,
                None,
                &AccessPolicy::paper(),
            );
            assert_eq!(view, writer::to_string(&expected));
            assert!(view.contains("<name>"));
            assert!(!view.contains("<ssn>"));
            // Channel accounting happened at the APDU layer.
            assert!(runtime.card().ledger_ref().channel.apdu_exchanges > 10);
            assert!(runtime.card().ledger_ref().channel.bytes_to_card > 1000);
        }

        #[test]
        fn applet_refuses_sessions_without_rules_or_keys() {
            let server = TrustedServer::new(b"community", medical_rules());
            let subject = Subject::new("doctor");
            let doc = hospital_doc(1);
            let secure = SecureDocumentBuilder::new("folder", server.document_key()).build(&doc);
            let applet = AccessControlApplet::new("doctor", server.transport_key_for(&subject));
            let mut runtime = CardRuntime::new(CardProfile::modern_secure_element(), applet);
            // No rules installed yet.
            let resp = runtime
                .exchange(&Apdu::new(ins::OPEN_SESSION, 0, 0, secure.header.encode()).unwrap());
            assert_eq!(resp.status, StatusWord::CONDITIONS_NOT_SATISFIED);
            // Unknown instruction.
            let resp = runtime.exchange(&Apdu::simple(0x99, 0, 0));
            assert_eq!(resp.status, StatusWord::INS_NOT_SUPPORTED);
            // NEXT_REQUEST without a session.
            let resp = runtime.exchange(&Apdu::simple(ins::NEXT_REQUEST, 0, 0));
            assert_eq!(resp.status, StatusWord::CONDITIONS_NOT_SATISFIED);
        }

        #[test]
        fn applet_rejects_rules_from_a_foreign_community() {
            let server = TrustedServer::new(b"community", medical_rules());
            let other = TrustedServer::new(b"other-community", medical_rules());
            let subject = Subject::new("doctor");
            let applet = AccessControlApplet::new("doctor", server.transport_key_for(&subject));
            let mut runtime = CardRuntime::new(CardProfile::modern_secure_element(), applet);
            // Provision legitimate keys.
            let rules_key = server.provision_rules_key(&subject, RULES_KEY_ID);
            runtime
                .exchange_expect_ok(&Apdu::new(ins::PUT_KEY, 0, 0, rules_key.encode()).unwrap())
                .unwrap();
            // Rules sealed by the other community do not verify.
            let foreign = other.protected_rules_for(&subject).encode();
            let fragments = fragment_payload(&foreign);
            let mut last = ApduResponse::ok_empty();
            for (i, frag) in fragments.iter().enumerate() {
                let more = u8::from(i + 1 < fragments.len());
                last =
                    runtime.exchange(&Apdu::new(ins::PUT_RULES, more, 0, frag.to_vec()).unwrap());
            }
            assert_eq!(last.status, StatusWord::SECURITY_NOT_SATISFIED);
        }
    }
}
