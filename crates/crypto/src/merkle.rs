//! Merkle tree over document chunks.
//!
//! The SOE must check that the encrypted document "has not been tampered"
//! (§2.1) — an attacker controlling the DSP or the channel could substitute or
//! reorder encrypted blocks to mislead the access-control evaluator. Because
//! the skip index makes the SOE consume an arbitrary *subset* of the chunks, a
//! simple whole-document MAC would force it to download everything; a Merkle
//! tree instead lets the SOE verify each consumed chunk against the (signed)
//! root digest using a logarithmic-size proof, regardless of which chunks are
//! skipped.

use crate::error::CryptoError;
use crate::sha256::{sha256, Sha256, DIGEST_SIZE};

/// A full Merkle tree, kept by the producer (the publisher encrypting the
/// document) so that it can attach a proof to every chunk it serves.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// `levels[0]` are the leaf digests; the last level has a single root.
    levels: Vec<Vec<[u8; DIGEST_SIZE]>>,
}

/// A proof that a chunk belongs to a tree with a given root: the sibling
/// digests from the leaf up to the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// Sibling digest at each level, with a flag telling whether the sibling
    /// is on the right (`true`) or on the left (`false`).
    pub siblings: Vec<([u8; DIGEST_SIZE], bool)>,
}

fn hash_leaf(data: &[u8]) -> [u8; DIGEST_SIZE] {
    // Domain separation between leaves and internal nodes prevents
    // second-preimage attacks where an internal node is presented as a leaf.
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(data);
    h.finalize()
}

fn hash_node(left: &[u8; DIGEST_SIZE], right: &[u8; DIGEST_SIZE]) -> [u8; DIGEST_SIZE] {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left);
    h.update(right);
    h.finalize()
}

impl MerkleTree {
    /// Builds a tree over `chunks` (at least one chunk required; an empty
    /// document is represented by one empty chunk).
    pub fn build<T: AsRef<[u8]>>(chunks: &[T]) -> Self {
        let leaves: Vec<[u8; DIGEST_SIZE]> = if chunks.is_empty() {
            vec![hash_leaf(b"")]
        } else {
            chunks.iter().map(|c| hash_leaf(c.as_ref())).collect()
        };
        let mut levels = vec![leaves];
        while levels.last().map(Vec::len).unwrap_or(0) > 1 {
            // lint: infallible — `levels` starts with the leaf level and
            // only grows.
            let prev = levels.last().expect("at least one level");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                if pair.len() == 2 {
                    next.push(hash_node(&pair[0], &pair[1]));
                } else {
                    // Odd node is promoted by hashing it with itself, which
                    // keeps proofs uniform.
                    next.push(hash_node(&pair[0], &pair[0]));
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Root digest.
    pub fn root(&self) -> [u8; DIGEST_SIZE] {
        *self
            .levels
            .last()
            // lint: infallible — construction always pushes the leaf level,
            // and the loop stops once the top level holds exactly one node.
            .expect("tree has a root")
            .first()
            // lint: infallible — same construction argument as above.
            .expect("root")
    }

    /// Digest of leaf `index`.
    pub fn leaf(&self, index: usize) -> Option<[u8; DIGEST_SIZE]> {
        self.levels[0].get(index).copied()
    }

    /// Builds the inclusion proof for leaf `index`.
    pub fn proof(&self, index: usize) -> Result<MerkleProof, CryptoError> {
        if index >= self.leaf_count() {
            return Err(CryptoError::BadProof {
                // alloc: cold — out-of-range leaf error path.
                message: format!("leaf index {index} out of range (0..{})", self.leaf_count()),
            });
        }
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = if idx.is_multiple_of(2) {
                idx + 1
            } else {
                idx - 1
            };
            let sibling = level.get(sibling_idx).copied().unwrap_or(level[idx]);
            // `true` means the sibling sits on the right of the current node.
            siblings.push((sibling, idx.is_multiple_of(2)));
            idx /= 2;
        }
        Ok(MerkleProof {
            leaf_index: index,
            siblings,
        })
    }

    /// Size in bytes of one serialised proof (used by the cost model).
    pub fn proof_len(&self) -> usize {
        (self.levels.len() - 1) * (DIGEST_SIZE + 1) + 8
    }
}

impl MerkleProof {
    /// Verifies that `chunk` is the leaf this proof commits to, under `root`.
    pub fn verify(&self, chunk: &[u8], root: &[u8; DIGEST_SIZE]) -> Result<(), CryptoError> {
        let mut digest = hash_leaf(chunk);
        for (sibling, sibling_is_right) in &self.siblings {
            digest = if *sibling_is_right {
                hash_node(&digest, sibling)
            } else {
                hash_node(sibling, &digest)
            };
        }
        if &digest == root {
            Ok(())
        } else {
            Err(CryptoError::IntegrityFailure {
                // alloc: cold — integrity-failure error path.
                context: format!("merkle proof for chunk {}", self.leaf_index),
            })
        }
    }

    /// Serialised size of [`MerkleProof::encode`]'s output, without building
    /// it — callers that only account proof bytes (the DSP's per-shard serve
    /// counters) can stay allocation-free.
    pub fn encoded_len(&self) -> usize {
        // leaf index + sibling count + (side flag + digest) per sibling.
        8 + 1 + self.siblings.len() * (DIGEST_SIZE + 1)
    }

    /// Serialises the proof (leaf index, count, then digest+side pairs).
    pub fn encode(&self) -> Vec<u8> {
        // alloc: amortized — one proof wire image per served chunk, ~33 bytes per tree level.
        let mut out = Vec::with_capacity(8 + 1 + self.siblings.len() * (DIGEST_SIZE + 1));
        out.extend_from_slice(&(self.leaf_index as u64).to_le_bytes());
        out.push(self.siblings.len() as u8);
        for (digest, right) in &self.siblings {
            out.push(u8::from(*right));
            out.extend_from_slice(digest);
        }
        out
    }

    /// Deserialises a proof produced by [`MerkleProof::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CryptoError> {
        let err = |m: &str| CryptoError::BadProof {
            // alloc: cold — malformed proof error path.
            message: m.to_owned(),
        };
        if bytes.len() < 9 {
            return Err(err("proof too short"));
        }
        // lint: infallible — `bytes.len() >= 9` is checked above.
        let leaf_index = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")) as usize;
        let count = bytes[8] as usize;
        // alloc: amortized — one decoded proof per supplied chunk, bounded by tree depth.
        let mut siblings = Vec::with_capacity(count);
        let mut pos = 9usize;
        for _ in 0..count {
            let right = *bytes.get(pos).ok_or_else(|| err("truncated proof"))? != 0;
            pos += 1;
            let digest: [u8; DIGEST_SIZE] = bytes
                .get(pos..pos + DIGEST_SIZE)
                .ok_or_else(|| err("truncated proof"))?
                .try_into()
                // lint: infallible — the checked `get` returns exactly
                // `DIGEST_SIZE` bytes.
                .expect("digest size");
            pos += DIGEST_SIZE;
            siblings.push((digest, right));
        }
        Ok(MerkleProof {
            leaf_index,
            siblings,
        })
    }
}

/// Computes the digest that a signer would sign for a document: the Merkle
/// root bound to the document identifier, so that a valid root for one
/// document cannot be replayed for another.
pub fn document_commitment(doc_id: &str, root: &[u8; DIGEST_SIZE]) -> [u8; DIGEST_SIZE] {
    let mut h = Sha256::new();
    h.update(doc_id.as_bytes());
    h.update(&[0x02]);
    h.update(root);
    h.finalize()
}

/// Convenience wrapper hashing arbitrary bytes (re-exported for callers that
/// only need a digest, e.g. rule-set versioning).
pub fn digest(data: &[u8]) -> [u8; DIGEST_SIZE] {
    sha256(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunks(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("chunk-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_chunk_tree() {
        let tree = MerkleTree::build(&chunks(1));
        assert_eq!(tree.leaf_count(), 1);
        let proof = tree.proof(0).unwrap();
        assert!(proof.siblings.is_empty());
        proof.verify(b"chunk-0", &tree.root()).unwrap();
        assert!(proof.verify(b"chunk-1", &tree.root()).is_err());
    }

    #[test]
    fn all_proofs_verify_for_various_sizes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 33] {
            let data = chunks(n);
            let tree = MerkleTree::build(&data);
            let root = tree.root();
            for (i, chunk) in data.iter().enumerate() {
                let proof = tree.proof(i).unwrap();
                proof
                    .verify(chunk, &root)
                    .unwrap_or_else(|e| panic!("n={n} i={i}: {e}"));
            }
        }
    }

    #[test]
    fn tampered_chunk_is_detected() {
        let data = chunks(8);
        let tree = MerkleTree::build(&data);
        let proof = tree.proof(3).unwrap();
        assert!(proof.verify(b"chunk-3-tampered", &tree.root()).is_err());
    }

    #[test]
    fn swapped_chunks_are_detected() {
        // Substituting one valid chunk for another (both from the same
        // document) must fail because the proof binds the position.
        let data = chunks(8);
        let tree = MerkleTree::build(&data);
        let proof = tree.proof(2).unwrap();
        assert!(proof.verify(&data[5], &tree.root()).is_err());
    }

    #[test]
    fn proof_out_of_range_is_rejected() {
        let tree = MerkleTree::build(&chunks(4));
        assert!(tree.proof(4).is_err());
    }

    #[test]
    fn proof_encode_decode_roundtrip() {
        let data = chunks(9);
        let tree = MerkleTree::build(&data);
        for (i, chunk) in data.iter().enumerate() {
            let proof = tree.proof(i).unwrap();
            let bytes = proof.encode();
            let back = MerkleProof::decode(&bytes).unwrap();
            assert_eq!(back, proof);
            back.verify(chunk, &tree.root()).unwrap();
        }
        assert!(MerkleProof::decode(&[1, 2, 3]).is_err());
        let good = tree.proof(0).unwrap().encode();
        assert!(MerkleProof::decode(&good[..good.len() - 1]).is_err());
    }

    #[test]
    fn different_documents_have_different_roots_and_commitments() {
        let t1 = MerkleTree::build(&chunks(4));
        let mut other = chunks(4);
        other[2] = b"chunk-2-modified".to_vec();
        let t2 = MerkleTree::build(&other);
        assert_ne!(t1.root(), t2.root());
        assert_ne!(
            document_commitment("doc-a", &t1.root()),
            document_commitment("doc-b", &t1.root())
        );
    }

    #[test]
    fn empty_input_builds_a_tree() {
        let tree = MerkleTree::build::<Vec<u8>>(&[]);
        assert_eq!(tree.leaf_count(), 1);
        tree.proof(0).unwrap().verify(b"", &tree.root()).unwrap();
    }

    #[test]
    fn proof_len_is_positive_and_grows_with_depth() {
        let small = MerkleTree::build(&chunks(2));
        let large = MerkleTree::build(&chunks(64));
        assert!(small.proof_len() > 0);
        assert!(large.proof_len() > small.proof_len());
    }
}
