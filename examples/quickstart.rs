//! Quickstart: protect an XML document with user-specific rules, store it
//! encrypted at an untrusted DSP, and read it back through a smart-card SOE —
//! all through the two facade types, `sdds::Publisher` and `sdds::Client`.
//!
//! Run with: `cargo run --example quickstart`

use sdds::{Client, Document, Publisher, RuleSet, SddsError};

fn main() -> Result<(), SddsError> {
    // 1. A document the family wants to share safely.
    let document = Document::parse(
        r#"<family>
             <agenda>
               <event private="false"><date>2005-06-14</date><title>SIGMOD demo session</title></event>
               <event private="true"><date>2005-06-20</date><title>Surprise party</title></event>
             </agenda>
             <budget><item>rent</item><amount>900</amount></budget>
           </family>"#,
    )?;

    // 2. The sharing policy: the parents see everything, the teenager sees the
    //    agenda but neither private events nor the budget.
    let rules = RuleSet::parse(
        "+, parent, /family\n\
         +, teen, /family/agenda\n\
         -, teen, //event[@private = \"true\"]\n\
         -, teen, //budget",
    )?;

    // 3. The trusted (family-owned) side: keys, rules, PKI and the handle to
    //    the untrusted DSP service, all wired by the publisher. Encrypt and
    //    publish the document.
    let publisher = Publisher::new(b"family-secret", rules);
    let receipt = publisher.publish("family-agenda", &document)?;
    println!(
        "published `family-agenda`: {} encrypted chunks, {} bytes of skip index",
        receipt.chunks, receipt.index_bytes
    );

    // 4. Each user gets a provisioned client (a personalised card in a
    //    terminal) and reads the document: access control runs *inside the
    //    card*, the DSP only ever serves ciphertext.
    for user in ["parent", "teen"] {
        let client = Client::builder(user).provision(&publisher)?;
        let view = client.authorized_view("family-agenda")?;
        println!("\n=== view of `{user}` ===\n{view}");
    }

    // A stranger's card is provisioned too (any card can ask), but no rule
    // grants it anything: the SOE delivers an empty view.
    let stranger = Client::builder("stranger").provision(&publisher)?;
    assert!(stranger.authorized_view("family-agenda")?.is_empty());
    println!("\n=== view of `stranger` ===\n(empty: no rule grants the stranger anything)");

    // 5. Applications that want events as they decrypt use the incremental
    //    stream instead of collecting one String.
    let parent = Client::builder("parent").provision(&publisher)?;
    let first_events: Vec<_> = parent
        .open_stream("family-agenda")?
        .take(3)
        .collect::<Result<_, _>>()?;
    println!("\nfirst 3 authorized events of `parent`: {first_events:?}");
    Ok(())
}
