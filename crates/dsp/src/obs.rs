//! The DSP's telemetry bundle: one [`Registry`] + one [`FlightRecorder`]
//! feeding per-layer handle structs.
//!
//! [`DspObs`] owns the registry; the layer structs ([`ServeObs`],
//! [`SchedulerObs`], [`ActorObs`], [`SessionObs`]) are cheap bundles of
//! `Arc`-backed handles the hot paths clone out of it. Components that run
//! without a service (a bare [`crate::ShardedStore`], a scheduler in a unit
//! test) fall back to *detached* handles — same cells, no registry — so
//! instrumentation never becomes a constructor burden.
//!
//! Detached bundles carry `live == false` and the hot paths skip their
//! telemetry work entirely: a detached component pays nothing, and — just as
//! important — adds no scheduling points to the `sdds-check` model-checked
//! scenarios, which all build components stand-alone. Registered bundles
//! (everything a [`crate::DspService`] hands out) are live.
//!
//! Metric family names live in [`sdds_obs::families`]; the `doc-sync` lint
//! rule keeps ARCHITECTURE.md's metric table synchronized with that module.

use sdds_core::CoreError;
use sdds_obs::{families, Counter, FlightRecorder, Gauge, Histogram, ObsSnapshot, Registry};
use sdds_sync::sync::Arc;

use crate::server::AtomicServerStats;

/// Flight-recorder lanes: enough for the worker counts the schedulers use;
/// callers key lanes by worker or shard index (wrapped into range).
const RECORDER_LANES: usize = 8;
/// Spans each lane retains (overwrite-oldest beyond this).
const RECORDER_CAPACITY: usize = 256;

/// Labelled error counters — one per typed failure the serving and actor
/// layers can produce. Clones share cells.
#[derive(Debug, Clone, Default)]
pub struct ErrorObs {
    /// `StaleRevision` rejections (republish under a pinned reader).
    pub stale_revision: Counter,
    /// `NotFound` (unknown document id).
    pub not_found: Counter,
    /// `NoRulesForSubject` (unprovisioned subject).
    pub no_rules: Counter,
    /// Sends into a retired actor mailbox.
    pub mailbox_closed: Counter,
}

impl ErrorObs {
    fn registered(registry: &Registry) -> Self {
        ErrorObs {
            stale_revision: registry
                .counter_with(families::ERRORS, Some(families::ERROR_STALE_REVISION)),
            not_found: registry.counter_with(families::ERRORS, Some(families::ERROR_NOT_FOUND)),
            no_rules: registry.counter_with(families::ERRORS, Some(families::ERROR_NO_RULES)),
            mailbox_closed: registry
                .counter_with(families::ERRORS, Some(families::ERROR_MAILBOX_CLOSED)),
        }
    }
}

/// Per-shard serving handles: the byte-accounting counters (shared with the
/// shard's [`AtomicServerStats`]) plus routing and staleness tallies.
#[derive(Debug, Clone, Default)]
pub struct ShardObs {
    /// The shard's serving counters (`dsp.serve.*`, labelled per shard).
    pub stats: AtomicServerStats,
    /// Requests this shard answered from a replica clone.
    pub replica_routes: Counter,
    /// Stale-revision rejections raised while this shard served.
    pub stale_revisions: Counter,
}

/// Serving-path telemetry of a [`crate::ShardedStore`]. Clones share cells.
#[derive(Debug, Clone)]
pub struct ServeObs {
    shards: Vec<ShardObs>,
    /// Wall-clock latency of one `serve` call, nanoseconds.
    pub latency: Histogram,
    /// Labelled typed-failure counters.
    pub errors: ErrorObs,
    /// Flight recorder the serve spans land in (lane = serving shard).
    pub recorder: FlightRecorder,
    /// False for detached bundles: the serve path skips telemetry entirely.
    pub live: bool,
}

impl ServeObs {
    /// Handles registered in `registry` (shard counters labelled
    /// `shard=<i>`), recording spans into `recorder`.
    pub fn registered(
        registry: &Registry,
        recorder: FlightRecorder,
        errors: ErrorObs,
        shards: usize,
    ) -> Self {
        ServeObs {
            shards: (0..shards.max(1))
                .map(|index| {
                    let label = format!("shard={index}");
                    ShardObs {
                        stats: AtomicServerStats::registered(registry, &label),
                        replica_routes: registry
                            .counter_with(families::SERVE_REPLICA_ROUTES, Some(&label)),
                        stale_revisions: registry.counter_with(families::SERVE_STALE, Some(&label)),
                    }
                })
                .collect(),
            latency: registry.histogram(families::SERVE_LATENCY),
            errors,
            recorder,
            live: true,
        }
    }

    /// Detached handles (no registry) for stand-alone stores and tests.
    pub fn detached(shards: usize) -> Self {
        ServeObs {
            shards: (0..shards.max(1)).map(|_| ShardObs::default()).collect(),
            latency: Histogram::new(),
            errors: ErrorObs::default(),
            recorder: FlightRecorder::new(RECORDER_LANES, RECORDER_CAPACITY),
            live: false,
        }
    }

    /// Handles of shard `index` (wrapped into range).
    pub fn shard(&self, index: usize) -> &ShardObs {
        let len = self.shards.len().max(1);
        // lint: infallible — index is wrapped into 0..len and shards is non-empty by construction
        &self.shards[index % len]
    }

    /// Closes the accounting of one serve: latency histogram, a flight
    /// record on the serving shard's lane, and — on failure — the labelled
    /// error counters (stale revisions also count against the shard).
    /// No-op on a detached bundle.
    pub fn finish_serve(&self, shard: usize, started_nanos: u64, error: Option<&CoreError>) {
        if !self.live {
            return;
        }
        let duration = self.recorder.now_nanos().saturating_sub(started_nanos);
        self.latency.record(duration);
        self.recorder
            .record(shard, "dsp.serve", started_nanos, duration);
        match error {
            Some(CoreError::StaleRevision { .. }) => {
                self.shard(shard).stale_revisions.inc();
                self.errors.stale_revision.inc();
            }
            Some(CoreError::NotFound { .. }) => self.errors.not_found.inc(),
            Some(CoreError::NoRulesForSubject { .. }) => self.errors.no_rules.inc(),
            _ => {}
        }
    }
}

/// Thread-engine scheduler telemetry. Clones share cells.
#[derive(Debug, Clone)]
pub struct SchedulerObs {
    /// Current and high-water run-queue depth.
    pub queue_depth: Gauge,
    /// Session quanta executed.
    pub steps: Counter,
    /// Wall-clock latency of one session step, nanoseconds.
    pub step_latency: Histogram,
    /// Flight recorder the step spans land in (lane = worker index).
    pub recorder: FlightRecorder,
    /// False for detached bundles: the step path skips telemetry entirely.
    pub live: bool,
}

impl SchedulerObs {
    fn registered(registry: &Registry, recorder: FlightRecorder) -> Self {
        SchedulerObs {
            queue_depth: registry.gauge(families::SCHED_QUEUE_DEPTH),
            steps: registry.counter(families::SCHED_STEPS),
            step_latency: registry.histogram(families::SCHED_STEP_LATENCY),
            recorder,
            live: true,
        }
    }

    /// Detached handles (no registry) for stand-alone schedulers.
    pub fn detached() -> Self {
        SchedulerObs {
            queue_depth: Gauge::new(),
            steps: Counter::new(),
            step_latency: Histogram::new(),
            recorder: FlightRecorder::new(RECORDER_LANES, RECORDER_CAPACITY),
            live: false,
        }
    }
}

/// Actor-engine telemetry: the park/unpark protocol made visible. Clones
/// share cells.
#[derive(Debug, Clone)]
pub struct ActorObs {
    /// Dispatches (mailbox claims that ran a session).
    pub dispatches: Counter,
    /// Dispatches claimed from another worker's run queue.
    pub steals: Counter,
    /// Actors parked after a dispatch drained their mailbox.
    pub parks: Counter,
    /// Sends that found the actor parked and rescheduled it.
    pub unparks: Counter,
    /// Condvar broadcasts waking the worker pool.
    pub wakes: Counter,
    /// Times a sender blocked on a full mailbox (backpressure).
    pub mailbox_stalls: Counter,
    /// Sends rejected by a retired mailbox.
    pub mailbox_closed: Counter,
    /// Wall-clock latency of one dispatch, nanoseconds.
    pub dispatch_latency: Histogram,
    /// Flight recorder the dispatch spans land in (lane = worker index).
    pub recorder: FlightRecorder,
    /// False for detached bundles: the dispatch path skips telemetry
    /// entirely.
    pub live: bool,
}

impl ActorObs {
    fn registered(registry: &Registry, recorder: FlightRecorder, errors: &ErrorObs) -> Self {
        ActorObs {
            dispatches: registry.counter(families::ACTOR_DISPATCHES),
            steals: registry.counter(families::ACTOR_STEALS),
            parks: registry.counter(families::ACTOR_PARKS),
            unparks: registry.counter(families::ACTOR_UNPARKS),
            wakes: registry.counter(families::ACTOR_WAKES),
            mailbox_stalls: registry.counter(families::ACTOR_MAILBOX_STALLS),
            mailbox_closed: errors.mailbox_closed.clone(),
            dispatch_latency: registry.histogram(families::ACTOR_DISPATCH_LATENCY),
            recorder,
            live: true,
        }
    }

    /// Detached handles (no registry) for stand-alone engines.
    pub fn detached() -> Self {
        ActorObs {
            dispatches: Counter::new(),
            steals: Counter::new(),
            parks: Counter::new(),
            unparks: Counter::new(),
            wakes: Counter::new(),
            mailbox_stalls: Counter::new(),
            mailbox_closed: Counter::new(),
            dispatch_latency: Histogram::new(),
            recorder: FlightRecorder::new(RECORDER_LANES, RECORDER_CAPACITY),
            live: false,
        }
    }
}

/// Card-session telemetry: what crossed the terminal/card wire and what the
/// client actually received. Clones share cells.
#[derive(Debug, Clone, Default)]
pub struct SessionObs {
    /// APDU round-trips (after batching).
    pub apdu_round_trips: Counter,
    /// Bytes over the terminal/card wire, both directions.
    pub wire_bytes: Counter,
    /// Authorized events delivered to client views.
    pub events_delivered: Counter,
    /// False for detached bundles: recording methods are no-ops.
    pub live: bool,
}

impl SessionObs {
    fn registered(registry: &Registry) -> Self {
        SessionObs {
            apdu_round_trips: registry.counter(families::SESSION_APDUS),
            wire_bytes: registry.counter(families::SESSION_WIRE_BYTES),
            events_delivered: registry.counter(families::SESSION_EVENTS),
            live: true,
        }
    }

    /// Records one terminal↔card exchange of `to_card + from_card` bytes.
    /// No-op on a detached bundle.
    pub fn record_exchange(&self, to_card: usize, from_card: usize) {
        if !self.live {
            return;
        }
        self.apdu_round_trips.inc();
        self.wire_bytes.add((to_card + from_card) as u64);
    }

    /// Counts one authorized event handed to the application. No-op on a
    /// detached bundle.
    pub fn event_delivered(&self) {
        if self.live {
            self.events_delivered.inc();
        }
    }
}

/// The whole DSP telemetry bundle: registry, flight recorder and the
/// per-layer handle structs every instrumented component clones from.
#[derive(Debug)]
pub struct DspObs {
    registry: Registry,
    recorder: FlightRecorder,
    serve: ServeObs,
    scheduler: SchedulerObs,
    actors: ActorObs,
    session: SessionObs,
    errors: ErrorObs,
}

impl DspObs {
    /// A bundle for a service of `shards` shards, on the real wall clock.
    pub fn new(shards: usize) -> Self {
        let registry = Registry::new();
        let recorder = FlightRecorder::new(RECORDER_LANES, RECORDER_CAPACITY);
        let errors = ErrorObs::registered(&registry);
        let serve = ServeObs::registered(&registry, recorder.clone(), errors.clone(), shards);
        let scheduler = SchedulerObs::registered(&registry, recorder.clone());
        let actors = ActorObs::registered(&registry, recorder.clone(), &errors);
        let session = SessionObs::registered(&registry);
        DspObs {
            registry,
            recorder,
            serve,
            scheduler,
            actors,
            session,
            errors,
        }
    }

    /// The registry behind the handles.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The shared flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Serving-path handles (cloned into the [`crate::ShardedStore`]).
    pub fn serve(&self) -> ServeObs {
        self.serve.clone()
    }

    /// Thread-scheduler handles.
    pub fn scheduler(&self) -> SchedulerObs {
        self.scheduler.clone()
    }

    /// Actor-engine handles.
    pub fn actors(&self) -> ActorObs {
        self.actors.clone()
    }

    /// Card-session handles.
    pub fn session(&self) -> SessionObs {
        self.session.clone()
    }

    /// Labelled error counters.
    pub fn errors(&self) -> ErrorObs {
        self.errors.clone()
    }

    /// A point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> ObsSnapshot {
        self.registry.snapshot()
    }

    /// Zeroes every registered metric (between experiment runs).
    pub fn reset(&self) {
        self.registry.reset();
    }
}

/// A shareable default bundle: `Arc<DspObs>` with one shard's worth of
/// serving handles — what detached components use when no service wires
/// them.
pub fn detached() -> Arc<DspObs> {
    Arc::new(DspObs::new(1))
}
