//! Model-checked invariants of the actor engine's park/unpark protocol.
//!
//! The engine (`sdds_dsp::actors`) is built entirely on `sdds-sync`
//! primitives, so in a normal build these tests are concurrency smoke tests,
//! and under `RUSTFLAGS="--cfg sdds_check"` (the `scripts/ci.sh` model-check
//! step) the *same* sources run on the shim primitives and the scheduler
//! explores interleavings of the send/park hand-off up to the branch budget.
//!
//! Two invariants:
//!
//! 1. **No lost wakeup.** A send and the dispatching worker's park decision
//!    race on purpose; whatever the interleaving, every sent event is
//!    delivered and the actor completes — a lost wakeup would leave the run
//!    deadlocked (the model checker reports it) or the actor unretired.
//! 2. **No double-step.** An actor's id sits in at most one run queue, so no
//!    dispatch can find an empty mailbox (the probe fails the run from
//!    inside if an event-less dispatch or a duplicate delivery reaches it).
//!
//! Like the thread scheduler's worker-race test, these scenarios have
//! condvar wait/recheck loops that do not exhaust under a loom-lite without
//! DPOR, so they run as bounded soaks: the whole branch budget is spent and
//! every explored schedule must uphold the invariant (`SDDS_CHECK_BRANCHES`
//! widens the CI soak).

use sdds_check::Model;
use sdds_dsp::actors::{ActorEngine, ActorSession, ActorStatus};

fn model() -> Model {
    // `Model::new()` honours SDDS_CHECK_BRANCHES / SDDS_CHECK_PREEMPTIONS,
    // so the CI soak can widen the search without touching the tests.
    Model::new()
}

/// Fails the run from inside on any protocol violation a dispatch can
/// observe: duplicate event delivery, delivery after completion, or an
/// event-less dispatch (the double-step signature).
struct Probe {
    expected: usize,
    seen: Vec<u64>,
}

impl Probe {
    fn new(expected: usize) -> Self {
        Probe {
            expected,
            seen: Vec::new(),
        }
    }
}

impl ActorSession for Probe {
    type Event = u64;

    fn on_event(&mut self, event: u64) -> Result<ActorStatus, String> {
        if self.seen.contains(&event) {
            return Err(format!("event {event} delivered twice"));
        }
        if self.seen.len() >= self.expected {
            return Err(format!("event {event} delivered after completion"));
        }
        self.seen.push(event);
        Ok(if self.seen.len() == self.expected {
            ActorStatus::Complete
        } else {
            ActorStatus::Parked
        })
    }

    fn on_step(&mut self) -> Result<ActorStatus, String> {
        Err("dispatched with no event (double-step / phantom requeue)".into())
    }
}

/// Runs `actors_events[i]` events into actor `i` on `workers` workers and
/// asserts every event was delivered exactly once and every actor retired.
fn check_delivery(workers: usize, actors_events: &[usize]) {
    let actors: Vec<Probe> = actors_events.iter().map(|&n| Probe::new(n)).collect();
    let total: usize = actors_events.iter().sum();
    let report = ActorEngine::new(workers).run(actors, |handle| {
        let mut ticket = 0u64;
        for (id, &events) in actors_events.iter().enumerate() {
            for _ in 0..events {
                handle
                    .send(id, ticket)
                    .unwrap_or_else(|e| panic!("send {ticket} to actor {id} failed: {e}"));
                ticket += 1;
            }
        }
    });
    let ledger: Vec<(usize, usize, usize, Option<usize>)> = report
        .actors
        .iter()
        .map(|a| (a.index, a.events, a.dispatches, a.completion_order))
        .collect();
    assert!(
        report.all_complete(),
        "an actor failed or was left parked: failures {:?}, \
         (index, events, dispatches, order) {ledger:?}",
        report.failures()
    );
    assert_eq!(report.events_total, total, "an event was lost");
    for finished in &report.actors {
        assert_eq!(
            finished.events, actors_events[finished.index],
            "actor {} delivery ledger drifted",
            finished.index
        );
    }
}

/// Invariant 1 — no lost wakeup on park/unpark. One worker, one actor, two
/// sends: the second send races the worker's drain-and-park decision, the
/// exact hand-off the mailbox mutex is supposed to make safe. In every
/// explored schedule both events arrive and the actor retires; a lost
/// wakeup would deadlock the run (model-checker error) or leave the actor
/// unretired (assertion).
#[test]
fn actor_park_unpark_never_loses_a_wakeup() {
    let report = model()
        .check("actor_park_unpark_never_loses_a_wakeup", || {
            check_delivery(1, &[2]);
        })
        .expect("no interleaving may lose a wakeup");
    #[cfg(sdds_check)]
    assert!(
        report.executions > 100,
        "soak explored too little: {report:?}"
    );
    #[cfg(not(sdds_check))]
    assert!(report.executions >= 1, "model must run: {report:?}");
}

/// Invariant 2 — no double-step of one session. Two workers contend over
/// the injector and each other's local FIFOs while two actors receive two
/// events each: a double-step surfaces as an event-less dispatch (the probe
/// errors from inside) or a duplicate delivery; either fails
/// `all_complete`.
#[test]
fn actor_under_worker_race_is_stepped_exactly_once() {
    let report = model()
        .check("actor_under_worker_race_is_stepped_exactly_once", || {
            check_delivery(2, &[2, 2]);
        })
        .expect("no explored interleaving may double-step an actor");
    #[cfg(sdds_check)]
    assert!(
        report.executions > 100,
        "soak explored too little: {report:?}"
    );
    #[cfg(not(sdds_check))]
    assert!(report.executions >= 1, "model must run: {report:?}");
}
