//! Property-style tests: the streaming evaluator (the paper's contribution)
//! must agree with the tree-based oracle on randomly generated documents and
//! randomly generated rule sets of the XP{[],*,//} fragment, and the secure
//! pipeline must preserve that equivalence.
//!
//! The build environment is offline, so instead of `proptest` these run each
//! property over `SDDS_PROP_CASES` cases (default 64; CI runs 256) drawn from
//! the workspace's seeded deterministic RNG — same coverage shape, fully
//! reproducible failures (the failing case index is in the assertion message,
//! and the RNG seed is derived from it deterministically).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use sdds_core::baseline::authorized_view_oracle;
use sdds_core::conflict::AccessPolicy;
use sdds_core::engine::{evaluate_secure_document, EngineConfig};
use sdds_core::evaluator::{EvaluatorConfig, StreamingEvaluator};
use sdds_core::rule::{RuleSet, Sign, Subject};
use sdds_core::secdoc::SecureDocumentBuilder;
use sdds_crypto::SecretKey;
use sdds_xml::generator::{self, GeneratorConfig, RandomProfile};
use sdds_xml::{writer, Document};

/// Cases per property: `SDDS_PROP_CASES` when set and parseable, else 64.
fn cases() -> u64 {
    std::env::var("SDDS_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// A random document from the bounded-vocabulary profile.
fn random_document(rng: &mut SmallRng) -> Document {
    generator::random(
        &RandomProfile {
            elements: rng.gen_range(1usize..120),
            max_depth: rng.gen_range(2usize..7),
            max_fanout: rng.gen_range(1usize..5),
            vocabulary: rng.gen_range(2usize..7),
            text_probability: 0.6,
        },
        &GeneratorConfig {
            seed: rng.next_u64(),
            text_len: 8,
        },
    )
}

/// A random rule object within the streaming fragment over the `t0..t5`
/// vocabulary of the random generator (plus the root tag).
fn random_path(rng: &mut SmallRng) -> String {
    let steps = rng.gen_range(1usize..4);
    let mut path = String::new();
    for _ in 0..steps {
        path.push_str(if rng.gen_bool(0.5) { "/" } else { "//" });
        match rng.gen_range(0u8..3) {
            0 => path.push_str("root"),
            1 => path.push_str(&format!("t{}", rng.gen_range(0u8..6))),
            _ => path.push('*'),
        }
        match rng.gen_range(0u8..3) {
            0 => {}
            1 => path.push_str(&format!("[t{}]", rng.gen_range(0u8..6))),
            _ => path.push_str("[.]"),
        }
    }
    path
}

fn random_rules(rng: &mut SmallRng) -> RuleSet {
    let mut rules = RuleSet::new();
    for _ in 0..rng.gen_range(0usize..6) {
        let sign = if rng.gen_bool(0.5) {
            Sign::Permit
        } else {
            Sign::Deny
        };
        let path = random_path(rng);
        // Paths from the generator are always parseable members of the
        // fragment; push cannot fail.
        rules
            .push(sign, "user", &path)
            .expect("generated rule parses");
    }
    rules
}

/// The streaming evaluator and the tree oracle produce identical views.
#[test]
fn streaming_matches_oracle() {
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0xE1 ^ case.wrapping_mul(0x9E37_79B9));
        let doc = random_document(&mut rng);
        let rules = random_rules(&mut rng);
        let policy = if rng.gen_bool(0.5) {
            AccessPolicy::open()
        } else {
            AccessPolicy::paper()
        };
        let config = EvaluatorConfig::new(rules.clone(), "user").with_policy(policy);
        let events = doc.to_events();
        let (streaming, stats) = StreamingEvaluator::evaluate_all(&config, &events).unwrap();
        let oracle = authorized_view_oracle(&doc, &rules, &Subject::new("user"), None, &policy);
        assert_eq!(
            writer::to_string(&streaming),
            writer::to_string(&oracle),
            "case {case}: streaming view diverges from oracle"
        );
        assert_eq!(
            stats.events_in,
            events.len(),
            "case {case}: events_in mismatch"
        );
    }
}

/// Encrypt → skip-index → decrypt → evaluate gives the same view as
/// evaluating the plaintext, for any rules, with and without the index.
#[test]
fn secure_pipeline_matches_plaintext_evaluation() {
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0xE2 ^ case.wrapping_mul(0x9E37_79B9));
        let doc = random_document(&mut rng);
        let rules = random_rules(&mut rng);
        let use_index = rng.gen_bool(0.5);
        // The random generator always creates a root; fail loudly rather
        // than silently shrink coverage if that ever changes.
        assert!(
            doc.root().is_some(),
            "case {case}: generator produced a rootless document"
        );
        let key = SecretKey::derive(b"prop", "doc");
        let secure = SecureDocumentBuilder::new("prop-doc", key.clone())
            .chunk_size(128)
            .build(&doc);
        let mut config = EngineConfig::new(EvaluatorConfig::new(rules.clone(), "user"));
        config.use_skip_index = use_index;
        let (view, _) = evaluate_secure_document(&secure, &key, config).unwrap();
        let oracle = authorized_view_oracle(
            &doc,
            &rules,
            &Subject::new("user"),
            None,
            &AccessPolicy::paper(),
        );
        assert_eq!(
            writer::to_string(&view),
            writer::to_string(&oracle),
            "case {case}: secure pipeline (use_index={use_index}) diverges from oracle"
        );
    }
}

/// Symbol interning is equivalent to string matching: a symbol table behaves
/// exactly like string comparison over any vocabulary, and the combined
/// dispatch automaton's symbol-keyed initial transitions fire for exactly the
/// rules whose first step matches the element name as a string.
#[test]
fn interned_dispatch_is_equivalent_to_string_matching() {
    use sdds_core::automaton::compile_str;
    use sdds_core::dispatch::{DispatchTable, Target};
    use sdds_xml::SymbolTable;

    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0xE4 ^ case.wrapping_mul(0x9E37_79B9));

        // The interner agrees with string equality on a random vocabulary.
        let mut table = SymbolTable::new();
        let vocabulary: Vec<String> = (0..rng.gen_range(1usize..10))
            .map(|_| format!("t{}", rng.gen_range(0u8..8)))
            .collect();
        let symbols: Vec<_> = vocabulary.iter().map(|n| table.intern(n)).collect();
        for (a, sa) in vocabulary.iter().zip(&symbols) {
            assert_eq!(table.resolve(*sa), a, "case {case}: resolve round-trip");
            for (b, sb) in vocabulary.iter().zip(&symbols) {
                assert_eq!(
                    a == b,
                    sa == sb,
                    "case {case}: symbol equality diverges from string equality ({a} vs {b})"
                );
            }
        }

        // The dispatch automaton's (state, symbol) initial transitions fire
        // for exactly the rules whose first step matches by string.
        let exprs: Vec<String> = (0..rng.gen_range(1usize..8))
            .map(|_| random_path(&mut rng))
            .collect();
        let paths: Vec<_> = exprs.iter().map(|e| compile_str(e).unwrap()).collect();
        let dispatch = DispatchTable::build(paths.iter(), None);
        for _ in 0..8 {
            let name = format!("t{}", rng.gen_range(0u8..8));
            let mut by_string: Vec<usize> = (0..paths.len())
                .filter(|&i| paths[i].steps[0].test.matches(&name))
                .collect();
            by_string.sort_unstable();
            by_string.dedup();
            let mut by_symbol: Vec<usize> = dispatch
                .root_edges(dispatch.symbols().lookup(&name))
                .flat_map(|e| {
                    let edge = dispatch.edge(e);
                    let targets = edge.accepts.iter().copied().chain(
                        edge.to
                            .iter()
                            .flat_map(|&n| dispatch.node(n).positions.iter().map(|&(t, _)| t)),
                    );
                    targets
                        .filter_map(|t| match t {
                            Target::Rule(i) => Some(i),
                            Target::Query => None,
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            by_symbol.sort_unstable();
            by_symbol.dedup();
            assert_eq!(
                by_string, by_symbol,
                "case {case}: dispatch on `{name}` diverges from string matching over {exprs:?}"
            );
        }
    }
}

/// The authorized view is always a well-formed fragment and never leaks
/// text from elements the oracle says are not delivered.
#[test]
fn views_are_well_formed_and_monotone() {
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0xE3 ^ case.wrapping_mul(0x9E37_79B9));
        let doc = random_document(&mut rng);
        let rules = random_rules(&mut rng);
        let config = EvaluatorConfig::new(rules.clone(), "user");
        let events = doc.to_events();
        let (view, _) = StreamingEvaluator::evaluate_all(&config, &events).unwrap();
        if !view.is_empty() {
            assert!(
                sdds_xml::event::is_well_formed(&view),
                "case {case}: authorized view is not well-formed"
            );
        }
        // Adding a permit-everything rule can only grow the view.
        let mut wider = rules.clone();
        wider.push(Sign::Permit, "user", "/*").unwrap();
        let config = EvaluatorConfig::new(wider, "user");
        let (wider_view, _) = StreamingEvaluator::evaluate_all(&config, &events).unwrap();
        assert!(
            wider_view.len() >= view.len(),
            "case {case}: adding a permit rule shrank the view"
        );
    }
}
