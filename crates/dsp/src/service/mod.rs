//! The concurrent multi-client DSP service layer (experiment E10).
//!
//! The single-tenant [`crate::DspServer`] serves exactly one proxy at a time:
//! every request serializes on one store behind `&mut self`. This module turns
//! the DSP into a service that sustains many simultaneous card sessions — the
//! "heavy traffic" regime of the paper's architecture (§2), where one
//! untrusted server feeds a fleet of smart-card clients:
//!
//! ```text
//!  publishers ──put_document──▶ ┌────────────── DspService ──────────────┐
//!                               │ ShardedStore: shard = FNV(doc id) % N  │
//!                               │  ┌shard 0┐ ┌shard 1┐      ┌shard N-1┐  │
//!                               │  │RwLock │ │RwLock │ ...  │ RwLock  │  │
//!                               │  │store  │ │store  │      │ store   │  │
//!                               │  │stats  │ │stats  │      │ stats   │  │
//!                               │  └───────┘ └───────┘      └─────────┘  │
//!                               └──────────────────▲─────────────────────┘
//!                                fetch_header/chunk│/rules   (&self, Sync)
//!                    ┌─────── SessionScheduler ────┴──────┐
//!                    │ run queue: K CardSessions, FIFO    │
//!                    │ W workers step `quantum` requests  │
//!                    │ per turn, requeue ⇒ round-robin    │
//!                    └──▲──────────▲──────────▲───────────┘
//!                  APDUs│     APDUs│     APDUs│  (BatchedChannel coalesces
//!                  ┌────┴───┐ ┌────┴───┐ ┌────┴───┐  each quantum's pushes)
//!                  │ card 0 │ │ card 1 │ │ card K │
//!                  └────────┘ └────────┘ └────────┘
//!
//!  push side:  FanOutDisseminator ──Arc<StreamItem>──▶ M subscriber
//!              (ONE encryption per item)                mailboxes
//! ```
//!
//! Mapping to the paper's evaluation:
//!
//! * **shard count** — the server-side concurrency of E10 (aggregate
//!   throughput at 1 vs 16 shards); it has no analogue in the paper, which
//!   measured a single card, but is what "millions of users" requires of the
//!   DSP side of Figure 1. Serving takes the shard's **read** lock (the
//!   counters are atomics), so same-shard readers do not serialize either.
//! * **hot-document replication** — the E10 hot-document scenario (256
//!   clients, one document): a pinned ([`DspService::pin_replicas`], or the
//!   facade's `Publisher::builder().replicate(n)`) or threshold-hot
//!   ([`HotPolicy`]) document is served from clones on several shards, with
//!   revision-tagged invalidation on republish (see [`shard`]).
//! * **scheduler workers / quantum** — the terminal-side multiplexing of E5
//!   run K-wide; the quantum bounds how long one card can monopolise the
//!   service between turns of the others (fair round-robin per card).
//! * **`sdds_card::BatchedChannel`** — the E5 latency breakdown's
//!   `per_apdu_latency`, charged once per coalesced batch instead of once per
//!   chunk request.
//! * **[`FanOutDisseminator`]** — E6 dissemination at M subscribers: the
//!   proxy-side publisher (`sdds_proxy::DisseminationChannel`) encrypts each
//!   item once and the DSP fans the shared ciphertext out to M mailboxes —
//!   one encryption per item regardless of M (pinned by the fan-out property
//!   test).
//!
//! Capacity is reported on the same *simulated* clock the rest of the
//! workspace uses (cost models, not wall time — see `sdds_card::cost`): the
//! [`ServiceModel`] converts per-shard serving counters into the time one
//! shard, serving serially, needs for its share of the traffic. Shards serve
//! concurrently, so the service-side makespan of a run is the **busiest**
//! shard's time; cards process in parallel on their own hardware, so the
//! system makespan is the larger of the busiest shard and the slowest card.
//! All of it is deterministic — byte counts times model rates — which is what
//! lets CI gate the E10 keys on any hardware.

pub mod fanout;
pub mod scheduler;
pub mod shard;

pub use fanout::{FanOutDisseminator, SubscriberId};
pub use scheduler::{
    FinishedSession, Schedulable, ScheduleReport, SchedulerEngine, SessionScheduler, StepOutcome,
};
pub use shard::{HotPolicy, ShardedStore};

use std::time::Duration;

use sdds_obs::ObsSnapshot;
use sdds_sync::sync::atomic::{AtomicU64, Ordering};
use sdds_sync::sync::Arc;

use sdds_core::secdoc::{DocumentHeader, SecureDocument};
use sdds_core::session::ProtectedRules;
use sdds_core::CoreError;
use sdds_crypto::merkle::MerkleProof;

use crate::obs::DspObs;
use crate::server::ServerStats;

/// Service-time model of one DSP shard (the DSP-side analogue of the card's
/// `CostModel`): converts serving counters into simulated serial time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceModel {
    /// Fixed cost per served request: lock hand-off, lookup, kernel and NIC
    /// round-trip on the serving host.
    pub per_request_overhead: Duration,
    /// Sustained payload serving rate of one shard, bytes per second.
    pub serve_bytes_per_second: f64,
}

impl ServiceModel {
    /// A DSP host on a LAN: 100 µs per request, 50 MB/s per shard.
    pub fn lan() -> Self {
        ServiceModel {
            per_request_overhead: Duration::from_micros(100),
            serve_bytes_per_second: 50_000_000.0,
        }
    }

    /// An idealised service that costs nothing (isolates card-side costs).
    pub fn infinite() -> Self {
        ServiceModel {
            per_request_overhead: Duration::ZERO,
            serve_bytes_per_second: f64::INFINITY,
        }
    }

    /// Simulated serial time one shard needs to serve `stats` worth of
    /// traffic.
    pub fn service_time(&self, stats: &ServerStats) -> Duration {
        let wire = if self.serve_bytes_per_second.is_finite() && self.serve_bytes_per_second > 0.0 {
            Duration::from_secs_f64(stats.bytes_served as f64 / self.serve_bytes_per_second)
        } else {
            Duration::ZERO
        };
        wire + self.per_request_overhead * stats.requests as u32
    }
}

/// The concurrent DSP front-end: a sharded store plus its capacity model.
///
/// Unlike [`crate::DspServer`], every serving method takes `&self` — the
/// service is `Sync` and meant to sit behind an `Arc`, shared by every
/// session the scheduler multiplexes.
#[derive(Debug)]
pub struct DspService {
    store: ShardedStore,
    model: ServiceModel,
    /// Monotone ticket counter handing each new card session a distinct
    /// route salt (replica spreading — see [`DspService::next_session_salt`]).
    // lint: atomic — a route-salt ticket allocator, not a metric; obs
    // counters are monotone tallies and cannot hand out distinct values.
    session_tickets: AtomicU64,
    /// Telemetry bundle: registry, flight recorder, per-layer handles.
    obs: Arc<DspObs>,
}

impl DspService {
    /// Creates a service with `shards` shards and the LAN service model
    /// (`0` shards clamps to 1 — see [`ShardedStore::new`]).
    pub fn new(shards: usize) -> Self {
        let obs = Arc::new(DspObs::new(shards.max(1)));
        DspService {
            store: ShardedStore::new(shards).with_obs(obs.serve()),
            model: ServiceModel::lan(),
            // lint: atomic — route-salt ticket allocator (see field docs).
            session_tickets: AtomicU64::new(0),
            obs,
        }
    }

    /// The service's telemetry bundle — scheduler, actor-engine and card
    /// session instrumentation clone their handles from here, so one
    /// [`DspService::obs_snapshot`] covers every layer of a run.
    pub fn obs(&self) -> &Arc<DspObs> {
        &self.obs
    }

    /// A point-in-time snapshot of every metric the service's registry
    /// holds: per-shard serving counters, latency histograms, scheduler /
    /// actor-engine counters, card-session traffic and the labelled error
    /// tallies.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        self.obs.snapshot()
    }

    /// Dumps the service's flight recorder (recent serve / step / dispatch
    /// spans) as JSON — the on-demand post-mortem artifact.
    pub fn flight_recorder_json(&self) -> String {
        self.obs.recorder().dump_json()
    }

    /// Replaces the service-time model.
    pub fn with_model(mut self, model: ServiceModel) -> Self {
        self.model = model;
        self
    }

    /// Enables threshold-driven hot-document replication (see
    /// [`ShardedStore::with_hot_policy`]).
    pub fn with_hot_policy(mut self, policy: HotPolicy) -> Self {
        self.store = self.store.with_hot_policy(policy);
        self
    }

    /// The capacity model.
    pub fn model(&self) -> &ServiceModel {
        &self.model
    }

    /// The sharded store (shard layout, document inventory).
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.store.shard_count()
    }

    /// Uploads (or replaces) a document, keeping stored rule blobs.
    pub fn put_document(&self, document: SecureDocument) {
        self.store.put_document(document);
    }

    /// Uploads (or replaces) a document, choosing whether stored rule blobs
    /// survive the replacement.
    pub fn put_document_with(&self, document: SecureDocument, clear_rules_on_replace: bool) {
        self.store
            .put_document_with(document, clear_rules_on_replace);
    }

    /// Stores the protected rules of `subject` for `doc_id`.
    pub fn put_rules(
        &self,
        doc_id: &str,
        subject: &str,
        rules: &ProtectedRules,
    ) -> Result<(), CoreError> {
        self.store.put_rules(doc_id, subject, rules)
    }

    /// Pins `doc_id` to `copies` serving shards (see
    /// [`ShardedStore::pin_replicas`]).
    pub fn pin_replicas(&self, doc_id: &str, copies: usize) -> Result<(), CoreError> {
        self.store.pin_replicas(doc_id, copies)
    }

    /// Shards currently serving `doc_id`, home shard first (see
    /// [`ShardedStore::replica_shards`]).
    pub fn replica_shards(&self, doc_id: &str) -> Vec<usize> {
        self.store.replica_shards(doc_id)
    }

    /// Fetches a document header.
    pub fn fetch_header(&self, doc_id: &str) -> Result<DocumentHeader, CoreError> {
        self.store.fetch_header(doc_id)
    }

    /// Fetches a document header together with the upload revision to pin a
    /// session to (see [`ShardedStore::fetch_header_pinned`]).
    pub fn fetch_header_pinned(&self, doc_id: &str) -> Result<(DocumentHeader, u64), CoreError> {
        self.store.fetch_header_pinned(doc_id)
    }

    /// Hands out the next session route salt. Every card session draws one
    /// at connect time and carries it through its `fetch_*_salted` calls, so
    /// identical requests from different sessions spread over a hot
    /// document's replicas instead of all queueing on the same copy (the
    /// PR 5 hot-document scenario: 256 sessions, one document, every header
    /// request previously hitting the home shard).
    pub fn next_session_salt(&self) -> u64 {
        self.session_tickets.fetch_add(1, Ordering::Relaxed)
    }

    /// Pinned header fetch routed with a per-session `salt` (see
    /// [`ShardedStore::fetch_header_pinned_salted`]).
    pub fn fetch_header_pinned_salted(
        &self,
        doc_id: &str,
        salt: u64,
    ) -> Result<(DocumentHeader, u64), CoreError> {
        self.store.fetch_header_pinned_salted(doc_id, salt)
    }

    /// Fetches one encrypted chunk and its Merkle proof.
    pub fn fetch_chunk(
        &self,
        doc_id: &str,
        index: u32,
    ) -> Result<(Arc<[u8]>, MerkleProof), CoreError> {
        self.store.fetch_chunk(doc_id, index)
    }

    /// Fetches one encrypted chunk at a pinned revision, failing with
    /// [`CoreError::StaleRevision`] after a mid-session republish.
    pub fn fetch_chunk_pinned(
        &self,
        doc_id: &str,
        index: u32,
        revision: u64,
    ) -> Result<(Arc<[u8]>, MerkleProof), CoreError> {
        self.store.fetch_chunk_pinned(doc_id, index, revision)
    }

    /// Pinned chunk fetch routed with a per-session `salt` (see
    /// [`ShardedStore::fetch_chunk_pinned_salted`]).
    pub fn fetch_chunk_pinned_salted(
        &self,
        doc_id: &str,
        index: u32,
        revision: u64,
        salt: u64,
    ) -> Result<(Arc<[u8]>, MerkleProof), CoreError> {
        self.store
            .fetch_chunk_pinned_salted(doc_id, index, revision, salt)
    }

    /// Fetches the protected rule blob of `subject` for `doc_id`.
    pub fn fetch_rules(&self, doc_id: &str, subject: &str) -> Result<Arc<[u8]>, CoreError> {
        self.store.fetch_rules(doc_id, subject)
    }

    /// Fetches the protected rule blob of `subject` at a pinned revision,
    /// failing with [`CoreError::StaleRevision`] after a mid-session
    /// republish.
    pub fn fetch_rules_pinned(
        &self,
        doc_id: &str,
        subject: &str,
        revision: u64,
    ) -> Result<Arc<[u8]>, CoreError> {
        self.store.fetch_rules_pinned(doc_id, subject, revision)
    }

    /// Pinned rules fetch routed with a per-session `salt` (see
    /// [`ShardedStore::fetch_rules_pinned_salted`]).
    pub fn fetch_rules_pinned_salted(
        &self,
        doc_id: &str,
        subject: &str,
        revision: u64,
        salt: u64,
    ) -> Result<Arc<[u8]>, CoreError> {
        self.store
            .fetch_rules_pinned_salted(doc_id, subject, revision, salt)
    }

    /// Upload revision of a stored document (`None` if unknown).
    pub fn revision(&self, doc_id: &str) -> Option<u64> {
        self.store.revision(doc_id)
    }

    /// True when `doc_id` is stored.
    pub fn contains(&self, doc_id: &str) -> bool {
        self.store.contains(doc_id)
    }

    /// Merged serving statistics across shards.
    pub fn stats(&self) -> ServerStats {
        self.store.stats()
    }

    /// Per-shard serving statistics.
    pub fn shard_stats(&self) -> Vec<ServerStats> {
        self.store.shard_stats()
    }

    /// Resets the serving statistics of every shard.
    pub fn reset_stats(&self) {
        self.store.reset_stats();
    }

    /// Simulated serial service time of the busiest shard — the service-side
    /// makespan of the traffic accumulated since the last stats reset
    /// (shards serve concurrently, so the slowest shard paces the service).
    pub fn busiest_shard_time(&self) -> Duration {
        self.store
            .shard_stats()
            .iter()
            .map(|s| self.model.service_time(s))
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Simulated service time the same traffic would need on a single serial
    /// shard (the E10 baseline): the whole merged load on one queue.
    pub fn single_shard_time(&self) -> Duration {
        self.model.service_time(&self.store.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_core::secdoc::SecureDocumentBuilder;
    use sdds_crypto::SecretKey;
    use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};

    fn document(id: &str) -> SecureDocument {
        let doc = generator::hospital(
            &HospitalProfile {
                patients: 2,
                ..HospitalProfile::default()
            },
            &GeneratorConfig::default(),
        );
        SecureDocumentBuilder::new(id, SecretKey::derive(b"s", "k")).build(&doc)
    }

    #[test]
    fn service_time_charges_requests_and_bytes() {
        let model = ServiceModel::lan();
        let mut stats = ServerStats::default();
        stats.record_chunk(50_000_000); // 1 s of wire at 50 MB/s
        let t = model.service_time(&stats);
        assert!((t.as_secs_f64() - 1.0001).abs() < 1e-6);
        assert_eq!(
            ServiceModel::infinite().service_time(&stats),
            Duration::ZERO
        );
    }

    #[test]
    fn sharding_splits_the_simulated_service_makespan() {
        let service = DspService::new(8);
        assert_eq!(service.shard_count(), 8);
        for i in 0..32 {
            service.put_document(document(&format!("doc-{i}")));
        }
        for i in 0..32 {
            service.fetch_header(&format!("doc-{i}")).unwrap();
            service.fetch_chunk(&format!("doc-{i}"), 0).unwrap();
        }
        let busiest = service.busiest_shard_time();
        let serial = service.single_shard_time();
        assert!(busiest > Duration::ZERO);
        // 32 documents over 8 shards: the busiest shard carries far less than
        // the whole load, so the concurrent makespan beats the serial one.
        assert!(
            busiest.as_secs_f64() * 2.0 < serial.as_secs_f64(),
            "busiest {busiest:?} should be well under serial {serial:?}"
        );
        service.reset_stats();
        assert_eq!(service.busiest_shard_time(), Duration::ZERO);
        assert!(!service.store().is_empty());
    }

    #[test]
    fn service_is_shareable_across_threads() {
        use std::sync::Arc;
        let service = Arc::new(DspService::new(4));
        for i in 0..8 {
            service.put_document(document(&format!("doc-{i}")));
        }
        std::thread::scope(|scope| {
            for t in 0..4 {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    for i in 0..8 {
                        let id = format!("doc-{}", (i + t) % 8);
                        let header = service.fetch_header(&id).unwrap();
                        let (chunk, proof) = service.fetch_chunk(&id, 0).unwrap();
                        proof.verify(&chunk, &header.merkle_root).unwrap();
                    }
                });
            }
        });
        assert_eq!(service.stats().requests, 4 * 8 * 2);
    }
}
