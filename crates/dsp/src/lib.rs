//! Untrusted Document Service Provider (DSP).
//!
//! "The data are kept encrypted at the server" (§1); the DSP "hosts encrypted
//! XML documents shared by users as well as encrypted access rules" (§3). The
//! DSP is **untrusted**: it only ever sees ciphertext, Merkle proofs and
//! protected rule blobs, and it cannot alter them without detection (the SOE
//! verifies everything). This crate provides:
//!
//! * [`store`] — the encrypted document / protected rule store with versioning,
//! * [`server`] — the pull-mode request API used by terminal proxies, with
//!   byte accounting of everything served,
//! * [`dissemination`] — the broadcast unit of experiment E6: already
//!   encrypted [`StreamItem`]s (produced by the trusted, proxy-side
//!   `sdds_proxy::DisseminationChannel`, which keeps the key and the
//!   cleartext stream out of this crate) are broadcast to subscribers over
//!   unsecured channels, and each subscriber's SOE filters what its user may
//!   see,
//! * [`service`] — the concurrent multi-client layer of experiment E10: the
//!   FNV-sharded store ([`service::ShardedStore`]), the fair round-robin
//!   [`service::SessionScheduler`] multiplexing many card sessions, the
//!   [`service::FanOutDisseminator`] (one ciphertext per item shared across
//!   M subscriber mailboxes), and the [`service::ServiceModel`] capacity math (see the
//!   module docs for the architecture diagram and the knob → paper-experiment
//!   mapping),
//! * [`actors`] — the readiness-driven actor engine of experiment E11: one
//!   bounded mailbox per session, a work-stealing executor over N workers,
//!   and park/unpark stepping so the serving loop does O(changed work) per
//!   step instead of O(sessions). Selected per scheduler via
//!   [`service::SchedulerEngine`].

#![forbid(unsafe_code)]

pub mod actors;
pub mod dissemination;
pub mod obs;
pub mod server;
pub mod service;
pub mod store;

pub use actors::{ActorEngine, ActorReport, ActorSession, ActorStatus, FinishedActor};
pub use dissemination::StreamItem;
pub use obs::{ActorObs, DspObs, ErrorObs, SchedulerObs, ServeObs, SessionObs, ShardObs};
pub use server::{AtomicServerStats, DspServer, ServerStats};
pub use service::{
    DspService, FanOutDisseminator, HotPolicy, Schedulable, ScheduleReport, SchedulerEngine,
    ServiceModel, SessionScheduler, ShardedStore, StepOutcome,
};
pub use store::{DocumentRecord, DspStore};
