//! Streaming, pull-based XML parser.
//!
//! The parser produces [`Event`]s one at a time from an in-memory byte slice
//! without building any tree, which is the contract expected by the SOE engine
//! (the document arrives chunk by chunk, is decrypted, and must be parsed with
//! a memory footprint proportional to the element nesting depth only).
//!
//! The supported grammar is the XML subset relevant to the paper:
//! elements, attributes, character data, CDATA sections, comments, processing
//! instructions and the XML declaration (the latter three are skipped), plus
//! the five predefined entities and numeric character references.
//! DTDs and namespaces-aware processing are out of scope.

use crate::error::XmlError;
use crate::event::{Attribute, Event};

/// A pull parser over a UTF-8 string.
///
/// ```
/// use sdds_xml::{Parser, Event};
/// let mut p = Parser::new("<a><b>hi</b></a>");
/// let events: Vec<_> = p.by_ref().collect::<Result<_, _>>().unwrap();
/// assert_eq!(events[0], Event::open("a"));
/// assert_eq!(events.len(), 5);
/// ```
pub struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    /// Stack of currently open element names, used for well-formedness checks.
    open: Vec<String>,
    /// Set once the root element has been closed.
    root_closed: bool,
    /// Set once the root element has been opened.
    root_seen: bool,
    /// Whether whitespace-only text nodes should be emitted.
    keep_whitespace: bool,
    /// Close event synthesised for a self-closing tag (`<a/>`), emitted on the
    /// call following the corresponding `Open`.
    pending_close: Option<String>,
    finished: bool,
}

impl<'a> Parser<'a> {
    /// Creates a parser over `input`. Whitespace-only text nodes are dropped.
    pub fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
            open: Vec::new(),
            root_closed: false,
            root_seen: false,
            keep_whitespace: false,
            pending_close: None,
            finished: false,
        }
    }

    /// Creates a parser that also emits whitespace-only text nodes.
    pub fn with_whitespace(input: &'a str) -> Self {
        let mut p = Parser::new(input);
        p.keep_whitespace = true;
        p
    }

    /// Parses the whole input into a vector of events.
    pub fn parse_all(input: &str) -> Result<Vec<Event>, XmlError> {
        Parser::new(input).collect()
    }

    /// Current byte offset into the input.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_until(&mut self, delim: &str) -> Result<(), XmlError> {
        match find_sub(&self.input[self.pos..], delim.as_bytes()) {
            Some(i) => {
                self.pos += i + delim.len();
                Ok(())
            }
            None => Err(XmlError::malformed(
                format!("unterminated construct, expected `{delim}`"),
                self.pos,
            )),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if is_name_byte(b, self.pos == start) {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XmlError::malformed("expected a name", self.pos));
        }
        // Input is known valid UTF-8 (comes from a &str) so this cannot fail.
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn read_attributes(&mut self) -> Result<(Vec<Attribute>, bool), XmlError> {
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok((attrs, false));
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                        return Ok((attrs, true));
                    }
                    return Err(XmlError::malformed("expected `>` after `/`", self.pos));
                }
                Some(_) => {
                    let name = self.read_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(XmlError::malformed(
                            format!("expected `=` after attribute `{name}`"),
                            self.pos,
                        ));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.bump().ok_or_else(|| {
                        XmlError::malformed("unexpected end of input in attribute", self.pos)
                    })?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(XmlError::malformed(
                            "attribute value must be quoted",
                            self.pos,
                        ));
                    }
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(XmlError::malformed("unterminated attribute value", start));
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    self.pos += 1;
                    attrs.push(Attribute::new(name, decode_entities(&raw, start)?));
                }
                None => {
                    return Err(XmlError::UnexpectedEof {
                        open_elements: self.open.clone(),
                    })
                }
            }
        }
    }

    /// Produces the next event, or `None` at end of input.
    fn next_event(&mut self) -> Option<Result<Event, XmlError>> {
        if self.finished {
            return None;
        }
        loop {
            if self.pos >= self.input.len() {
                self.finished = true;
                if !self.open.is_empty() {
                    return Some(Err(XmlError::UnexpectedEof {
                        open_elements: self.open.clone(),
                    }));
                }
                if !self.root_seen {
                    return Some(Err(XmlError::EmptyDocument));
                }
                return None;
            }
            if self.peek() == Some(b'<') {
                // Markup.
                if self.starts_with("<!--") {
                    if let Err(e) = self.skip_until("-->") {
                        self.finished = true;
                        return Some(Err(e));
                    }
                    continue;
                }
                if self.starts_with("<![CDATA[") {
                    let start = self.pos + 9;
                    match find_sub(&self.input[start..], b"]]>") {
                        Some(i) => {
                            let text =
                                String::from_utf8_lossy(&self.input[start..start + i]).into_owned();
                            self.pos = start + i + 3;
                            if self.open.is_empty() {
                                self.finished = true;
                                return Some(Err(XmlError::malformed(
                                    "CDATA outside the root element",
                                    start,
                                )));
                            }
                            if !text.is_empty() {
                                return Some(Ok(Event::Text(text)));
                            }
                            continue;
                        }
                        None => {
                            self.finished = true;
                            return Some(Err(XmlError::malformed("unterminated CDATA", start)));
                        }
                    }
                }
                if self.starts_with("<?") {
                    if let Err(e) = self.skip_until("?>") {
                        self.finished = true;
                        return Some(Err(e));
                    }
                    continue;
                }
                if self.starts_with("<!") {
                    // DOCTYPE or other declaration: skip to the matching '>'.
                    if let Err(e) = self.skip_until(">") {
                        self.finished = true;
                        return Some(Err(e));
                    }
                    continue;
                }
                if self.starts_with("</") {
                    let tag_offset = self.pos;
                    self.pos += 2;
                    let name = match self.read_name() {
                        Ok(n) => n,
                        Err(e) => {
                            self.finished = true;
                            return Some(Err(e));
                        }
                    };
                    self.skip_ws();
                    if self.peek() != Some(b'>') {
                        self.finished = true;
                        return Some(Err(XmlError::malformed(
                            "expected `>` in closing tag",
                            self.pos,
                        )));
                    }
                    self.pos += 1;
                    match self.open.pop() {
                        Some(top) if top == name => {
                            if self.open.is_empty() {
                                self.root_closed = true;
                            }
                            return Some(Ok(Event::Close(name)));
                        }
                        other => {
                            self.finished = true;
                            return Some(Err(XmlError::MismatchedClose {
                                found: name,
                                expected: other,
                                offset: tag_offset,
                            }));
                        }
                    }
                }
                // Opening tag.
                if self.root_closed {
                    self.finished = true;
                    return Some(Err(XmlError::TrailingContent { offset: self.pos }));
                }
                self.pos += 1;
                let name = match self.read_name() {
                    Ok(n) => n,
                    Err(e) => {
                        self.finished = true;
                        return Some(Err(e));
                    }
                };
                match self.read_attributes() {
                    Ok((attrs, self_closing)) => {
                        self.root_seen = true;
                        if self_closing {
                            // Emit the open now; the matching close is synthesised
                            // on the next call by pushing a marker.
                            self.pending_close = Some(name.clone());
                            return Some(Ok(Event::Open { name, attrs }));
                        }
                        self.open.push(name.clone());
                        return Some(Ok(Event::Open { name, attrs }));
                    }
                    Err(e) => {
                        self.finished = true;
                        return Some(Err(e));
                    }
                }
            }
            // Character data.
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'<' {
                    break;
                }
                self.pos += 1;
            }
            let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
            let is_ws = raw.bytes().all(|b| b.is_ascii_whitespace());
            if is_ws && !self.keep_whitespace {
                continue;
            }
            if self.open.is_empty() {
                if is_ws {
                    continue;
                }
                self.finished = true;
                let err = if self.root_closed || !self.root_seen {
                    if self.root_seen {
                        XmlError::TrailingContent { offset: start }
                    } else {
                        XmlError::malformed("text before the root element", start)
                    }
                } else {
                    XmlError::TrailingContent { offset: start }
                };
                return Some(Err(err));
            }
            match decode_entities(&raw, start) {
                Ok(text) => return Some(Ok(Event::Text(text))),
                Err(e) => {
                    self.finished = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

impl<'a> Parser<'a> {
    /// A self-closing tag `<a/>` produces both an `Open` and a `Close` event;
    /// the `Close` is stashed between two `next` calls and taken here.
    fn take_pending_close(&mut self) -> Option<Event> {
        self.pending_close.take().map(|name| {
            if self.open.is_empty() {
                self.root_closed = true;
            }
            Event::Close(name)
        })
    }
}

impl<'a> Iterator for Parser<'a> {
    type Item = Result<Event, XmlError>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(ev) = self.take_pending_close() {
            return Some(Ok(ev));
        }
        self.next_event()
    }
}

fn is_name_byte(b: u8, first: bool) -> bool {
    let alpha = b.is_ascii_alphabetic() || b == b'_' || b >= 0x80;
    if first {
        alpha || b == b':'
    } else {
        alpha || b.is_ascii_digit() || b == b'-' || b == b'.' || b == b':'
    }
}

fn find_sub(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    (0..=haystack.len() - needle.len()).find(|&i| &haystack[i..i + needle.len()] == needle)
}

/// Decodes the five predefined entities and numeric character references.
pub fn decode_entities(raw: &str, offset: usize) -> Result<String, XmlError> {
    if !raw.contains('&') {
        return Ok(raw.to_owned());
    }
    let mut out = String::with_capacity(raw.len());
    let bytes = raw.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            let end = raw[i..]
                .find(';')
                .map(|e| i + e)
                .ok_or_else(|| XmlError::malformed("unterminated entity reference", offset + i))?;
            let ent = &raw[i + 1..end];
            match ent {
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "amp" => out.push('&'),
                "apos" => out.push('\''),
                "quot" => out.push('"'),
                _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                    let code = u32::from_str_radix(&ent[2..], 16).map_err(|_| {
                        XmlError::malformed("bad hexadecimal character reference", offset + i)
                    })?;
                    out.push(char::from_u32(code).ok_or_else(|| {
                        XmlError::malformed("character reference out of range", offset + i)
                    })?);
                }
                _ if ent.starts_with('#') => {
                    let code = ent[1..].parse::<u32>().map_err(|_| {
                        XmlError::malformed("bad decimal character reference", offset + i)
                    })?;
                    out.push(char::from_u32(code).ok_or_else(|| {
                        XmlError::malformed("character reference out of range", offset + i)
                    })?);
                }
                _ => {
                    return Err(XmlError::malformed(
                        format!("unknown entity `&{ent};`"),
                        offset + i,
                    ))
                }
            }
            i = end + 1;
        } else {
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&raw[i..i + ch_len]);
            i += ch_len;
        }
    }
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first >> 5 == 0b110 {
        2
    } else if first >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::is_well_formed;

    #[test]
    fn parses_simple_document() {
        let events = Parser::parse_all("<a><b>hi</b><c x=\"1\"/></a>").unwrap();
        assert_eq!(
            events,
            vec![
                Event::open("a"),
                Event::open("b"),
                Event::text("hi"),
                Event::close("b"),
                Event::open_with("c", vec![Attribute::new("x", "1")]),
                Event::close("c"),
                Event::close("a"),
            ]
        );
        assert!(is_well_formed(&events));
    }

    #[test]
    fn skips_declaration_comments_and_pis() {
        let doc = "<?xml version=\"1.0\"?><!-- c --><a><?pi data?><!-- x -->t</a>";
        let events = Parser::parse_all(doc).unwrap();
        assert_eq!(
            events,
            vec![Event::open("a"), Event::text("t"), Event::close("a")]
        );
    }

    #[test]
    fn handles_cdata() {
        let events = Parser::parse_all("<a><![CDATA[<raw&stuff>]]></a>").unwrap();
        assert_eq!(events[1], Event::text("<raw&stuff>"));
    }

    #[test]
    fn decodes_entities_in_text_and_attributes() {
        let events = Parser::parse_all("<a t=\"&lt;x&gt;\">&amp;&#65;&#x42;</a>").unwrap();
        assert_eq!(events[0].attrs()[0].value, "<x>");
        assert_eq!(events[1], Event::text("&AB"));
    }

    #[test]
    fn rejects_unknown_entity() {
        let err = Parser::parse_all("<a>&nope;</a>").unwrap_err();
        assert!(matches!(err, XmlError::Malformed { .. }));
    }

    #[test]
    fn rejects_mismatched_close() {
        let err = Parser::parse_all("<a><b></a></b>").unwrap_err();
        assert!(matches!(err, XmlError::MismatchedClose { .. }));
    }

    #[test]
    fn rejects_unclosed_document() {
        let err = Parser::parse_all("<a><b></b>").unwrap_err();
        assert!(matches!(err, XmlError::UnexpectedEof { .. }));
    }

    #[test]
    fn rejects_second_root() {
        let err = Parser::parse_all("<a></a><b></b>").unwrap_err();
        assert!(matches!(err, XmlError::TrailingContent { .. }));
    }

    #[test]
    fn rejects_empty_document() {
        let err = Parser::parse_all("   ").unwrap_err();
        assert!(matches!(err, XmlError::EmptyDocument));
        let err = Parser::parse_all("").unwrap_err();
        assert!(matches!(err, XmlError::EmptyDocument));
    }

    #[test]
    fn whitespace_only_text_is_dropped_by_default() {
        let events = Parser::parse_all("<a>\n  <b>x</b>\n</a>").unwrap();
        assert_eq!(events.len(), 5);
        let events: Vec<_> = Parser::with_whitespace("<a>\n  <b>x</b>\n</a>")
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(events.len(), 7);
    }

    #[test]
    fn self_closing_tags_produce_open_and_close() {
        let events = Parser::parse_all("<a/>").unwrap();
        assert_eq!(events, vec![Event::open("a"), Event::close("a")]);
    }

    #[test]
    fn attribute_quoting_variants() {
        let events = Parser::parse_all("<a x='1' y=\"2\"></a>").unwrap();
        assert_eq!(events[0].attrs().len(), 2);
        assert!(Parser::parse_all("<a x=1></a>").is_err());
        assert!(Parser::parse_all("<a x></a>").is_err());
    }

    #[test]
    fn offsets_and_depth_are_tracked() {
        let mut p = Parser::new("<a><b></b></a>");
        assert_eq!(p.depth(), 0);
        p.next().unwrap().unwrap();
        assert_eq!(p.depth(), 1);
        p.next().unwrap().unwrap();
        assert_eq!(p.depth(), 2);
        assert!(p.offset() > 0);
    }

    #[test]
    fn doctype_is_skipped() {
        let events = Parser::parse_all("<!DOCTYPE note><a>x</a>").unwrap();
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(Parser::parse_all("<a><!-- oops </a>").is_err());
    }

    #[test]
    fn unterminated_cdata_is_an_error() {
        assert!(Parser::parse_all("<a><![CDATA[ oops </a>").is_err());
    }
}
