//! The trust-boundary taint rules.
//!
//! The paper's security argument in one sentence: the DSP is an untrusted
//! server that only ever stores and serves *encrypted* chunks, while
//! cleartext events and key material exist solely on the card/client side.
//! This module turns that argument into four statically-checked rules over
//! the item heads parsed by [`crate::items`] and the tier propagation of
//! [`crate::graph`], configured by `crates/lint/trust.toml`:
//!
//! - **taint-dsp** — no `Secret`/`Plaintext`-tier type in any DSP-scope item
//!   signature, struct field, `use` item, or public re-export.
//! - **taint-obs** — no `Secret`/`Plaintext`-tier type in telemetry item
//!   signatures, and no secret tier name on a metric-label call.
//! - **taint-debug** — explicit-`Secret` types must not derive `Debug`,
//!   impl `Debug`/`Display`, or return raw bytes without a justifying
//!   annotation.
//! - **taint-annotation** — crypto boundary fns carry `source`/`sink`
//!   annotations that agree with their signatures.
//!
//! Annotation grammar (one comment line, on or directly above the item):
//!
//! ```text
//! // taint: source — <why this fn produces sensitive data>
//! // taint: sink — <why this fn consumes sensitive data>
//! // taint: redacted — <why this Debug/Display/byte accessor is safe>
//! // taint: secret|plaintext|ciphertext — <tier claim for this type>
//! ```

use std::collections::BTreeMap;
use std::path::Path;

use crate::graph::{type_idents, Provenance, Tier, TierInfo, TypeGraph};
use crate::items::{parse_items, Item, ItemKind};
use crate::{Rule, Violation};

/// The declarative half of the analyzer: tier assignments, scope prefixes,
/// and annotation vocabulary, loaded from `crates/lint/trust.toml`.
#[derive(Debug, Default)]
pub struct TrustConfig {
    /// Explicit tier assignments (type name → tier).
    pub tiers: BTreeMap<String, Tier>,
    /// Path prefixes (slash-separated, workspace-relative) of the untrusted
    /// DSP scope.
    pub dsp_scope: Vec<String>,
    /// Path prefixes of the telemetry scope.
    pub obs_scope: Vec<String>,
    /// Metric-label call names (`counter_with`, …) policed everywhere.
    pub label_calls: Vec<String>,
    /// Boundary verbs: a fn whose name contains one of these segments and
    /// whose signature touches tiered types or raw bytes must be annotated.
    pub boundary_verbs: Vec<String>,
}

impl TrustConfig {
    /// Parses the `trust.toml` subset the linter understands: `[section]`
    /// headers, `key = ["a", "b"]` string arrays (single- or multi-line),
    /// and `#` comments. Hand-rolled because the linter is dependency-free.
    pub fn parse(text: &str) -> Result<TrustConfig, String> {
        let mut config = TrustConfig::default();
        let mut section = String::new();
        let mut pending: Option<(String, String, usize)> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_toml_comment(raw).trim().to_owned();
            if let Some((key, mut acc, at)) = pending.take() {
                let done = line.contains(']');
                acc.push(' ');
                acc.push_str(&line);
                if done {
                    config.assign(&section, &key, &acc, at)?;
                } else {
                    pending = Some((key, acc, at));
                }
                continue;
            }
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
                section = name.trim().to_owned();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("trust.toml:{lineno}: expected `key = [..]`"))?;
            let (key, value) = (key.trim().to_owned(), value.trim().to_owned());
            if value.starts_with('[') && !value.contains(']') {
                pending = Some((key, value, lineno));
            } else {
                config.assign(&section, &key, &value, lineno)?;
            }
        }
        if let Some((key, _, at)) = pending {
            return Err(format!("trust.toml:{at}: unterminated array for `{key}`"));
        }
        for (field, values) in [
            ("dsp scope", &config.dsp_scope),
            ("obs scope", &config.obs_scope),
            ("boundary_verbs", &config.boundary_verbs),
        ] {
            if values.is_empty() {
                return Err(format!("trust.toml: `{field}` must not be empty"));
            }
        }
        Ok(config)
    }

    fn assign(&mut self, section: &str, key: &str, value: &str, line: usize) -> Result<(), String> {
        let items = parse_string_array(value)
            .ok_or_else(|| format!("trust.toml:{line}: `{key}` must be a [\"…\"] array"))?;
        match (section, key) {
            ("tiers", tier_name) => {
                let tier = Tier::by_name(tier_name)
                    .ok_or_else(|| format!("trust.toml:{line}: unknown tier `{tier_name}`"))?;
                for name in items {
                    if let Some(prev) = self.tiers.insert(name.clone(), tier) {
                        if prev != tier {
                            return Err(format!(
                                "trust.toml:{line}: `{name}` assigned to both {} and {}",
                                prev.name(),
                                tier.name()
                            ));
                        }
                    }
                }
            }
            ("scopes", "dsp") => self.dsp_scope = items,
            ("scopes", "obs") => self.obs_scope = items,
            ("annotations", "boundary_verbs") => self.boundary_verbs = items,
            ("annotations", "label_calls") => self.label_calls = items,
            _ => {
                return Err(format!(
                    "trust.toml:{line}: unknown entry `[{section}] {key}`"
                ))
            }
        }
        Ok(())
    }
}

fn strip_toml_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let inner = value.trim().strip_prefix('[')?.trim().strip_suffix(']')?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let unquoted = part.strip_prefix('"')?.strip_suffix('"')?;
        out.push(unquoted.to_owned());
    }
    Some(out)
}

/// One workspace source file handed to [`analyze`]: its workspace-relative
/// path (slash-separated, used for scope matching and reports) and text.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, e.g. `crates/dsp/src/store.rs`.
    pub path: String,
    /// Raw file contents.
    pub contents: String,
}

fn in_scope(path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p.as_str()))
}

/// The annotation keywords the grammar accepts on fns vs. types.
const FN_KEYWORDS: &[&str] = &["source", "sink"];
const TIER_KEYWORDS: &[&str] = &["secret", "plaintext", "ciphertext"];

/// Splits an annotation body into `(keyword, reason)` when the first word is
/// one of the taint keywords; returns `None` for unrelated `taint:` text
/// (e.g. prose in a doc comment that happens to mention the grammar).
fn split_annotation(text: &str) -> Option<(&str, &str)> {
    let word_end = text
        .find(|c: char| !c.is_ascii_alphanumeric())
        .unwrap_or(text.len());
    let word = &text[..word_end];
    if !(FN_KEYWORDS.contains(&word) || TIER_KEYWORDS.contains(&word) || word == "redacted") {
        return None;
    }
    Some((word, text[word_end..].trim()))
}

/// True when `reason` is a well-formed justification: a `—`/`-` separator
/// followed by nonempty text.
fn reason_ok(reason: &str) -> bool {
    let stripped = reason
        .strip_prefix('—')
        .or_else(|| reason.strip_prefix('-'))
        .map(str::trim_start);
    stripped.is_some_and(|r| !r.is_empty())
}

/// True when `name` contains `verb` as a whole `_`-separated segment run:
/// `decrypt_chunk` matches `decrypt`, `unwrap_key` matches `unwrap_key`,
/// but `encryptions` does not match `encrypt`.
fn has_verb_segment(name: &str, verb: &str) -> bool {
    name == verb
        || name.starts_with(verb) && name.as_bytes().get(verb.len()) == Some(&b'_')
        || name.ends_with(verb)
            && name.as_bytes().get(name.len().wrapping_sub(verb.len() + 1)) == Some(&b'_')
        || name.contains(&format!("_{verb}_"))
}

struct Analyzer<'a> {
    config: &'a TrustConfig,
    tiers: BTreeMap<String, TierInfo>,
    violations: Vec<Violation>,
}

impl Analyzer<'_> {
    fn push(&mut self, path: &str, line: usize, rule: Rule, message: String) {
        self.violations.push(Violation {
            file: Path::new(path).to_path_buf(),
            line,
            rule,
            message,
        });
    }

    fn tier_of(&self, name: &str) -> Option<&TierInfo> {
        self.tiers.get(name)
    }

    /// Renders why `name` is sensitive, following one provenance hop.
    fn describe(&self, name: &str, info: &TierInfo) -> String {
        match &info.provenance {
            Provenance::Explicit => format!("`{name}` is {}-tier", info.tier.name()),
            Provenance::Field {
                field_type,
                file,
                line,
            } => format!(
                "`{name}` is {}-tier (embeds `{field_type}`, {file}:{line})",
                info.tier.name()
            ),
        }
    }

    fn is_explicit_secret(&self, name: &str) -> bool {
        matches!(
            self.tiers.get(name),
            Some(TierInfo {
                tier: Tier::Secret,
                provenance: Provenance::Explicit,
            })
        )
    }

    /// The type names an item's head exposes, for the scope rules.
    fn referenced_names(&self, item: &Item) -> Vec<String> {
        let mut names = match item.kind {
            ItemKind::Use | ItemKind::Impl => type_idents(&item.signature),
            ItemKind::TypeAlias | ItemKind::Const => {
                // Skip the binder: `type Event = ();` declares, not uses.
                let after = item
                    .signature
                    .find(&item.name)
                    .map(|at| at + item.name.len())
                    .unwrap_or(0);
                type_idents(&item.signature[after..])
            }
            _ => type_idents(&item.signature),
        };
        for (_, field) in &item.field_types {
            for n in type_idents(field) {
                if !names.contains(&n) {
                    names.push(n);
                }
            }
        }
        names
    }

    /// Item-level scope rule shared by taint-dsp and taint-obs.
    fn check_scope_item(&mut self, path: &str, item: &Item, rule: Rule, scope_name: &str) {
        if item.in_test {
            return;
        }
        let mut flagged = Vec::new();
        for name in self.referenced_names(item) {
            let Some(info) = self.tier_of(&name).cloned() else {
                continue;
            };
            if !matches!(info.tier, Tier::Secret | Tier::Plaintext) || flagged.contains(&name) {
                continue;
            }
            let what = match item.kind {
                ItemKind::Use if item.is_pub => "public re-export",
                ItemKind::Use => "use item",
                ItemKind::Fn => "fn signature",
                ItemKind::Struct | ItemKind::Enum => "type declaration",
                ItemKind::Impl => "impl header",
                _ => "item",
            };
            let described = self.describe(&name, &info);
            self.push(
                path,
                item.line,
                rule,
                format!(
                    "{described} and must not appear in the {scope_name} {what} \
                     `{}`: the {scope_name} handles only ciphertext",
                    item.name
                ),
            );
            flagged.push(name);
        }
        // Crypto boundary code has no business inside the untrusted scope,
        // even when its signature is all raw bytes.
        if item.kind == ItemKind::Fn && self.is_boundary_fn(item) {
            self.push(
                path,
                item.line,
                rule,
                format!(
                    "crypto boundary fn `{}` defined inside the {scope_name}: \
                     encrypt/decrypt belongs on the card/client side",
                    item.name
                ),
            );
        }
    }

    /// True when `item` is a fn whose name carries a boundary verb and whose
    /// signature touches tiered types or raw bytes. The byte check keeps
    /// counters like `record_decrypt(&mut self, bytes: usize)` exempt.
    fn is_boundary_fn(&self, item: &Item) -> bool {
        if item.kind != ItemKind::Fn {
            return false;
        }
        let verb_hit = self
            .config
            .boundary_verbs
            .iter()
            .any(|v| has_verb_segment(&item.name, v));
        if !verb_hit {
            return false;
        }
        if item.signature.contains("[u8") || item.signature.contains("Vec<u8>") {
            return true;
        }
        let mut names = type_idents(&item.signature);
        if let Some(self_ty) = &item.self_type {
            names.extend(type_idents(self_ty));
        }
        names.iter().any(|n| self.tier_of(n).is_some())
    }

    /// The return-type text of a fn signature, with `Self` resolved to the
    /// impl self type.
    fn return_text(&self, item: &Item) -> Option<String> {
        let (_, ret) = item.signature.split_once("->")?;
        let mut ret = ret.trim().to_owned();
        if let Some(self_ty) = &item.self_type {
            ret = ret.replace("Self", self_ty);
        }
        Some(ret)
    }

    fn check_annotations(&mut self, path: &str, item: &Item) {
        if item.in_test {
            return;
        }
        let parsed = item
            .annotation
            .as_ref()
            .and_then(|a| split_annotation(&a.text).map(|(k, r)| (a.line, k, r)));

        if let Some((line, keyword, reason)) = parsed {
            if !reason_ok(reason) {
                self.push(
                    path,
                    line,
                    Rule::TaintAnnotation,
                    format!(
                        "malformed `// taint: {keyword}` annotation: expected \
                         `taint: {keyword} — <reason>`"
                    ),
                );
                return;
            }
            match (keyword, item.kind) {
                ("source" | "sink", ItemKind::Fn) => {
                    self.check_direction(path, item, keyword);
                }
                (tier_word, ItemKind::Struct | ItemKind::Enum)
                    if TIER_KEYWORDS.contains(&tier_word) =>
                {
                    // Tier claims were already merged into the tier map
                    // before propagation; conflicts were reported there.
                }
                ("redacted", _) => {}
                ("source" | "sink", _) => {
                    self.push(
                        path,
                        line,
                        Rule::TaintAnnotation,
                        format!(
                            "`taint: {keyword}` annotates `{}`, which is not a fn",
                            item.name
                        ),
                    );
                }
                (tier_word, _) if TIER_KEYWORDS.contains(&tier_word) => {
                    self.push(
                        path,
                        line,
                        Rule::TaintAnnotation,
                        format!(
                            "`taint: {tier_word}` annotates `{}`, which is not a \
                             struct/enum declaration",
                            item.name
                        ),
                    );
                }
                _ => {}
            }
            return;
        }

        // No (valid) annotation: boundary fns must carry one.
        if self.is_boundary_fn(item) {
            self.push(
                path,
                item.line,
                Rule::TaintAnnotation,
                format!(
                    "crypto boundary fn `{}` is missing its `// taint: source|sink — \
                     <reason>` annotation",
                    item.name
                ),
            );
        }
    }

    /// Annotation ↔ signature consistency for `source`/`sink` fns.
    fn check_direction(&mut self, path: &str, item: &Item, keyword: &str) {
        let Some(ret) = self.return_text(item) else {
            // In-place fns (e.g. `encrypt_block(&self, block: &mut …)`)
            // have no return type to check against.
            return;
        };
        let sensitive_ret: Vec<String> = type_idents(&ret)
            .into_iter()
            .filter(|n| {
                self.tier_of(n)
                    .is_some_and(|i| matches!(i.tier, Tier::Secret | Tier::Plaintext))
            })
            .collect();
        match keyword {
            "sink" => {
                if let Some(name) = sensitive_ret.first() {
                    self.push(
                        path,
                        item.line,
                        Rule::TaintAnnotation,
                        format!(
                            "`{}` is annotated `taint: sink` but returns sensitive \
                             `{name}`: a sink consumes plaintext/keys and emits \
                             ciphertext — annotate it `source` or fix the signature",
                            item.name
                        ),
                    );
                }
            }
            "source" => {
                let returns_bytes = ret.contains("u8");
                let returns_ciphertext = type_idents(&ret)
                    .iter()
                    .any(|n| self.tier_of(n).is_some_and(|i| i.tier == Tier::Ciphertext));
                if sensitive_ret.is_empty() && !returns_bytes && returns_ciphertext {
                    self.push(
                        path,
                        item.line,
                        Rule::TaintAnnotation,
                        format!(
                            "`{}` is annotated `taint: source` but returns only \
                             ciphertext-tier types: a source produces plaintext/keys \
                             — annotate it `sink` or fix the signature",
                            item.name
                        ),
                    );
                }
            }
            _ => {}
        }
    }

    /// taint-debug: explicit-`Secret` types must not leak through `Debug`,
    /// `Display`, or raw-byte accessors without a justifying annotation.
    fn check_secret_escapes(&mut self, path: &str, item: &Item) {
        if item.in_test {
            return;
        }
        let redacted = item
            .annotation
            .as_ref()
            .and_then(|a| split_annotation(&a.text))
            .is_some_and(|(k, r)| k == "redacted" && reason_ok(r));
        match item.kind {
            ItemKind::Struct | ItemKind::Enum
                if self.is_explicit_secret(&item.name)
                    && item.derives.iter().any(|d| d == "Debug")
                    && !redacted =>
            {
                self.push(
                    path,
                    item.line,
                    Rule::TaintDebug,
                    format!(
                        "secret-tier `{}` derives Debug: `{{:?}}` would print key \
                         material into logs; write a redacting impl, or justify \
                         with `// taint: redacted — <reason>`",
                        item.name
                    ),
                );
            }
            ItemKind::Impl => {
                let base = type_idents(&item.name);
                let secret_self = base.first().is_some_and(|n| self.is_explicit_secret(n));
                let trait_name = item
                    .impl_trait
                    .as_deref()
                    .map(|t| t.rsplit("::").next().unwrap_or(t).trim().to_owned());
                if secret_self
                    && matches!(trait_name.as_deref(), Some("Debug") | Some("Display"))
                    && !redacted
                {
                    self.push(
                        path,
                        item.line,
                        Rule::TaintDebug,
                        format!(
                            "{} impl on secret-tier `{}` without `// taint: redacted — \
                             <reason>`: formatting a key is an exfiltration path",
                            trait_name.as_deref().unwrap_or("Debug"),
                            item.name,
                        ),
                    );
                }
            }
            ItemKind::Fn => {
                let secret_self = item
                    .self_type
                    .as_deref()
                    .map(type_idents)
                    .and_then(|names| names.first().cloned())
                    .is_some_and(|n| self.is_explicit_secret(&n));
                if !secret_self {
                    return;
                }
                let returns_bytes = self
                    .return_text(item)
                    .is_some_and(|r| r.contains("u8") || r.contains("String"));
                let annotated = item
                    .annotation
                    .as_ref()
                    .and_then(|a| split_annotation(&a.text))
                    .is_some_and(|(k, r)| {
                        (FN_KEYWORDS.contains(&k) || k == "redacted") && reason_ok(r)
                    });
                if returns_bytes && !annotated {
                    self.push(
                        path,
                        item.line,
                        Rule::TaintDebug,
                        format!(
                            "`{}::{}` returns raw bytes from a secret-tier type: \
                             annotate the escape `// taint: source|sink|redacted — \
                             <reason>` or remove it",
                            item.self_type.as_deref().unwrap_or("?"),
                            item.name
                        ),
                    );
                }
            }
            _ => {}
        }
    }

    /// taint-obs label rule: a metric-label call with an explicit-secret
    /// type name on the same line, anywhere in the workspace.
    fn check_label_lines(&mut self, path: &str, contents: &str) {
        let src = crate::Source::new(contents);
        for call in &self.config.label_calls {
            for at in crate::token_positions(&src.code, call) {
                if src.in_test(at) || !crate::followed_by(&src.code, at, call, b'(') {
                    continue;
                }
                let line = src.line_of(at);
                let line_text = line_text_of(&src.code, line);
                let culprit = self
                    .config
                    .tiers
                    .iter()
                    .filter(|(_, &t)| t == Tier::Secret)
                    .map(|(n, _)| n.clone())
                    .find(|n| !crate::token_positions(line_text, n).is_empty());
                if let Some(name) = culprit {
                    self.push(
                        path,
                        line,
                        Rule::TaintObs,
                        format!(
                            "secret-tier `{name}` on a `{call}` metric-label line: \
                             labels are exported in ObsSnapshot JSON and must never \
                             be derived from key material"
                        ),
                    );
                }
            }
        }
    }
}

fn line_text_of(code: &str, line: usize) -> &str {
    code.lines().nth(line.saturating_sub(1)).unwrap_or("")
}

/// Runs the trust-boundary analysis over the workspace files.
///
/// `files` must carry workspace-relative slash-separated paths; the full set
/// matters because tier propagation follows struct fields across crates.
pub fn analyze(config: &TrustConfig, files: &[SourceFile]) -> Vec<Violation> {
    let parsed: Vec<(usize, Vec<Item>)> = files
        .iter()
        .enumerate()
        .map(|(i, f)| (i, parse_items(&f.contents)))
        .collect();

    // Pass 1: merge annotation tier claims into the explicit tiers, then
    // propagate through the containment graph.
    let mut explicit = config.tiers.clone();
    let mut pre_violations = Vec::new();
    for (fi, items) in &parsed {
        let path = &files[*fi].path;
        for item in items {
            if item.in_test || !matches!(item.kind, ItemKind::Struct | ItemKind::Enum) {
                continue;
            }
            let Some((line, word, reason)) = item
                .annotation
                .as_ref()
                .and_then(|a| split_annotation(&a.text).map(|(k, r)| (a.line, k, r)))
            else {
                continue;
            };
            let Some(tier) = Tier::by_name(word) else {
                continue;
            };
            if !reason_ok(reason) {
                continue; // reported by check_annotations
            }
            match explicit.get(&item.name) {
                Some(&existing) if existing != tier => {
                    pre_violations.push(Violation {
                        file: Path::new(path).to_path_buf(),
                        line,
                        rule: Rule::TaintAnnotation,
                        message: format!(
                            "`{}` is annotated `taint: {}` but trust.toml assigns it \
                             {}: resolve the conflict in trust.toml",
                            item.name,
                            tier.name(),
                            existing.name()
                        ),
                    });
                }
                _ => {
                    explicit.insert(item.name.clone(), tier);
                }
            }
        }
    }
    let mut graph = TypeGraph::default();
    for (fi, items) in &parsed {
        let path = &files[*fi].path;
        for item in items {
            if item.in_test || !matches!(item.kind, ItemKind::Struct | ItemKind::Enum) {
                continue;
            }
            for (line, field) in &item.field_types {
                graph.add_field(&item.name, field, path, *line);
            }
        }
    }

    let mut analyzer = Analyzer {
        config,
        tiers: graph.propagate(&explicit),
        violations: pre_violations,
    };

    // Pass 2: the item rules.
    for (fi, items) in &parsed {
        let path = &files[*fi].path;
        let dsp = in_scope(path, &config.dsp_scope);
        let obs = in_scope(path, &config.obs_scope);
        for item in items {
            if dsp {
                analyzer.check_scope_item(path, item, Rule::TaintDsp, "DSP");
            } else if obs {
                analyzer.check_scope_item(path, item, Rule::TaintObs, "obs");
            }
            analyzer.check_annotations(path, item);
            analyzer.check_secret_escapes(path, item);
        }
        analyzer.check_label_lines(path, &files[*fi].contents);
    }
    analyzer.violations
}

/// The trust half of the doc-sync contract: every type named in a
/// `trust.toml` tier must appear in the architecture book's trust-boundary
/// table, so the book's tier→type table cannot fall behind the config.
pub fn check_trust_sync(book_path: &Path, book: &str, config: &TrustConfig) -> Vec<Violation> {
    config
        .tiers
        .iter()
        .filter(|(name, _)| !book.contains(name.as_str()))
        .map(|(name, tier)| Violation {
            file: book_path.to_path_buf(),
            line: 1,
            rule: Rule::DocSync,
            message: format!(
                "trust.toml assigns `{name}` to the {} tier but ARCHITECTURE.md's \
                 trust-boundary table does not mention it; add a row",
                tier.name()
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> TrustConfig {
        TrustConfig::parse(
            r#"
[tiers]
secret = ["SecretKey"]
plaintext = ["Document", "Event"]
ciphertext = ["SecureDocument"]

[scopes]
dsp = ["crates/dsp/src"]
obs = ["crates/obs/src"]

[annotations]
boundary_verbs = ["encrypt", "decrypt", "seal", "unwrap_key"]
label_calls = ["counter_with"]
"#,
        )
        .unwrap_or_else(|e| panic!("{e}"))
    }

    fn run(path: &str, src: &str) -> Vec<Violation> {
        let cfg = config();
        analyze(
            &cfg,
            &[SourceFile {
                path: path.to_owned(),
                contents: src.to_owned(),
            }],
        )
    }

    #[test]
    fn parses_trust_toml_subset() {
        let cfg = config();
        assert_eq!(cfg.tiers.get("SecretKey"), Some(&Tier::Secret));
        assert_eq!(cfg.tiers.get("Document"), Some(&Tier::Plaintext));
        assert_eq!(cfg.dsp_scope, ["crates/dsp/src"]);
        assert_eq!(cfg.boundary_verbs.len(), 4);
    }

    #[test]
    fn toml_errors_are_reported() {
        assert!(TrustConfig::parse("[tiers]\nsecret = [\"A\"").is_err());
        assert!(TrustConfig::parse("[tiers]\nmystery = [\"A\"]").is_err());
        assert!(TrustConfig::parse("loose = [\"A\"]").is_err());
        // A valid file must declare scopes and verbs.
        assert!(TrustConfig::parse("[tiers]\nsecret = [\"A\"]").is_err());
    }

    #[test]
    fn multiline_arrays_parse() {
        let cfg = TrustConfig::parse(
            "[tiers]\nsecret = [\n  \"A\", # key\n  \"B\",\n]\n[scopes]\ndsp = [\"d\"]\nobs = [\"o\"]\n[annotations]\nboundary_verbs = [\"encrypt\"]\n",
        )
        .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(cfg.tiers.len(), 2);
    }

    #[test]
    fn flags_secret_in_dsp_scope() {
        let v = run(
            "crates/dsp/src/store.rs",
            "pub struct Record {\n    key: SecretKey,\n}\n",
        );
        assert!(
            v.iter().any(|v| v.rule == Rule::TaintDsp && v.line == 1),
            "{v:?}"
        );
    }

    #[test]
    fn ciphertext_in_dsp_scope_is_fine() {
        let v = run(
            "crates/dsp/src/store.rs",
            "pub struct Record {\n    doc: SecureDocument,\n}\npub fn get(r: &Record) -> &SecureDocument { &r.doc }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn propagated_secret_reaches_dsp_rule() {
        let cfg = config();
        let v = analyze(
            &cfg,
            &[
                SourceFile {
                    path: "crates/proxy/src/a.rs".to_owned(),
                    contents: "pub struct Channel { key: SecretKey }\n".to_owned(),
                },
                SourceFile {
                    path: "crates/dsp/src/b.rs".to_owned(),
                    contents: "pub fn serve(c: &Channel) {}\n".to_owned(),
                },
            ],
        );
        let hit = v
            .iter()
            .find(|v| v.rule == Rule::TaintDsp)
            .unwrap_or_else(|| panic!("{v:?}"));
        assert!(hit.message.contains("embeds `SecretKey`"), "{hit:?}");
    }

    #[test]
    fn boundary_fn_needs_annotation() {
        let v = run(
            "crates/crypto/src/m.rs",
            "pub fn cbc_decrypt(key: &SecretKey, data: &[u8]) -> Vec<u8> { vec![] }\n",
        );
        assert!(v.iter().any(|v| v.rule == Rule::TaintAnnotation), "{v:?}");

        let v = run(
            "crates/crypto/src/m.rs",
            "// taint: source — decrypts ciphertext back to document bytes\npub fn cbc_decrypt(key: &SecretKey, data: &[u8]) -> Vec<u8> { vec![] }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn byte_free_verb_fn_is_exempt() {
        let v = run(
            "crates/obs/src/o.rs",
            "pub fn record_decrypt(&mut self, bytes: usize) {}\n",
        );
        // Wrong-looking but harmless: counts decrypts, touches no secrets.
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn sink_returning_plaintext_is_inconsistent() {
        let v = run(
            "crates/core/src/s.rs",
            "// taint: sink — wrong direction\npub fn seal_open(key: &SecretKey, data: &[u8]) -> Document { Document }\n",
        );
        assert!(
            v.iter()
                .any(|v| v.rule == Rule::TaintAnnotation && v.message.contains("sink")),
            "{v:?}"
        );
    }

    #[test]
    fn malformed_annotation_is_flagged() {
        let v = run(
            "crates/core/src/s.rs",
            "// taint: sink\npub fn seal(key: &SecretKey, data: &[u8]) {}\n",
        );
        assert!(
            v.iter()
                .any(|v| v.rule == Rule::TaintAnnotation && v.message.contains("malformed")),
            "{v:?}"
        );
    }

    #[test]
    fn secret_debug_derive_is_flagged_and_redactable() {
        let v = run(
            "crates/crypto/src/k.rs",
            "#[derive(Debug)]\npub struct SecretKey([u8; 16]);\n",
        );
        assert!(v.iter().any(|v| v.rule == Rule::TaintDebug), "{v:?}");

        let v = run(
            "crates/crypto/src/k.rs",
            "// taint: redacted — tuple field is a fixed array, Debug prints length only\n#[derive(Debug)]\npub struct SecretKey([u8; 16]);\n",
        );
        assert!(v.iter().all(|v| v.rule != Rule::TaintDebug), "{v:?}");
    }

    #[test]
    fn secret_on_label_line_is_flagged() {
        let v = run(
            "crates/dsp/src/o.rs",
            "fn f(obs: &Obs, key: &SecretKey) {\n    obs.counter_with(FAM, &label_for(SecretKey::id(key)));\n}\n",
        );
        assert!(
            v.iter().any(|v| v.rule == Rule::TaintObs && v.line == 2),
            "{v:?}"
        );
    }

    #[test]
    fn associated_event_types_do_not_false_positive() {
        let v = run(
            "crates/dsp/src/actors.rs",
            "pub trait Session {\n    type Event: Send;\n    fn on_event(&mut self, e: Self::Event);\n}\nimpl Session for Reader {\n    type Event = ();\n    fn on_event(&mut self, e: Self::Event) {}\n}\npub fn drain<A: Session>(q: &mut Vec<A::Event>) {}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn trust_sync_flags_missing_table_rows() {
        let cfg = config();
        let book =
            "| `SecretKey` | secret |\n| `Document` | plaintext |\n| `Event` | plaintext |\n";
        let v = check_trust_sync(Path::new("ARCHITECTURE.md"), book, &cfg);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("SecureDocument"));
    }
}
