//! Arena-based in-memory document.
//!
//! The SOE engine never materialises documents — that is the whole point of the
//! streaming evaluator — but the rest of the system does need a tree:
//! the synthetic generators build trees before serialising them, the DOM
//! *baseline* of experiment E9 materialises the document on the (insecure)
//! terminal, and the test oracles evaluate XPath and access rules on the tree
//! to validate the streaming engine.

use crate::error::XmlError;
use crate::event::{Attribute, Event};
use crate::parser::Parser;

/// Index of a node inside a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Payload of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeData {
    /// An element with a name and attributes.
    Element {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attrs: Vec<Attribute>,
    },
    /// A text node.
    Text(String),
}

#[derive(Debug, Clone)]
struct Node {
    data: NodeData,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// An XML document stored in an arena.
#[derive(Debug, Clone, Default)]
pub struct Document {
    nodes: Vec<Node>,
    root: Option<NodeId>,
}

impl Document {
    /// Creates an empty document.
    pub fn new() -> Self {
        Document::default()
    }

    /// Parses `input` into a document.
    pub fn parse(input: &str) -> Result<Self, XmlError> {
        let events = Parser::parse_all(input)?;
        Document::from_events(&events)
    }

    /// Builds a document from a well-formed event stream.
    pub fn from_events(events: &[Event]) -> Result<Self, XmlError> {
        let mut doc = Document::new();
        let mut stack: Vec<NodeId> = Vec::new();
        for (i, ev) in events.iter().enumerate() {
            match ev {
                Event::Open { name, attrs } => {
                    let parent = stack.last().copied();
                    let id = doc.push_node(
                        NodeData::Element {
                            name: name.clone(),
                            attrs: attrs.clone(),
                        },
                        parent,
                    );
                    if parent.is_none() {
                        if doc.root.is_some() {
                            return Err(XmlError::TrailingContent { offset: i });
                        }
                        doc.root = Some(id);
                    }
                    stack.push(id);
                }
                Event::Text(t) => {
                    let parent = stack.last().copied().ok_or(XmlError::Malformed {
                        message: "text event outside the root element".into(),
                        offset: i,
                    })?;
                    doc.push_node(NodeData::Text(t.clone()), Some(parent));
                }
                Event::Close(name) => {
                    let top = stack.pop().ok_or_else(|| XmlError::MismatchedClose {
                        found: name.clone(),
                        expected: None,
                        offset: i,
                    })?;
                    let top_name = doc.element_name(top).unwrap_or_default().to_owned();
                    if &top_name != name {
                        return Err(XmlError::MismatchedClose {
                            found: name.clone(),
                            expected: Some(top_name),
                            offset: i,
                        });
                    }
                }
            }
        }
        if !stack.is_empty() {
            return Err(XmlError::UnexpectedEof {
                open_elements: stack
                    .iter()
                    .filter_map(|&id| doc.element_name(id).map(str::to_owned))
                    .collect(),
            });
        }
        if doc.root.is_none() {
            return Err(XmlError::EmptyDocument);
        }
        Ok(doc)
    }

    fn push_node(&mut self, data: NodeData, parent: Option<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            data,
            parent,
            children: Vec::new(),
        });
        if let Some(p) = parent {
            self.nodes[p.index()].children.push(id);
        }
        id
    }

    /// Creates a root element; returns its id. Panics if a root already exists.
    pub fn create_root(&mut self, name: impl Into<String>) -> NodeId {
        assert!(self.root.is_none(), "document already has a root");
        let id = self.push_node(
            NodeData::Element {
                name: name.into(),
                attrs: Vec::new(),
            },
            None,
        );
        self.root = Some(id);
        id
    }

    /// Appends a child element to `parent`.
    pub fn add_element(&mut self, parent: NodeId, name: impl Into<String>) -> NodeId {
        self.push_node(
            NodeData::Element {
                name: name.into(),
                attrs: Vec::new(),
            },
            Some(parent),
        )
    }

    /// Appends a child element with attributes to `parent`.
    pub fn add_element_with(
        &mut self,
        parent: NodeId,
        name: impl Into<String>,
        attrs: Vec<Attribute>,
    ) -> NodeId {
        self.push_node(
            NodeData::Element {
                name: name.into(),
                attrs,
            },
            Some(parent),
        )
    }

    /// Appends a text child to `parent`.
    pub fn add_text(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        self.push_node(NodeData::Text(text.into()), Some(parent))
    }

    /// Root element id, if the document is non-empty.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Number of nodes (elements + text nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the document has no node.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Payload of `id`.
    pub fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()].data
    }

    /// Parent of `id`.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// Children of `id`, in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Element children of `id` (text nodes filtered out).
    pub fn element_children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id)
            .iter()
            .copied()
            .filter(move |&c| matches!(self.data(c), NodeData::Element { .. }))
    }

    /// Name of the element `id`, or `None` for a text node.
    pub fn element_name(&self, id: NodeId) -> Option<&str> {
        match self.data(id) {
            NodeData::Element { name, .. } => Some(name),
            NodeData::Text(_) => None,
        }
    }

    /// Attributes of the element `id` (empty for text nodes).
    pub fn attributes(&self, id: NodeId) -> &[Attribute] {
        match self.data(id) {
            NodeData::Element { attrs, .. } => attrs,
            NodeData::Text(_) => &[],
        }
    }

    /// Concatenated text content directly under `id` (not recursive).
    pub fn direct_text(&self, id: NodeId) -> String {
        let mut out = String::new();
        for &c in self.children(id) {
            if let NodeData::Text(t) = self.data(c) {
                out.push_str(t);
            }
        }
        out
    }

    /// Concatenated text content of the whole subtree rooted at `id`.
    pub fn deep_text(&self, id: NodeId) -> String {
        let mut out = String::new();
        for n in self.descendants(id) {
            if let NodeData::Text(t) = self.data(n) {
                out.push_str(t);
            }
        }
        out
    }

    /// Depth of `id` (root is at depth 1).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 1;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Ids of all ancestors of `id`, closest first (excluding `id` itself).
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Pre-order traversal of the subtree rooted at `id` (including `id`).
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.children(n).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Pre-order traversal of the whole document.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        match self.root {
            Some(r) => self.descendants(r),
            None => Vec::new(),
        }
    }

    /// All element nodes, in document order.
    pub fn all_elements(&self) -> Vec<NodeId> {
        self.all_nodes()
            .into_iter()
            .filter(|&n| matches!(self.data(n), NodeData::Element { .. }))
            .collect()
    }

    /// Number of element nodes in the subtree rooted at `id`.
    pub fn subtree_element_count(&self, id: NodeId) -> usize {
        self.descendants(id)
            .into_iter()
            .filter(|&n| matches!(self.data(n), NodeData::Element { .. }))
            .count()
    }

    /// Path of element names from the root down to `id` (inclusive).
    pub fn path_names(&self, id: NodeId) -> Vec<String> {
        let mut names: Vec<String> = self
            .ancestors(id)
            .into_iter()
            .filter_map(|a| self.element_name(a).map(str::to_owned))
            .collect();
        names.reverse();
        if let Some(n) = self.element_name(id) {
            names.push(n.to_owned());
        }
        names
    }

    /// Serialises the subtree rooted at `id` as an event stream.
    pub fn subtree_events(&self, id: NodeId) -> Vec<Event> {
        let mut out = Vec::new();
        self.emit(id, &mut out);
        out
    }

    /// Serialises the whole document as an event stream.
    pub fn to_events(&self) -> Vec<Event> {
        match self.root {
            Some(r) => self.subtree_events(r),
            None => Vec::new(),
        }
    }

    fn emit(&self, id: NodeId, out: &mut Vec<Event>) {
        match self.data(id) {
            NodeData::Element { name, attrs } => {
                out.push(Event::Open {
                    name: name.clone(),
                    attrs: attrs.clone(),
                });
                for &c in self.children(id) {
                    self.emit(c, out);
                }
                out.push(Event::Close(name.clone()));
            }
            NodeData::Text(t) => out.push(Event::Text(t.clone())),
        }
    }

    /// Serialises the document to compact XML text.
    pub fn to_xml(&self) -> String {
        crate::writer::to_string(&self.to_events())
    }

    /// Serialises the document to indented XML text.
    pub fn to_pretty_xml(&self) -> String {
        crate::writer::to_pretty_string(&self.to_events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse("<a><b id=\"1\">x</b><c><d>y</d><d>z</d></c></a>").unwrap()
    }

    #[test]
    fn parse_and_navigate() {
        let d = doc();
        let root = d.root().unwrap();
        assert_eq!(d.element_name(root), Some("a"));
        let kids: Vec<_> = d.element_children(root).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(d.element_name(kids[0]), Some("b"));
        assert_eq!(d.direct_text(kids[0]), "x");
        assert_eq!(d.attributes(kids[0])[0].value, "1");
        assert_eq!(d.deep_text(kids[1]), "yz");
        assert_eq!(d.depth(kids[1]), 2);
        assert_eq!(d.parent(kids[0]), Some(root));
        assert_eq!(d.parent(root), None);
    }

    #[test]
    fn events_roundtrip() {
        let d = doc();
        let events = d.to_events();
        let d2 = Document::from_events(&events).unwrap();
        assert_eq!(d2.to_events(), events);
        assert_eq!(d.to_xml(), d2.to_xml());
    }

    #[test]
    fn path_names_and_counts() {
        let d = doc();
        let elems = d.all_elements();
        // a, b, c, d, d
        assert_eq!(elems.len(), 5);
        let last = *elems.last().unwrap();
        assert_eq!(d.path_names(last), vec!["a", "c", "d"]);
        assert_eq!(d.subtree_element_count(d.root().unwrap()), 5);
    }

    #[test]
    fn building_programmatically() {
        let mut d = Document::new();
        let root = d.create_root("library");
        let book = d.add_element(root, "book");
        d.add_text(book, "Rust");
        let b2 = d.add_element_with(root, "book", vec![Attribute::new("lang", "fr")]);
        d.add_text(b2, "XML");
        assert_eq!(
            d.to_xml(),
            "<library><book>Rust</book><book lang=\"fr\">XML</book></library>"
        );
        assert_eq!(d.ancestors(b2), vec![root]);
    }

    #[test]
    #[should_panic(expected = "already has a root")]
    fn double_root_panics() {
        let mut d = Document::new();
        d.create_root("a");
        d.create_root("b");
    }

    #[test]
    fn from_events_rejects_bad_streams() {
        assert!(Document::from_events(&[Event::text("x")]).is_err());
        assert!(Document::from_events(&[Event::open("a")]).is_err());
        assert!(Document::from_events(&[Event::open("a"), Event::close("b")]).is_err());
        assert!(Document::from_events(&[]).is_err());
        assert!(Document::from_events(&[
            Event::open("a"),
            Event::close("a"),
            Event::open("b"),
            Event::close("b")
        ])
        .is_err());
    }

    #[test]
    fn empty_document_reports_len_zero() {
        let d = Document::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert!(d.root().is_none());
        assert!(d.all_nodes().is_empty());
        assert_eq!(d.to_xml(), "");
    }
}
