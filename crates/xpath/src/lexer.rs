//! Tokeniser for the XP{[],*,//} fragment.

use crate::error::ParseError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `*`
    Star,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `@`
    At,
    /// `.` (self)
    Dot,
    /// An element or attribute name.
    Name(String),
    /// A quoted string or numeric literal.
    Literal(String),
    /// A comparison operator.
    Cmp(crate::ast::Comparison),
}

/// A token together with its source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Character offset of the token start.
    pub offset: usize,
}

fn is_name_char(c: char, first: bool) -> bool {
    if first {
        c.is_alphabetic() || c == '_'
    } else {
        c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == ':'
    }
}

/// Tokenises `input`.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, ParseError> {
    use crate::ast::Comparison;
    let mut out = Vec::new();
    // alloc: startup — path expressions lex once at provisioning, never per event.
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '/' => {
                if chars.get(i + 1) == Some(&'/') {
                    out.push(Spanned {
                        token: Token::DoubleSlash,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Slash,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '*' => {
                out.push(Spanned {
                    token: Token::Star,
                    offset: start,
                });
                i += 1;
            }
            '[' => {
                out.push(Spanned {
                    token: Token::LBracket,
                    offset: start,
                });
                i += 1;
            }
            ']' => {
                out.push(Spanned {
                    token: Token::RBracket,
                    offset: start,
                });
                i += 1;
            }
            '@' => {
                out.push(Spanned {
                    token: Token::At,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                out.push(Spanned {
                    token: Token::Cmp(Comparison::Eq),
                    offset: start,
                });
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Spanned {
                        token: Token::Cmp(Comparison::Ne),
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new("expected `!=`", start, input));
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Spanned {
                        token: Token::Cmp(Comparison::Le),
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Cmp(Comparison::Lt),
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Spanned {
                        token: Token::Cmp(Comparison::Ge),
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Cmp(Comparison::Gt),
                        offset: start,
                    });
                    i += 1;
                }
            }
            '"' | '\'' => {
                let quote = c;
                i += 1;
                let lit_start = i;
                while i < chars.len() && chars[i] != quote {
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(ParseError::new("unterminated string literal", start, input));
                }
                out.push(Spanned {
                    // alloc: startup — path expressions lex once at provisioning, never per event.
                    token: Token::Literal(chars[lit_start..i].iter().collect()),
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                // Either the self node `.` or the start of a number like `.5`.
                if chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                    let num_start = i;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                    out.push(Spanned {
                        // alloc: startup — path expressions lex once at provisioning, never per event.
                        token: Token::Literal(chars[num_start..i].iter().collect()),
                        offset: start,
                    });
                } else {
                    out.push(Spanned {
                        token: Token::Dot,
                        offset: start,
                    });
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                out.push(Spanned {
                    // alloc: startup — path expressions lex once at provisioning, never per event.
                    token: Token::Literal(chars[start..i].iter().collect()),
                    offset: start,
                });
            }
            c if is_name_char(c, true) => {
                while i < chars.len() && is_name_char(chars[i], i == start) {
                    i += 1;
                }
                out.push(Spanned {
                    // alloc: startup — path expressions lex once at provisioning, never per event.
                    token: Token::Name(chars[start..i].iter().collect()),
                    offset: start,
                });
            }
            other => {
                return Err(ParseError::new(
                    // alloc: cold — lex error path.
                    format!("unexpected character `{other}`"),
                    start,
                    input,
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Comparison;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn tokenizes_basic_path() {
        assert_eq!(
            toks("//b[c]/d"),
            vec![
                Token::DoubleSlash,
                Token::Name("b".into()),
                Token::LBracket,
                Token::Name("c".into()),
                Token::RBracket,
                Token::Slash,
                Token::Name("d".into()),
            ]
        );
    }

    #[test]
    fn tokenizes_predicates_with_literals() {
        assert_eq!(
            toks("/a/b[@x = \"v\"][n >= 10]"),
            vec![
                Token::Slash,
                Token::Name("a".into()),
                Token::Slash,
                Token::Name("b".into()),
                Token::LBracket,
                Token::At,
                Token::Name("x".into()),
                Token::Cmp(Comparison::Eq),
                Token::Literal("v".into()),
                Token::RBracket,
                Token::LBracket,
                Token::Name("n".into()),
                Token::Cmp(Comparison::Ge),
                Token::Literal("10".into()),
                Token::RBracket,
            ]
        );
    }

    #[test]
    fn tokenizes_wildcard_dot_and_operators() {
        assert_eq!(
            toks("/*[. != '3.5']"),
            vec![
                Token::Slash,
                Token::Star,
                Token::LBracket,
                Token::Dot,
                Token::Cmp(Comparison::Ne),
                Token::Literal("3.5".into()),
                Token::RBracket,
            ]
        );
        assert_eq!(toks("a[x < 2][y <= 3][z > 4]").len(), 16);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(tokenize("/a[#]").is_err());
        assert!(tokenize("/a[x ! 2]").is_err());
        assert!(tokenize("/a[x = \"unterminated]").is_err());
    }

    #[test]
    fn offsets_point_into_source() {
        let spanned = tokenize("/ab//cd").unwrap();
        assert_eq!(spanned[1].offset, 1);
        assert_eq!(spanned[2].offset, 3);
        assert_eq!(spanned[3].offset, 5);
    }
}
