//! Abstract syntax tree of the XP{[],*,//} fragment.

use std::fmt;

/// Axis connecting a step to the previous one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `/` — the child axis.
    Child,
    /// `//` — the descendant-or-self axis followed by a child step, i.e. the
    /// step matches any descendant at depth ≥ 1 of the context node.
    Descendant,
}

/// Node test of a step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// A specific element name.
    Name(String),
    /// The wildcard `*`: any element.
    Wildcard,
}

impl NodeTest {
    /// True if this test accepts the given element name.
    pub fn matches(&self, name: &str) -> bool {
        match self {
            NodeTest::Name(n) => n == name,
            NodeTest::Wildcard => true,
        }
    }

    /// Returns the required name, if the test is not a wildcard.
    pub fn name(&self) -> Option<&str> {
        match self {
            NodeTest::Name(n) => Some(n),
            NodeTest::Wildcard => None,
        }
    }
}

/// Comparison operator in a value predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Comparison {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Comparison {
    /// Applies the comparison to two string values. If both parse as numbers
    /// the comparison is numeric (XPath coercion rule used in practice by the
    /// models the paper builds on); otherwise it is a string comparison.
    pub fn compare(self, left: &str, right: &str) -> bool {
        if let (Ok(l), Ok(r)) = (left.trim().parse::<f64>(), right.trim().parse::<f64>()) {
            return match self {
                Comparison::Eq => l == r,
                Comparison::Ne => l != r,
                Comparison::Lt => l < r,
                Comparison::Le => l <= r,
                Comparison::Gt => l > r,
                Comparison::Ge => l >= r,
            };
        }
        match self {
            Comparison::Eq => left == right,
            Comparison::Ne => left != right,
            Comparison::Lt => left < right,
            Comparison::Le => left <= right,
            Comparison::Gt => left > right,
            Comparison::Ge => left >= right,
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Comparison::Eq => "=",
            Comparison::Ne => "!=",
            Comparison::Lt => "<",
            Comparison::Le => "<=",
            Comparison::Gt => ">",
            Comparison::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// What a predicate tests relative to the context node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PredicateTarget {
    /// A relative element path, e.g. `[c/d]` or `[.//e]`.
    Path(Path),
    /// An attribute of the context node, e.g. `[@private]`.
    Attribute(String),
    /// An attribute reached through a relative path, e.g. `[act/@type]`.
    PathAttribute(Path, String),
    /// The text content of the context node itself, e.g. `[. = "x"]`.
    SelfText,
}

/// A predicate (branch) attached to a step: an existence test of a target,
/// optionally constrained by a comparison with a literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// What is being tested.
    pub target: PredicateTarget,
    /// Optional comparison `(op, literal)`; when absent the predicate is a pure
    /// existence test.
    pub condition: Option<(Comparison, String)>,
}

/// One location step: axis, node test and predicates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Step {
    /// Axis from the previous step.
    pub axis: Axis,
    /// Node test.
    pub test: NodeTest,
    /// Predicates, all of which must hold.
    pub predicates: Vec<Predicate>,
}

impl Step {
    /// Creates a child step with no predicate.
    pub fn child(name: impl Into<String>) -> Self {
        Step {
            axis: Axis::Child,
            test: NodeTest::Name(name.into()),
            predicates: Vec::new(),
        }
    }

    /// Creates a descendant step with no predicate.
    pub fn descendant(name: impl Into<String>) -> Self {
        Step {
            axis: Axis::Descendant,
            test: NodeTest::Name(name.into()),
            predicates: Vec::new(),
        }
    }

    /// Creates a wildcard child step.
    pub fn any_child() -> Self {
        Step {
            axis: Axis::Child,
            test: NodeTest::Wildcard,
            predicates: Vec::new(),
        }
    }
}

/// A location path.
///
/// Paths used as rule objects and queries are absolute (they start at the
/// document root); paths used inside predicates are relative to the step they
/// are attached to.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Path {
    /// Steps in order. The first step's axis is interpreted against the
    /// document root for absolute paths, or against the context node for
    /// relative (predicate) paths.
    pub steps: Vec<Step>,
}

impl Path {
    /// Creates a path from steps.
    pub fn new(steps: Vec<Step>) -> Self {
        Path { steps }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the path has no step.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// True if any step uses the descendant axis or a wildcard, i.e. the path
    /// is not a simple root-to-node name sequence.
    pub fn has_recursion_or_wildcard(&self) -> bool {
        self.steps
            .iter()
            .any(|s| s.axis == Axis::Descendant || matches!(s.test, NodeTest::Wildcard))
    }

    /// True if any step carries a predicate.
    pub fn has_predicates(&self) -> bool {
        self.steps.iter().any(|s| !s.predicates.is_empty())
    }

    /// Collects every element name mentioned by a node test anywhere in the
    /// path, including inside predicates. Used by the skip-index satisfiability
    /// analysis.
    pub fn mentioned_names(&self) -> Vec<String> {
        fn collect(path: &Path, out: &mut Vec<String>) {
            for step in &path.steps {
                if let NodeTest::Name(n) = &step.test {
                    out.push(n.clone());
                }
                for p in &step.predicates {
                    match &p.target {
                        PredicateTarget::Path(rel) | PredicateTarget::PathAttribute(rel, _) => {
                            collect(rel, out)
                        }
                        PredicateTarget::Attribute(_) | PredicateTarget::SelfText => {}
                    }
                }
            }
        }
        let mut out = Vec::new();
        collect(self, &mut out);
        out
    }

    /// The number of *navigational* steps (ignoring predicates); the paper's
    /// automata have one navigational state per step.
    pub fn navigational_len(&self) -> usize {
        self.steps.len()
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            match step.axis {
                Axis::Child => {
                    f.write_str("/")?;
                }
                Axis::Descendant => f.write_str("//")?,
            }
            // For relative display the very first child-axis slash is kept:
            // the canonical form of all SDDS paths is absolute-looking.
            let _ = i;
            match &step.test {
                NodeTest::Name(n) => f.write_str(n)?,
                NodeTest::Wildcard => f.write_str("*")?,
            }
            for p in &step.predicates {
                f.write_str("[")?;
                match &p.target {
                    PredicateTarget::Path(rel) => {
                        // Relative paths are displayed without a leading slash.
                        let s = rel.to_string();
                        f.write_str(s.strip_prefix('/').unwrap_or(&s))?;
                    }
                    PredicateTarget::Attribute(a) => write!(f, "@{a}")?,
                    PredicateTarget::PathAttribute(rel, a) => {
                        let s = rel.to_string();
                        write!(f, "{}/@{a}", s.strip_prefix('/').unwrap_or(&s))?;
                    }
                    PredicateTarget::SelfText => f.write_str(".")?,
                }
                if let Some((op, lit)) = &p.condition {
                    write!(f, " {op} \"{lit}\"")?;
                }
                f.write_str("]")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_test_matching() {
        assert!(NodeTest::Wildcard.matches("anything"));
        assert!(NodeTest::Name("a".into()).matches("a"));
        assert!(!NodeTest::Name("a".into()).matches("b"));
        assert_eq!(NodeTest::Name("a".into()).name(), Some("a"));
        assert_eq!(NodeTest::Wildcard.name(), None);
    }

    #[test]
    fn comparison_numeric_and_string() {
        assert!(Comparison::Lt.compare("9", "10"));
        assert!(!Comparison::Lt.compare("9a", "10a")); // string comparison
        assert!(Comparison::Eq.compare("3.0", "3"));
        assert!(Comparison::Ne.compare("a", "b"));
        assert!(Comparison::Ge.compare("10", "10"));
        assert!(Comparison::Gt.compare("z", "a"));
        assert!(Comparison::Le.compare("5", "5.5"));
    }

    #[test]
    fn path_introspection() {
        let p = Path::new(vec![
            Step::child("a"),
            Step::descendant("b"),
            Step::any_child(),
        ]);
        assert_eq!(p.len(), 3);
        assert!(p.has_recursion_or_wildcard());
        assert!(!p.has_predicates());
        assert_eq!(p.mentioned_names(), vec!["a", "b"]);
        let simple = Path::new(vec![Step::child("a"), Step::child("b")]);
        assert!(!simple.has_recursion_or_wildcard());
    }

    #[test]
    fn display_roundtrips_shape() {
        let mut step_b = Step::descendant("b");
        step_b.predicates.push(Predicate {
            target: PredicateTarget::Path(Path::new(vec![Step::child("c")])),
            condition: None,
        });
        step_b.predicates.push(Predicate {
            target: PredicateTarget::Attribute("kind".into()),
            condition: Some((Comparison::Eq, "x".into())),
        });
        let p = Path::new(vec![Step::child("a"), step_b, Step::child("d")]);
        assert_eq!(p.to_string(), "/a//b[c][@kind = \"x\"]/d");
    }

    #[test]
    fn mentioned_names_includes_predicate_paths() {
        let mut step = Step::child("a");
        step.predicates.push(Predicate {
            target: PredicateTarget::PathAttribute(
                Path::new(vec![Step::child("x"), Step::child("y")]),
                "id".into(),
            ),
            condition: None,
        });
        let p = Path::new(vec![step]);
        assert_eq!(p.mentioned_names(), vec!["a", "x", "y"]);
        assert!(p.has_predicates());
    }
}
