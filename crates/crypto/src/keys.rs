//! Key material and the key ring held in the SOE's secure stable storage.
//!
//! "Access control policies as well as the key(s) required to decrypt the
//! document can be either permanently hosted by the SOE, refreshed or
//! downloaded via a secure channel" (§2.1). The [`KeyRing`] models the small
//! secure stable memory of the card dedicated to secrets: a bounded set of
//! named symmetric keys, from which per-document and per-purpose keys are
//! derived deterministically.

use std::collections::BTreeMap;

use crate::error::CryptoError;
use crate::hmac::derive_key;

/// Identifier of a key inside a [`KeyRing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyId(pub u32);

/// A 128-bit symmetric secret.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey {
    bytes: [u8; 16],
}

// taint: redacted — prints a fixed placeholder, never the key bytes.
impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SecretKey(<redacted>)")
    }
}

impl SecretKey {
    /// Wraps raw key bytes.
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        SecretKey { bytes }
    }

    /// Derives a key deterministically from a passphrase-like secret and a
    /// label. Used by the simulated PKI to agree on community keys.
    // taint: source — turns a passphrase secret into usable key material.
    pub fn derive(master: &[u8], label: &str) -> Self {
        let material = derive_key(master, label, 16);
        let mut bytes = [0u8; 16];
        bytes.copy_from_slice(&material);
        SecretKey { bytes }
    }

    /// Returns the raw bytes (only the crypto layer should need them).
    // taint: source — the raw key bytes; every caller is a cipher or MAC
    // primitive in this crate or a key-wrapping boundary fn.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.bytes
    }

    /// Derives a sub-key for a specific purpose (e.g. `"enc"` vs `"mac"`).
    pub fn subkey(&self, purpose: &str) -> SecretKey {
        SecretKey::derive(&self.bytes, purpose)
    }
}

/// The bounded key store of the SOE.
// taint: redacted — the derived impl shows key ids and capacity only;
// SecretKey's own Debug redacts the bytes.
#[derive(Debug, Default)]
pub struct KeyRing {
    keys: BTreeMap<KeyId, SecretKey>,
    capacity: Option<usize>,
}

impl KeyRing {
    /// Creates an unbounded key ring (used by servers and test fixtures).
    pub fn new() -> Self {
        KeyRing::default()
    }

    /// Creates a key ring bounded to `capacity` keys, mimicking the card's
    /// limited secure stable memory.
    pub fn with_capacity(capacity: usize) -> Self {
        KeyRing {
            keys: BTreeMap::new(),
            capacity: Some(capacity),
        }
    }

    /// Installs or replaces a key. Returns an error if the ring is full and
    /// the key id is new.
    pub fn install(&mut self, id: KeyId, key: SecretKey) -> Result<(), CryptoError> {
        if let Some(cap) = self.capacity {
            if !self.keys.contains_key(&id) && self.keys.len() >= cap {
                return Err(CryptoError::UnknownKey { key_id: id.0 });
            }
        }
        self.keys.insert(id, key);
        Ok(())
    }

    /// Removes a key (e.g. when a user is revoked from a community).
    pub fn revoke(&mut self, id: KeyId) -> bool {
        self.keys.remove(&id).is_some()
    }

    /// Fetches a key.
    pub fn get(&self, id: KeyId) -> Result<&SecretKey, CryptoError> {
        self.keys
            .get(&id)
            .ok_or(CryptoError::UnknownKey { key_id: id.0 })
    }

    /// True if the key is present.
    pub fn contains(&self, id: KeyId) -> bool {
        self.keys.contains_key(&id)
    }

    /// Number of installed keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if no key is installed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Bytes of secure stable storage consumed by the ring (16 bytes per key
    /// plus a 4-byte id), used by the card's EEPROM budget accounting.
    pub fn storage_bytes(&self) -> usize {
        self.keys.len() * (16 + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_label_dependent() {
        let a = SecretKey::derive(b"community-secret", "doc");
        let b = SecretKey::derive(b"community-secret", "doc");
        let c = SecretKey::derive(b"community-secret", "rules");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a.subkey("enc"), a.subkey("mac"));
        assert_eq!(a.subkey("enc"), b.subkey("enc"));
    }

    #[test]
    fn debug_never_prints_key_bytes() {
        let k = SecretKey::from_bytes([0xEE; 16]);
        assert!(!format!("{k:?}").contains("238"));
        assert!(format!("{k:?}").contains("redacted"));
    }

    #[test]
    fn ring_install_get_revoke() {
        let mut ring = KeyRing::new();
        assert!(ring.is_empty());
        ring.install(KeyId(1), SecretKey::from_bytes([1; 16]))
            .unwrap();
        ring.install(KeyId(2), SecretKey::from_bytes([2; 16]))
            .unwrap();
        assert_eq!(ring.len(), 2);
        assert!(ring.contains(KeyId(1)));
        assert_eq!(ring.get(KeyId(2)).unwrap().as_bytes()[0], 2);
        assert!(matches!(
            ring.get(KeyId(3)),
            Err(CryptoError::UnknownKey { key_id: 3 })
        ));
        assert!(ring.revoke(KeyId(1)));
        assert!(!ring.revoke(KeyId(1)));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.storage_bytes(), 20);
    }

    #[test]
    fn bounded_ring_enforces_capacity() {
        let mut ring = KeyRing::with_capacity(2);
        ring.install(KeyId(1), SecretKey::from_bytes([1; 16]))
            .unwrap();
        ring.install(KeyId(2), SecretKey::from_bytes([2; 16]))
            .unwrap();
        assert!(ring
            .install(KeyId(3), SecretKey::from_bytes([3; 16]))
            .is_err());
        // Replacing an existing key is always allowed.
        ring.install(KeyId(2), SecretKey::from_bytes([9; 16]))
            .unwrap();
        assert_eq!(ring.get(KeyId(2)).unwrap().as_bytes()[0], 9);
    }
}
