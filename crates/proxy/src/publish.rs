//! Publisher side of push-based selective dissemination (demo application 2,
//! experiment E6).
//!
//! The publisher turns each stream item (a small XML fragment: title, rating,
//! channel, payload) into an independent secure document and broadcasts it to
//! every subscriber over an unsecured channel. Subscribers cannot choose what
//! they receive — selection happens in their SOE, which evaluates the
//! subscriber-specific access rules (e.g. parental-control rules on the
//! rating) and delivers only the authorized part, in a streaming fashion
//! compatible with the real-time requirement of the scenario.
//!
//! This module lives on the **trusted** side of the architecture: the channel
//! holds the community key and sees the cleartext stream. What crosses the
//! trust boundary is only the encrypted [`StreamItem`] — the untrusted DSP
//! fan-out ([`sdds_dsp::FanOutDisseminator`]) never handles anything else,
//! and the `sdds-lint` taint analyzer proves it stays that way.

use sdds_sync::sync::Arc;

use sdds_core::secdoc::SecureDocumentBuilder;
use sdds_core::skipindex::encode::EncoderConfig;
use sdds_crypto::SecretKey;
use sdds_dsp::StreamItem;
use sdds_xml::{Document, NodeId};

/// A push channel: publisher side.
#[derive(Debug)]
pub struct DisseminationChannel {
    name: String,
    key: SecretKey,
    chunk_size: usize,
    encoder: EncoderConfig,
    next_sequence: u64,
    /// Published history, reference counted so fan-out mailboxes can share
    /// the very allocation the publisher keeps (one ciphertext in memory per
    /// item, however many subscribers hold it).
    published: Vec<Arc<StreamItem>>,
}

impl DisseminationChannel {
    /// Creates a channel encrypted under `key`.
    pub fn new(name: impl Into<String>, key: SecretKey) -> Self {
        DisseminationChannel {
            name: name.into(),
            key,
            chunk_size: 256,
            encoder: EncoderConfig {
                // Items are small; index even small subtrees so the SOE can
                // skip the (comparatively large) payload of filtered items.
                min_index_bytes: 32,
                ..EncoderConfig::default()
            },
            next_sequence: 0,
            published: Vec::new(),
        }
    }

    /// Channel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Key the subscribers' SOEs must hold.
    pub fn key(&self) -> &SecretKey {
        &self.key
    }

    /// Publishes one item. `item_root` must be an element of `catalog` (an
    /// item is re-packaged as a standalone single-item document).
    pub fn publish(&mut self, catalog: &Document, item_root: NodeId) -> Arc<StreamItem> {
        let events = catalog.subtree_events(item_root);
        // lint: infallible — `subtree_events` of a parsed document always
        // yields a balanced, single-rooted event stream.
        let item_doc = Document::from_events(&events).expect("subtree is well formed");
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        let doc_id = format!("{}#{}", self.name, sequence);
        let secure = SecureDocumentBuilder::new(doc_id, self.key.clone())
            .chunk_size(self.chunk_size)
            .encoder_config(self.encoder)
            .build(&item_doc);
        let plaintext_len = item_doc.to_xml().len();
        let item = Arc::new(StreamItem {
            sequence,
            document: secure,
            plaintext_len,
        });
        self.published.push(Arc::clone(&item));
        item
    }

    /// Publishes every element child of the root of `stream_doc` (convenience
    /// for the generators, whose stream documents are `<stream><item/>...`).
    pub fn publish_all(&mut self, stream_doc: &Document) -> usize {
        let Some(root) = stream_doc.root() else {
            return 0;
        };
        let items: Vec<NodeId> = stream_doc.element_children(root).collect();
        for item in &items {
            self.publish(stream_doc, *item);
        }
        items.len()
    }

    /// Items published so far (what a late subscriber would replay).
    pub fn published(&self) -> &[Arc<StreamItem>] {
        &self.published
    }

    /// Total ciphertext bytes broadcast.
    pub fn broadcast_bytes(&self) -> usize {
        self.published
            .iter()
            .map(|i| i.document.ciphertext_len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_core::conflict::AccessPolicy;
    use sdds_core::engine::{evaluate_secure_document, EngineConfig};
    use sdds_core::evaluator::EvaluatorConfig;
    use sdds_core::rule::RuleSet;
    use sdds_xml::generator::{self, GeneratorConfig, StreamProfile};
    use sdds_xml::writer;

    #[test]
    fn published_items_are_individually_decodable_by_subscribers() {
        let key = SecretKey::derive(b"broadcast", "channel-1");
        let mut channel = DisseminationChannel::new("news-feed", key.clone());
        let stream = generator::stream(
            &StreamProfile {
                items: 10,
                ..StreamProfile::default()
            },
            &GeneratorConfig::default(),
        );
        let published = channel.publish_all(&stream);
        assert_eq!(published, 10);
        assert_eq!(channel.published().len(), 10);
        assert!(channel.broadcast_bytes() > 0);
        assert_eq!(channel.name(), "news-feed");

        // A parental-control subscriber: items rated above 12 are filtered out
        // inside the child's SOE, everything else is delivered.
        let rules = RuleSet::parse("-, child, //item[rating > 12]").unwrap();
        let mut allowed = 0usize;
        let mut blocked = 0usize;
        for item in channel.published() {
            let config = EngineConfig::new(
                EvaluatorConfig::new(rules.clone(), "child").with_policy(AccessPolicy::open()),
            );
            let (view, stats) =
                evaluate_secure_document(&item.document, channel.key(), config).unwrap();
            let text = writer::to_string(&view);
            if text.is_empty() {
                blocked += 1;
                // Blocked items still never reveal their payload.
                assert!(!text.contains("payload"));
            } else {
                allowed += 1;
                assert!(text.contains("<title>"));
            }
            assert!(stats.ledger.bytes_decrypted > 0);
        }
        assert!(allowed > 0, "some items should pass the filter");
        assert!(blocked > 0, "some items should be blocked");
        assert_eq!(allowed + blocked, 10);
    }

    #[test]
    fn sequence_numbers_are_monotonic() {
        let key = SecretKey::derive(b"broadcast", "c");
        let mut channel = DisseminationChannel::new("c", key);
        let stream = generator::stream(
            &StreamProfile {
                items: 3,
                ..StreamProfile::default()
            },
            &GeneratorConfig::default(),
        );
        channel.publish_all(&stream);
        let seqs: Vec<u64> = channel.published().iter().map(|i| i.sequence).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert!(channel.published()[0].plaintext_len > 0);
        assert!(channel.published()[0]
            .document
            .header
            .doc_id
            .starts_with("c#"));
    }
}
