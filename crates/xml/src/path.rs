//! Element-path helpers shared by tests, oracles and the generators.
//!
//! A "simple path" is the sequence of element names from the root down to a
//! node, e.g. `["hospital", "patient", "diagnosis"]`. It is a convenient
//! notation to compare the output of the streaming engine with tree oracles.

use crate::event::Event;

/// A path of element names from the root (inclusive) to a node (inclusive).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SimplePath(pub Vec<String>);

impl SimplePath {
    /// Creates a path from name segments.
    pub fn new<I, S>(segments: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        SimplePath(segments.into_iter().map(Into::into).collect())
    }

    /// Parses a `/`-separated path, ignoring a leading slash.
    pub fn parse(text: &str) -> Self {
        SimplePath(
            text.split('/')
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect(),
        )
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty path.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Last segment, if any.
    pub fn leaf(&self) -> Option<&str> {
        self.0.last().map(String::as_str)
    }

    /// True if `self` is a prefix of `other` (ancestor-or-self relation).
    pub fn is_prefix_of(&self, other: &SimplePath) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// Renders as `/a/b/c`.
    pub fn to_string_slashed(&self) -> String {
        let mut s = String::new();
        for seg in &self.0 {
            s.push('/');
            s.push_str(seg);
        }
        if s.is_empty() {
            s.push('/');
        }
        s
    }
}

/// Collects the simple paths of every `Open` event in a stream, in document
/// order. Useful to compare authorized views against oracles.
pub fn open_paths(events: &[Event]) -> Vec<SimplePath> {
    let mut out = Vec::new();
    let mut stack: Vec<String> = Vec::new();
    for ev in events {
        match ev {
            Event::Open { name, .. } => {
                stack.push(name.clone());
                out.push(SimplePath(stack.clone()));
            }
            Event::Close(_) => {
                stack.pop();
            }
            Event::Text(_) => {}
        }
    }
    out
}

/// Collects `(path, text)` pairs for every text event in a stream.
pub fn text_by_path(events: &[Event]) -> Vec<(SimplePath, String)> {
    let mut out = Vec::new();
    let mut stack: Vec<String> = Vec::new();
    for ev in events {
        match ev {
            Event::Open { name, .. } => stack.push(name.clone()),
            Event::Close(_) => {
                stack.pop();
            }
            Event::Text(t) => out.push((SimplePath(stack.clone()), t.clone())),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::Parser;

    #[test]
    fn parse_and_render() {
        let p = SimplePath::parse("/a/b/c");
        assert_eq!(p.len(), 3);
        assert_eq!(p.leaf(), Some("c"));
        assert_eq!(p.to_string_slashed(), "/a/b/c");
        assert_eq!(SimplePath::parse("a/b"), SimplePath::new(["a", "b"]));
        assert_eq!(SimplePath::parse("").to_string_slashed(), "/");
        assert!(SimplePath::parse("").is_empty());
    }

    #[test]
    fn prefix_relation() {
        let a = SimplePath::parse("/a/b");
        let b = SimplePath::parse("/a/b/c");
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(a.is_prefix_of(&a));
        assert!(SimplePath::default().is_prefix_of(&a));
    }

    #[test]
    fn open_paths_follow_document_order() {
        let events = Parser::parse_all("<a><b><c/></b><d>t</d></a>").unwrap();
        let paths = open_paths(&events);
        assert_eq!(
            paths,
            vec![
                SimplePath::parse("/a"),
                SimplePath::parse("/a/b"),
                SimplePath::parse("/a/b/c"),
                SimplePath::parse("/a/d"),
            ]
        );
        let texts = text_by_path(&events);
        assert_eq!(texts, vec![(SimplePath::parse("/a/d"), "t".to_owned())]);
    }
}
