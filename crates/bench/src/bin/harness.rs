//! Prints, for every experiment E1–E9 of EXPERIMENTS.md plus the E10
//! multi-client scaling experiment, the table or series the paper's
//! evaluation corresponds to.
//!
//! Run with: `cargo run -p sdds-bench --bin harness --release`
//!
//! With `--json <path>` the harness additionally writes every metric as a flat
//! JSON object (`{"schema": "...", "metrics": {"e1.rules_64.events_per_s":
//! ...}}`), one metric per line. `scripts/bench_gate.sh` diffs that file
//! against the committed `BENCH_baseline.json` to catch performance
//! regressions in CI.

use std::time::Instant;

use sdds::apps::dissem::DisseminationApp;
use sdds_bench::workloads;
use sdds_card::{CardProfile, CostModel};
use sdds_core::baseline::{DomBaseline, StaticEncryptionScheme};
use sdds_core::conflict::AccessPolicy;
use sdds_core::evaluator::{EvaluatorConfig, StreamingEvaluator};
use sdds_core::rule::{RuleSet, Sign, Subject};
use sdds_core::secdoc::SecureDocumentBuilder;
use sdds_core::skipindex::encode::{DocumentEncoder, EncoderConfig};
use sdds_xml::generator::{self, Corpus, GeneratorConfig};
use sdds_xml::stats::DocStats;

fn banner(id: &str, title: &str) {
    println!("\n==================================================================");
    println!("{id} — {title}");
    println!("==================================================================");
}

/// Flat metric collector backing the `--json` report. Keys are dotted,
/// stable identifiers (`e1.rules_64.events_per_s`); values are finite numbers.
#[derive(Debug, Default)]
struct Report {
    metrics: Vec<(String, f64)>,
}

impl Report {
    fn put(&mut self, key: impl Into<String>, value: f64) {
        self.metrics.push((key.into(), value));
    }

    /// Renders the report as JSON, one metric per line (trivially greppable by
    /// the shell-side bench gate, still valid JSON for everything else).
    fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"sdds-bench-v1\",\n  \"metrics\": {\n");
        for (i, (key, value)) in self.metrics.iter().enumerate() {
            let sep = if i + 1 < self.metrics.len() { "," } else { "" };
            let rendered = if value.fract() == 0.0 && value.abs() < 1e15 {
                format!("{}", *value as i64)
            } else {
                format!("{value:.4}")
            };
            out.push_str(&format!("    \"{key}\": {rendered}{sep}\n"));
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// Repetitions per E1 configuration: the best run is reported so that the
/// bench-regression gate compares capability, not scheduler noise.
const E1_REPS: usize = 3;

fn e1_rules_scaling(report: &mut Report) {
    banner("E1", "streaming evaluation cost vs. number of access rules");
    let doc = workloads::hospital(4_000);
    let events = doc.to_events();
    println!("document: {}", DocStats::from_events(&events).summary());
    println!(
        "{:>8} {:>14} {:>16} {:>14}",
        "#rules", "wall time (ms)", "events/s", "peak RAM (B)"
    );
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let rules = workloads::rule_pool(n);
        let config = EvaluatorConfig::new(rules, "subject");
        let mut best = f64::INFINITY;
        let mut peak_ram = 0usize;
        for _ in 0..E1_REPS {
            let start = Instant::now();
            let (_, stats) = StreamingEvaluator::evaluate_all(&config, &events).unwrap();
            best = best.min(start.elapsed().as_secs_f64());
            peak_ram = stats.peak_ram_bytes();
        }
        let events_per_s = events.len() as f64 / best;
        println!(
            "{:>8} {:>14.2} {:>16.0} {:>14}",
            n,
            best * 1e3,
            events_per_s,
            peak_ram
        );
        report.put(format!("e1.rules_{n}.events_per_s"), events_per_s.round());
        report.put(format!("e1.rules_{n}.peak_ram_bytes"), peak_ram as f64);
    }
}

fn e2_skip_index(report: &mut Report) {
    banner(
        "E2",
        "skip index: transferred/decrypted volume, with vs. without",
    );
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "elements", "subject", "plain (B)", "no-index (B)", "index (B)", "saving", "egate (s)"
    );
    for elements in [1_000usize, 4_000, 12_000] {
        let doc = workloads::hospital(elements);
        let secure = workloads::secure(&doc, 128, 32);
        for subject in ["doctor", "secretary"] {
            let with =
                workloads::run_secure(&secure, &workloads::medical_rules(), subject, None, true);
            let without =
                workloads::run_secure(&secure, &workloads::medical_rules(), subject, None, false);
            let saving = 1.0
                - with.ledger.bytes_decrypted as f64 / without.ledger.bytes_decrypted.max(1) as f64;
            println!(
                "{:>10} {:>10} {:>12} {:>12} {:>10} {:>11.0}% {:>12.1}",
                elements,
                subject,
                secure.header.plaintext_len,
                without.ledger.bytes_decrypted,
                with.ledger.bytes_decrypted,
                saving * 100.0,
                workloads::egate_seconds(&with),
            );
            let prefix = format!("e2.n{elements}.{subject}");
            report.put(
                format!("{prefix}.decrypted_bytes_no_index"),
                without.ledger.bytes_decrypted as f64,
            );
            report.put(
                format!("{prefix}.decrypted_bytes_with_index"),
                with.ledger.bytes_decrypted as f64,
            );
            report.put(format!("{prefix}.saving_pct"), (saving * 100.0).round());
        }
    }
}

fn e3_index_overhead(report: &mut Report) {
    banner(
        "E3",
        "skip index compactness (overhead vs. recursive compression)",
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "corpus", "tokens (B)", "summaries", "index (B)", "overhead", "recursive"
    );
    for corpus in Corpus::all() {
        let doc = corpus.generate(4_000, &GeneratorConfig::default());
        for recursive in [true, false] {
            let enc = DocumentEncoder::new(EncoderConfig {
                min_index_bytes: 32,
                recursive_bitmaps: recursive,
                ..EncoderConfig::default()
            })
            .encode(&doc);
            println!(
                "{:>10} {:>12} {:>12} {:>12} {:>11.2}% {:>10}",
                corpus.name(),
                enc.stats.token_bytes,
                enc.stats.summaries,
                enc.stats.index_bytes,
                enc.index_overhead() * 100.0,
                recursive
            );
            let mode = if recursive { "recursive" } else { "flat" };
            report.put(
                format!("e3.{}.{mode}.index_bytes", corpus.name()),
                enc.stats.index_bytes as f64,
            );
        }
    }
}

fn e4_ram_budget(report: &mut Report) {
    banner(
        "E4",
        "secure working memory vs. document depth and rule count (1 KiB budget)",
    );
    println!(
        "{:>8} {:>8} {:>16} {:>14}",
        "depth", "#rules", "peak RAM (B)", "fits e-gate?"
    );
    let budget = CardProfile::egate().ram_bytes;
    for depth in [4usize, 8, 16, 32, 64] {
        for n_rules in [4usize, 16, 64] {
            let doc = generator::deep_chain(depth, &GeneratorConfig::default());
            let rules = workloads::rule_pool(n_rules);
            let config = EvaluatorConfig::new(rules, "subject");
            let events = doc.to_events();
            let (_, stats) = StreamingEvaluator::evaluate_all(&config, &events).unwrap();
            let peak = stats.peak_ram_bytes();
            println!(
                "{:>8} {:>8} {:>16} {:>14}",
                depth,
                n_rules,
                peak,
                if peak <= budget { "yes" } else { "NO" }
            );
            report.put(
                format!("e4.depth_{depth}.rules_{n_rules}.peak_ram_bytes"),
                peak as f64,
            );
        }
    }
}

fn e5_latency_breakdown(report: &mut Report) {
    banner("E5", "pull-mode latency breakdown on the e-gate cost model");
    for corpus in [Corpus::Hospital, Corpus::Community, Corpus::Catalog] {
        let doc = corpus.generate(2_000, &GeneratorConfig::default());
        let secure = SecureDocumentBuilder::new("bench-doc", workloads::bench_key())
            .chunk_size(128)
            .build(&doc);
        let rules = match corpus {
            Corpus::Hospital => workloads::medical_rules(),
            _ => RuleSet::parse("+, secretary, //name\n+, secretary, //title").unwrap(),
        };
        let stats = workloads::run_secure(&secure, &rules, "secretary", None, true);
        let breakdown = stats.ledger.breakdown(&CostModel::egate());
        println!("{:>10}: {}", corpus.name(), breakdown.summary_ms());
        let modern = stats.ledger.breakdown(&CostModel::modern_secure_element());
        println!(
            "{:>10}  (modern secure element: total {:.1} ms)",
            "",
            modern.total().as_secs_f64() * 1e3
        );
        report.put(
            format!("e5.{}.egate_total_ms", corpus.name()),
            (breakdown.total().as_secs_f64() * 1e3).round(),
        );
    }
}

fn e6_dissemination(report: &mut Report) {
    banner(
        "E6",
        "push-mode selective dissemination throughput (parental control)",
    );
    let stream = workloads::stream(30);
    let (rules, policy) = workloads::parental_rules();
    let app = DisseminationApp::new(
        b"bench",
        &stream,
        rules,
        CardProfile::modern_secure_element(),
    );
    let dissem = app.consume_in_process("child", policy).unwrap();
    println!(
        "items: {} delivered / {} blocked; worst per-item latency {:.1} ms; total {:.2} s; skipped {} B",
        dissem.items_delivered,
        dissem.items_blocked,
        dissem.max_item_latency.as_secs_f64() * 1e3,
        dissem.total_latency.as_secs_f64(),
        dissem.bytes_skipped
    );
    for period_ms in [500u64, 1000, 2000] {
        println!(
            "  sustains 1 item / {period_ms} ms on the e-gate model: {}",
            dissem.meets_real_time(std::time::Duration::from_millis(period_ms))
        );
    }
    report.put("e6.items_delivered", dissem.items_delivered as f64);
    report.put("e6.items_blocked", dissem.items_blocked as f64);
    report.put(
        "e6.max_item_latency_ms",
        (dissem.max_item_latency.as_secs_f64() * 1e3).round(),
    );
}

fn e7_dynamic_rules(report: &mut Report) {
    banner(
        "E7",
        "cost of a policy change: SOE approach vs. server-side static encryption",
    );
    let doc = workloads::hospital(2_000);
    let policy = AccessPolicy::paper();
    println!(
        "{:>28} {:>18} {:>14} {:>12}",
        "policy change", "re-encrypted (B)", "keys redistrib.", "SOE cost (B)"
    );
    type RuleChange<'a> = (&'a str, Box<dyn Fn(&mut RuleSet)>);
    let changes: Vec<RuleChange> = vec![
        (
            "grant nurse //patient/name",
            Box::new(|r: &mut RuleSet| {
                r.push(Sign::Permit, "nurse", "//patient/name").unwrap();
            }),
        ),
        (
            "revoke secretary address",
            Box::new(|r: &mut RuleSet| {
                r.push(Sign::Deny, "secretary", "//patient/address")
                    .unwrap();
            }),
        ),
        (
            "grant researcher //acts",
            Box::new(|r: &mut RuleSet| {
                r.push(Sign::Permit, "researcher", "//acts").unwrap();
            }),
        ),
    ];
    let mut rules = workloads::medical_rules();
    let mut scheme = StaticEncryptionScheme::build(&doc, &rules, &policy);
    for (i, (label, change)) in changes.into_iter().enumerate() {
        change(&mut rules);
        let cost = scheme.apply_rule_change(&doc, &rules, &policy);
        // The SOE approach only ships a new protected rule set to the subject.
        let soe_cost = rules.encode().len() + 64;
        println!(
            "{:>28} {:>18} {:>14} {:>12}",
            label, cost.bytes_reencrypted, cost.keys_redistributed, soe_cost
        );
        report.put(
            format!("e7.change_{i}.bytes_reencrypted"),
            cost.bytes_reencrypted as f64,
        );
        report.put(format!("e7.change_{i}.soe_cost_bytes"), soe_cost as f64);
    }
    println!(
        "(static scheme: {} equivalence classes; doctor holds {} keys)",
        scheme.class_count(),
        scheme.keys_held_by(&Subject::new("doctor"))
    );

    // On-card side of a policy change: the combined dispatch automaton must
    // rebuild (and remap the live runs) while a document is half-processed.
    let events = doc.to_events();
    let config = EvaluatorConfig::new(workloads::medical_rules(), "doctor");
    let mut evaluator = StreamingEvaluator::new(&config).unwrap();
    for ev in &events[..events.len() / 2] {
        evaluator.push(ev);
    }
    let grant = sdds_core::rule::AccessRule::permit(999, "doctor", "//patient/weight")
        .expect("static rule parses");
    let cycles = 100usize;
    let start = Instant::now();
    for _ in 0..cycles {
        evaluator.add_rule(&grant).expect("rule compiles");
        assert!(evaluator.remove_rule(sdds_core::rule::RuleId(999)));
    }
    let per_change_us = start.elapsed().as_secs_f64() * 1e6 / (cycles as f64 * 2.0);
    println!("mid-stream rule change (rebuild + run remap): {per_change_us:.1} µs/change");
    report.put("e7.midstream_rebuild_us", per_change_us.round().max(1.0));
}

fn e8_query_mix(report: &mut Report) {
    banner(
        "E8",
        "query + access control: fetched volume per query selectivity",
    );
    let doc = workloads::hospital(4_000);
    let secure = workloads::secure(&doc, 128, 32);
    println!(
        "{:>34} {:>12} {:>12} {:>12}",
        "query (subject = doctor)", "fetched (B)", "skipped (B)", "egate (s)"
    );
    for (i, query) in [
        "//patient",
        "//patient/name",
        "//acts/act[@type = \"surgery\"]",
        "//patient[@id = \"P00003\"]",
    ]
    .into_iter()
    .enumerate()
    {
        let stats = workloads::run_secure(
            &secure,
            &workloads::medical_rules(),
            "doctor",
            Some(query),
            true,
        );
        println!(
            "{:>34} {:>12} {:>12} {:>12.1}",
            query,
            stats.ledger.bytes_decrypted,
            stats.ledger.bytes_skipped,
            workloads::egate_seconds(&stats)
        );
        report.put(
            format!("e8.query_{i}.decrypted_bytes"),
            stats.ledger.bytes_decrypted as f64,
        );
    }
}

fn e9_streaming_vs_dom(report: &mut Report) {
    banner(
        "E9",
        "streaming SOE engine vs. DOM materialisation baseline",
    );
    println!(
        "{:>10} {:>18} {:>18} {:>16} {:>16}",
        "elements", "SOE peak RAM (B)", "DOM footprint (B)", "SOE decrypt (B)", "DOM decrypt (B)"
    );
    for elements in [500usize, 2_000, 8_000] {
        let doc = workloads::hospital(elements);
        let secure = workloads::secure(&doc, 128, 32);
        let rules = workloads::medical_rules();
        // Best-of-N timing, like E1: the gate compares capability, not noise.
        let mut soe_elapsed = f64::INFINITY;
        let mut soe = None;
        for _ in 0..E1_REPS {
            let start = Instant::now();
            soe = Some(workloads::run_secure(
                &secure,
                &rules,
                "secretary",
                None,
                true,
            ));
            soe_elapsed = soe_elapsed.min(start.elapsed().as_secs_f64());
        }
        let soe = soe.expect("E1_REPS >= 1");
        let dom = DomBaseline::run(
            &secure,
            &workloads::bench_key(),
            &rules,
            &Subject::new("secretary"),
            None,
            &AccessPolicy::paper(),
        )
        .unwrap();
        println!(
            "{:>10} {:>18} {:>18} {:>16} {:>16}",
            elements,
            soe.evaluator.map(|e| e.peak_ram_bytes()).unwrap_or(0),
            dom.materialized_bytes,
            soe.ledger.bytes_decrypted,
            dom.ledger.bytes_decrypted
        );
        let prefix = format!("e9.n{elements}");
        report.put(
            format!("{prefix}.soe_peak_ram_bytes"),
            soe.evaluator.map(|e| e.peak_ram_bytes()).unwrap_or(0) as f64,
        );
        report.put(
            format!("{prefix}.dom_footprint_bytes"),
            dom.materialized_bytes as f64,
        );
        report.put(
            format!("{prefix}.soe_events_per_s"),
            (soe.ledger.events_processed as f64 / soe_elapsed).round(),
        );
    }
    e9_zero_copy_serve(report);
}

/// Repetitions of the zero-copy serve loop; best run reported, like E1.
const E9_SERVE_REPS: usize = 3;
/// Chunk-serve events per zero-copy timing run.
const E9_SERVE_EVENTS: usize = 200_000;

/// Measures the DSP's raw chunk-serve throughput: each event hands out the
/// stored ciphertext as a refcount bump (`Arc<[u8]>`) plus an unserialised
/// Merkle proof, so the per-event cost must stay flat no matter how large
/// the chunks are. The bench gate pins this as
/// `e9.zero_copy.serve_events_per_s`.
fn e9_zero_copy_serve(report: &mut Report) {
    use sdds_dsp::ShardedStore;

    let doc = workloads::hospital(2_000);
    let secure = workloads::secure(&doc, 128, 32);
    let chunk_count = secure.header.chunk_count.max(1);
    let store = ShardedStore::new(4);
    store.put_document(secure);
    let revision = store
        .revision("bench-doc")
        .expect("the document was just stored");
    let mut best = f64::INFINITY;
    for _ in 0..E9_SERVE_REPS {
        let start = Instant::now();
        for event in 0..E9_SERVE_EVENTS {
            let index = (event as u32) % chunk_count;
            let (chunk, proof) = store
                .fetch_chunk_pinned("bench-doc", index, revision)
                .expect("stored chunk serves");
            std::hint::black_box((chunk.len(), proof.leaf_index));
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    let events_per_s = (E9_SERVE_EVENTS as f64 / best).round();
    println!(
        "{:>10} {:>24}",
        "zero-copy",
        format!("{events_per_s} serve events/s")
    );
    report.put("e9.zero_copy.serve_events_per_s", events_per_s);
}

fn e10_multi_client(report: &mut Report) {
    banner(
        "E10",
        "multi-client DSP service: aggregate throughput and latency vs shards",
    );
    println!(
        "{:>8} {:>7} {:>14} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "clients",
        "shards",
        "events/s",
        "makespan",
        "p50 (ms)",
        "p99 (ms)",
        "apdus saved",
        "wall (s)"
    );
    // Simulated (deterministic) metrics: byte/event counters × model rates.
    // The scheduler really multiplexes the sessions over worker threads; the
    // clock is the cost-model one, so the numbers are machine independent.
    let mut ratio_inputs: Vec<(usize, usize, f64)> = Vec::new();
    for clients in [1usize, 8, 64, 256] {
        for shards in [1usize, 16] {
            let outcome =
                workloads::multi_client(workloads::MultiClientConfig::new(clients, shards));
            let events_per_s = outcome.events_per_s();
            let p50 = outcome.latency_percentile(0.50);
            let p99 = outcome.latency_percentile(0.99);
            println!(
                "{:>8} {:>7} {:>14.0} {:>10.1}ms {:>10.2} {:>10.2} {:>12} {:>10.2}",
                clients,
                shards,
                events_per_s,
                outcome.makespan().as_secs_f64() * 1e3,
                p50.as_secs_f64() * 1e3,
                p99.as_secs_f64() * 1e3,
                outcome.apdus_saved,
                outcome.wall.as_secs_f64(),
            );
            let prefix = format!("e10.clients_{clients}.shards_{shards}");
            report.put(format!("{prefix}.events_per_s"), events_per_s.round());
            report.put(
                format!("{prefix}.p50_ms"),
                (p50.as_secs_f64() * 1e3 * 100.0).round() / 100.0,
            );
            report.put(
                format!("{prefix}.p99_ms"),
                (p99.as_secs_f64() * 1e3 * 100.0).round() / 100.0,
            );
            ratio_inputs.push((clients, shards, events_per_s));
        }
    }
    for clients in [64usize, 256] {
        let of = |shards: usize| {
            ratio_inputs
                .iter()
                .find(|(c, s, _)| *c == clients && *s == shards)
                .map(|(_, _, v)| *v)
                .unwrap_or(0.0)
        };
        let ratio = if of(1) > 0.0 { of(16) / of(1) } else { 0.0 };
        println!("  scaling @{clients} clients, 16 vs 1 shard: {ratio:.1}x");
        report.put(
            format!("e10.clients_{clients}.scaling_16v1"),
            (ratio * 10.0).round() / 10.0,
        );
    }

    // Hot-document scenario: every client hammers ONE document, so shard
    // count alone buys nothing — the single copy queues on its home shard.
    // Replication (`Publisher::builder().replicate(n)`) is the lever.
    println!("\n  hot document: 256 clients, one folder, 16 shards");
    println!(
        "{:>10} {:>14} {:>12} {:>10} {:>10}",
        "replicas", "events/s", "makespan", "p50 (ms)", "p99 (ms)"
    );
    let mut hot_rates: Vec<(usize, f64)> = Vec::new();
    for replicas in [1usize, 16] {
        let outcome = workloads::hot_document(workloads::HotDocumentConfig::new(256, 16, replicas));
        let events_per_s = outcome.events_per_s();
        println!(
            "{:>10} {:>14.0} {:>10.1}ms {:>10.2} {:>10.2}",
            replicas,
            events_per_s,
            outcome.makespan().as_secs_f64() * 1e3,
            outcome.latency_percentile(0.50).as_secs_f64() * 1e3,
            outcome.latency_percentile(0.99).as_secs_f64() * 1e3,
        );
        let prefix = format!("e10.hot.clients_256.replicas_{replicas}");
        report.put(format!("{prefix}.events_per_s"), events_per_s.round());
        report.put(
            format!("{prefix}.p99_ms"),
            (outcome.latency_percentile(0.99).as_secs_f64() * 1e3 * 100.0).round() / 100.0,
        );
        hot_rates.push((replicas, events_per_s));
    }
    let of = |replicas: usize| {
        hot_rates
            .iter()
            .find(|(r, _)| *r == replicas)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    let gain = if of(1) > 0.0 { of(16) / of(1) } else { 0.0 };
    println!("  replication gain @256 clients, 16 copies vs 1: {gain:.1}x");
    report.put(
        "e10.hot.clients_256.replication_gain".to_owned(),
        (gain * 10.0).round() / 10.0,
    );
}

fn e11_actor_scale(report: &mut Report) {
    banner(
        "E11",
        "actor engine vs thread scheduler: 1k-100k sessions per DSP",
    );
    println!(
        "{:>9} {:>8} {:>16} {:>12} {:>9} {:>9}",
        "sessions", "engine", "events/s", "dispatches", "p99 (ms)", "wall (s)"
    );
    // Both engines really run (completion is asserted); throughput and p99
    // are folded from the dispatch/batch counters on the simulated clock, so
    // the keys are machine independent and CI-gateable.
    for sessions in [1_000usize, 10_000, 100_000] {
        let outcome = workloads::actor_scale(workloads::ActorScaleConfig::new(sessions));
        for (engine, run) in [("thread", &outcome.thread), ("actor", &outcome.actor)] {
            println!(
                "{:>9} {:>8} {:>16.0} {:>12} {:>9.2} {:>9.2}",
                sessions,
                engine,
                run.events_per_s(),
                run.dispatches,
                run.p99.as_secs_f64() * 1e3,
                run.wall.as_secs_f64(),
            );
            let prefix = format!("e11.sessions_{sessions}.{engine}");
            report.put(format!("{prefix}.events_per_s"), run.events_per_s().round());
            report.put(
                format!("{prefix}.p99_ms"),
                (run.p99.as_secs_f64() * 1e3 * 100.0).round() / 100.0,
            );
        }
        let speedup = outcome.speedup();
        println!("  actor vs thread @{sessions} sessions: {speedup:.1}x");
        report.put(
            format!("e11.sessions_{sessions}.speedup_actor_v_thread"),
            (speedup * 10.0).round() / 10.0,
        );
    }
}

/// Runs the telemetry pass behind `--obs`: an E10 hot-document slice (shard
/// serving, thread scheduler and card-session telemetry come off the
/// service's own bundle) plus a standalone E11 slice (actor-engine telemetry
/// on a dedicated bundle), merged into one snapshot. Returns the JSON report:
/// the metric snapshot and the E10 service's flight-recorder dump.
fn obs_report() -> String {
    let (_, e10_snapshot, flight) =
        workloads::hot_document_observed(workloads::HotDocumentConfig::new(64, 16, 4));
    let e11_obs = sdds_dsp::DspObs::new(1);
    let _ =
        workloads::actor_scale_observed(workloads::ActorScaleConfig::new(1_000), Some(&e11_obs));
    let mut snapshot = e10_snapshot;
    snapshot.merge(&e11_obs.snapshot());
    format!(
        "{{\n\"schema\": \"sdds-obs-report-v1\",\n\"snapshot\": {},\n\"flight_recorder\": {}}}\n",
        snapshot.to_json(),
        flight
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut json_path: Option<String> = None;
    let mut obs_path: Option<String> = None;
    let mut obs_only = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                json_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                }));
            }
            "--obs" => {
                obs_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--obs requires a path argument");
                    std::process::exit(2);
                }));
            }
            "--obs-only" => {
                obs_only = true;
            }
            other => {
                eprintln!(
                    "unknown argument `{other}` (supported: --json <path>, --obs <path>, --obs-only)"
                );
                std::process::exit(2);
            }
        }
    }
    if obs_only && obs_path.is_none() {
        eprintln!("--obs-only requires --obs <path>");
        std::process::exit(2);
    }

    let start = Instant::now();
    if !obs_only {
        let mut report = Report::default();
        e1_rules_scaling(&mut report);
        e2_skip_index(&mut report);
        e3_index_overhead(&mut report);
        e4_ram_budget(&mut report);
        e5_latency_breakdown(&mut report);
        e6_dissemination(&mut report);
        e7_dynamic_rules(&mut report);
        e8_query_mix(&mut report);
        e9_streaming_vs_dom(&mut report);
        e10_multi_client(&mut report);
        e11_actor_scale(&mut report);
        println!(
            "\nharness completed in {:.1} s",
            start.elapsed().as_secs_f64()
        );
        if let Some(path) = json_path {
            std::fs::write(&path, report.to_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("metrics written to {path}");
        }
    }
    if let Some(path) = obs_path {
        std::fs::write(&path, obs_report()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("telemetry snapshot written to {path}");
    }
}
