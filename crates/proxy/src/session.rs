//! Steppable pull session against the shared multi-client DSP service — the
//! one pull-mode flow of the workspace.
//!
//! A whole pull session run in one blocking call is fine for one card but
//! hostile to multiplexing: a scheduler cannot interleave K cards if each one
//! insists on finishing its document first. [`CardSession`] is the Figure-1
//! flow cut into scheduler-sized steps: each [`Schedulable::step`] serves at
//! most `quantum` chunk requests, so the
//! [`sdds_dsp::service::SessionScheduler`] can round-robin many cards over
//! the shared, `Sync` [`DspService`] — and a single-user caller simply drives
//! the same session to completion with [`CardSession::run`] (or lets the
//! `sdds::Client` facade do it).
//!
//! Two deliberate design points:
//!
//! * the subject's protected rules are fetched **from the DSP** at session
//!   start (the paper stores them there precisely so any terminal can serve
//!   any card), so the rule-blob serving counters of the sharded store see
//!   realistic traffic;
//! * the chunk pushes of one step are also accounted on a
//!   [`BatchedChannel`]: the per-APDU latency is charged once per coalesced
//!   batch rather than once per fragment, which is what makes the simulated
//!   per-session latency of E10 reflect batched fan-out serving.

use sdds_sync::sync::Arc;
use std::time::Duration;

use sdds_card::apdu::{ins, Apdu};
use sdds_card::{BatchedChannel, CostModel};
use sdds_core::secdoc::DocumentHeader;
use sdds_crypto::merkle::MerkleProof;
use sdds_dsp::service::{Schedulable, StepOutcome};
use sdds_dsp::{DspService, SessionObs};

use crate::proxy::{ProxyError, Terminal};

/// Progress of a [`CardSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionPhase {
    /// Rules and header not fetched yet.
    NotStarted,
    /// Mid-document: the card keeps requesting chunks.
    Streaming,
    /// The view has been collected and the card session closed.
    Done,
    /// A step failed; the error is kept for the report.
    Failed,
}

/// One card pulling one document from the shared DSP service, in steps.
///
/// The session **pins the document revision** it sees at start: every
/// subsequent chunk request carries that revision, so a republish in the
/// middle of the pull surfaces as the typed
/// `CoreError::StaleRevision` (through [`CardSession::run`] /
/// [`CardSession::failure`]) instead of chunks of the new upload failing
/// Merkle verification against the old header.
pub struct CardSession {
    terminal: Terminal,
    service: Arc<DspService>,
    doc_id: String,
    phase: SessionPhase,
    batched: BatchedChannel,
    /// Upload revision pinned at session start (`None` before the first
    /// step).
    revision: Option<u64>,
    view: Option<String>,
    error: Option<String>,
    /// The typed error behind `error` (the scheduler transports only the
    /// message; direct drivers want the real thing).
    failure: Option<ProxyError>,
    /// Per-session route salt drawn from the service at connect time:
    /// identical requests from different sessions spread over a hot
    /// document's replicas (see `DspService::next_session_salt`).
    route_salt: u64,
    /// Card-session telemetry cells shared with the service's registry
    /// (APDU round-trips and wire bytes, counted per coalesced batch).
    obs: SessionObs,
}

impl std::fmt::Debug for CardSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CardSession")
            .field("subject", self.terminal.subject())
            .field("doc_id", &self.doc_id)
            .field("phase", &self.phase)
            .finish_non_exhaustive()
    }
}

impl CardSession {
    pub(crate) fn new(terminal: Terminal, service: Arc<DspService>, doc_id: String) -> Self {
        let channel = terminal.cost_model().channel;
        let route_salt = service.next_session_salt();
        let obs = service.obs().session();
        CardSession {
            terminal,
            service,
            doc_id,
            phase: SessionPhase::NotStarted,
            batched: BatchedChannel::new(channel),
            revision: None,
            view: None,
            error: None,
            failure: None,
            route_salt,
            obs,
        }
    }

    /// Document this session pulls.
    pub fn doc_id(&self) -> &str {
        &self.doc_id
    }

    /// Route salt this session carries on every fetch (distinct per session
    /// on one service, so replicated documents spread their load).
    pub fn route_salt(&self) -> u64 {
        self.route_salt
    }

    /// Upload revision this session pinned at start (`None` before the first
    /// step).
    pub fn revision(&self) -> Option<u64> {
        self.revision
    }

    /// The typed error a failed session retired with (the scheduler report
    /// carries only the message string; this keeps the real error, e.g.
    /// `CoreError::StaleRevision` after a mid-stream republish).
    pub fn failure(&self) -> Option<&ProxyError> {
        self.failure.as_ref()
    }

    /// The terminal (card ledger, session stats) backing this session.
    pub fn terminal(&self) -> &Terminal {
        &self.terminal
    }

    /// The authorized view, once the session is done.
    pub fn view(&self) -> Option<&str> {
        self.view.as_deref()
    }

    /// Error message if the session failed.
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Batched channel accounting of this session's chunk pushes.
    pub fn batched_channel(&self) -> &BatchedChannel {
        &self.batched
    }

    /// Simulated end-to-end latency of this session under `model`, with the
    /// channel charged at **batched** APDU rates: crypto and evaluation come
    /// from the card ledger, transfer time from the coalesced batches (which
    /// include the session-start rules blob and header shipment).
    pub fn simulated_latency(&self, model: &CostModel) -> Duration {
        let breakdown = self.terminal.card_ledger().breakdown(model);
        breakdown.decryption + breakdown.integrity + breakdown.evaluation + self.batched.elapsed()
    }

    /// Runs the session to completion in place (no scheduler), returning the
    /// view. The session — and through it the terminal with its cost ledger
    /// and the batched-channel accounting — stays available afterwards.
    pub fn run(&mut self) -> Result<&str, ProxyError> {
        loop {
            match Schedulable::step(self, usize::MAX) {
                Ok(StepOutcome::Pending) => continue,
                Ok(StepOutcome::Complete) => break,
                Err(message) => {
                    return Err(self.failure.take().unwrap_or(ProxyError::Protocol(message)))
                }
            }
        }
        // lint: infallible — the loop above only breaks on `Complete`, and
        // the completing step stores the view before reporting `Complete`.
        Ok(self.view.as_deref().expect("complete session has a view"))
    }

    /// Runs the session to completion in one call (no scheduler), consuming
    /// it and returning the view.
    pub fn run_to_completion(mut self) -> Result<String, ProxyError> {
        self.run()?;
        // lint: infallible — `run` returned `Ok`, so the view is stored.
        Ok(self.view.expect("complete session has a view"))
    }

    fn start(&mut self) -> Result<(), ProxyError> {
        // The header fetch pins the upload revision for the whole session:
        // every later request carries it, so a mid-pull republish becomes a
        // typed `StaleRevision`, never a Merkle mismatch.
        let pinned = self
            .service
            .fetch_header_pinned_salted(&self.doc_id, self.route_salt)?;
        let header: DocumentHeader = pinned.0;
        let revision = pinned.1;
        self.revision = Some(revision);
        // Protected rules travel through the untrusted DSP as an opaque blob;
        // the card authenticates them itself on PUT_RULES.
        let blob = self.service.fetch_rules_pinned_salted(
            &self.doc_id,
            self.terminal.subject().name(),
            revision,
            self.route_salt,
        )?;
        self.terminal.install_rules(&blob)?;
        let header_bytes = header.encode();
        self.terminal.open_card_session(&header_bytes)?;
        // The provisioning exchanges ride the first step's batch too, so the
        // simulated latency covers the whole session, not just the chunks
        // (responses are bare status words, 2 bytes each).
        self.batched.queue(blob.len(), 2);
        self.batched.queue(header_bytes.len(), 2);
        self.obs.record_exchange(blob.len(), 2);
        self.obs.record_exchange(header_bytes.len(), 2);
        self.phase = SessionPhase::Streaming;
        Ok(())
    }

    /// Serves up to `quantum` chunk requests; true when the document ended.
    fn stream(&mut self, quantum: usize) -> Result<bool, ProxyError> {
        for _ in 0..quantum {
            let Some(index) = self.terminal.next_chunk_request()? else {
                return Ok(true);
            };
            // lint: infallible — `start` pins the revision before entering
            // the `Streaming` phase that calls `stream`.
            let revision = self.revision.expect("streaming session pinned at start");
            let served = self.service.fetch_chunk_pinned_salted(
                &self.doc_id,
                index,
                revision,
                self.route_salt,
            )?;
            let chunk: Arc<[u8]> = served.0;
            let proof: MerkleProof = served.1;
            // alloc: amortized — the sibling path is ~33 bytes per tree level
            // (a handful of levels per document); the chunk itself is shared.
            let pushed = self.terminal.push_chunk(index, &chunk, &proof.encode())?;
            // The whole request rides the step's batch: the 5-byte
            // NEXT_REQUEST command and chunk payload out, the 4-byte index
            // answer and a status word back.
            self.batched.queue(pushed + 5, 6);
            self.obs.record_exchange(pushed + 5, 6);
        }
        Ok(false)
    }

    fn finish(&mut self) -> Result<(), ProxyError> {
        let view = self.terminal.collect_output()?;
        self.terminal.close_card_session()?;
        // The authorized view ships back over GET_OUTPUT responses, followed
        // by one bare CLOSE_SESSION exchange: the final batch carries them so
        // the simulated latency really covers the whole session.
        self.batched.queue(5, view.len() + 2);
        self.batched.queue(5, 2);
        self.obs.record_exchange(5, view.len() + 2);
        self.obs.record_exchange(5, 2);
        self.view = Some(view);
        self.phase = SessionPhase::Done;
        Ok(())
    }

    fn advance(&mut self, quantum: usize) -> Result<StepOutcome, ProxyError> {
        if self.phase == SessionPhase::NotStarted {
            self.start()?;
            return Ok(StepOutcome::Pending);
        }
        if self.stream(quantum)? {
            self.finish()?;
            return Ok(StepOutcome::Complete);
        }
        Ok(StepOutcome::Pending)
    }
}

impl Schedulable for CardSession {
    fn step(&mut self, quantum: usize) -> Result<StepOutcome, String> {
        if self.phase == SessionPhase::Done {
            return Ok(StepOutcome::Complete);
        }
        if self.phase == SessionPhase::Failed {
            // alloc: cold — failed-session error path.
            return Err(self.error.clone().unwrap_or_else(|| "failed".into()));
        }
        let result = self.advance(quantum);
        // Close the step's batch whatever happened: latency accounting must
        // not leak a partial batch into the next step.
        self.batched.flush();
        match result {
            Ok(outcome) => Ok(outcome),
            Err(e) => {
                // alloc: cold — failed-session error path.
                let message = format!("session `{}`: {e}", self.doc_id);
                self.phase = SessionPhase::Failed;
                // alloc: cold — failed-session error path.
                self.error = Some(message.clone());
                self.failure = Some(e);
                Err(message)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Terminal plumbing the stepped session needs.
// ---------------------------------------------------------------------------

impl Terminal {
    /// Connects this terminal to the shared multi-client DSP service for one
    /// document pull. The returned [`CardSession`] can be driven directly
    /// ([`CardSession::run_to_completion`]) or submitted to a
    /// [`sdds_dsp::service::SessionScheduler`] together with the sessions of
    /// other cards.
    ///
    /// The terminal must already hold its keys (see
    /// [`Terminal::install_key`]); the protected rules are fetched from the
    /// service at session start.
    pub fn connect_shared(
        self,
        service: Arc<DspService>,
        doc_id: impl Into<String>,
    ) -> CardSession {
        CardSession::new(self, service, doc_id.into())
    }

    /// Opens an evaluation session on the card for an encoded header.
    pub(crate) fn open_card_session(&mut self, header: &[u8]) -> Result<(), ProxyError> {
        let policy = u8::from(self.open_policy());
        self.runtime_mut().exchange_expect_ok(&Apdu::new(
            ins::OPEN_SESSION,
            0,
            policy,
            // alloc: startup — the header travels once per session, at open.
            header.to_vec(),
        )?)?;
        Ok(())
    }

    /// Asks the card which chunk it wants next; `None` when the document is
    /// fully processed.
    pub(crate) fn next_chunk_request(&mut self) -> Result<Option<u32>, ProxyError> {
        let next = self
            .runtime_mut()
            .exchange_expect_ok(&Apdu::simple(ins::NEXT_REQUEST, 0, 0))?;
        if next.len() != 4 {
            return Err(ProxyError::Protocol("bad NEXT_REQUEST response".into()));
        }
        // lint: infallible — the length is checked to be exactly 4 above.
        let index = u32::from_le_bytes(next[..4].try_into().expect("4 bytes"));
        Ok((index != u32::MAX).then_some(index))
    }

    /// Closes the card-side session.
    pub(crate) fn close_card_session(&mut self) -> Result<(), ProxyError> {
        self.runtime_mut()
            .exchange_expect_ok(&Apdu::simple(ins::CLOSE_SESSION, 0, 0))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pki::SimulatedPki;
    use sdds_card::CardProfile;
    use sdds_core::baseline::authorized_view_oracle;
    use sdds_core::conflict::AccessPolicy;
    use sdds_core::engine::{DEFAULT_DOC_KEY_ID, RULES_KEY_ID};
    use sdds_core::rule::{RuleSet, Subject};
    use sdds_core::secdoc::SecureDocumentBuilder;
    use sdds_core::session::TrustedServer;
    use sdds_dsp::service::SessionScheduler;
    use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};
    use sdds_xml::writer;

    fn rules() -> RuleSet {
        RuleSet::parse(
            "+, doctor, //patient\n-, doctor, //patient/ssn\n+, secretary, //patient/name",
        )
        .unwrap()
    }

    fn setup(docs: usize, shards: usize) -> (TrustedServer, Arc<DspService>, sdds_xml::Document) {
        let server = TrustedServer::new(b"hospital-2005", rules());
        let doc = generator::hospital(
            &HospitalProfile {
                patients: 3,
                ..HospitalProfile::default()
            },
            &GeneratorConfig::default(),
        );
        let service = DspService::new(shards);
        for i in 0..docs {
            let id = format!("folder-{i}");
            let secure = SecureDocumentBuilder::new(&id, server.document_key()).build(&doc);
            service.put_document(secure);
            for subject in ["doctor", "secretary"] {
                service
                    .put_rules(
                        &id,
                        subject,
                        &server.protected_rules_for(&Subject::new(subject)),
                    )
                    .unwrap();
            }
        }
        (server, Arc::new(service), doc)
    }

    fn terminal_for(server: &TrustedServer, subject: &str) -> Terminal {
        let pki = SimulatedPki::new(b"hospital-2005");
        let subj = Subject::new(subject);
        let mut terminal = Terminal::issue_card(
            subject,
            pki.card_transport_key(&subj),
            CardProfile::modern_secure_element(),
        );
        terminal
            .install_key(&server.provision_document_key(&subj, DEFAULT_DOC_KEY_ID))
            .unwrap();
        terminal
            .install_key(&server.provision_rules_key(&subj, RULES_KEY_ID))
            .unwrap();
        terminal
    }

    #[test]
    fn shared_session_matches_the_single_tenant_view() {
        let (server, service, doc) = setup(1, 4);
        let terminal = terminal_for(&server, "doctor");
        let session = terminal.connect_shared(Arc::clone(&service), "folder-0");
        let view = session.run_to_completion().unwrap();
        let expected = authorized_view_oracle(
            &doc,
            &rules(),
            &Subject::new("doctor"),
            None,
            &AccessPolicy::paper(),
        );
        assert_eq!(view, writer::to_string(&expected));
        // The service counted the rules blob and the chunks.
        let stats = service.stats();
        assert!(stats.rule_blobs_served == 1);
        assert!(stats.chunks_served > 0);
    }

    #[test]
    fn scheduler_multiplexes_many_cards_fairly() {
        let (server, service, doc) = setup(8, 4);
        let sessions: Vec<CardSession> = (0..8)
            .map(|i| {
                let subject = if i % 2 == 0 { "doctor" } else { "secretary" };
                terminal_for(&server, subject)
                    .connect_shared(Arc::clone(&service), format!("folder-{i}"))
            })
            .collect();
        let report = SessionScheduler::new(2, 4).run(sessions);
        assert_eq!(report.finished.len(), 8);
        assert!(report.failures().is_empty(), "{:?}", report.failures());
        let doctor_expected = writer::to_string(&authorized_view_oracle(
            &doc,
            &rules(),
            &Subject::new("doctor"),
            None,
            &AccessPolicy::paper(),
        ));
        for finished in &report.finished {
            let session = &finished.session;
            assert!(finished.steps > 1, "sessions are really interleaved");
            if session.terminal().subject().name() == "doctor" {
                assert_eq!(session.view(), Some(doctor_expected.as_str()));
            } else {
                assert!(session.view().unwrap().contains("<name>"));
            }
            // Batching coalesced this session's pushes into fewer exchanges.
            assert!(session.batched_channel().apdus_saved() > 0);
            assert!(
                session.simulated_latency(&CostModel::modern_secure_element()) > Duration::ZERO
            );
        }
        // Same-size documents, FIFO requeue: the schedule stays balanced.
        assert!(report.step_spread() <= 1, "spread {}", report.step_spread());
    }

    #[test]
    fn sessions_draw_distinct_salts_and_spread_replica_serving() {
        let (server, service, _) = setup(1, 8);
        service.pin_replicas("folder-0", 4).unwrap();
        let copies = service.replica_shards("folder-0");
        assert_eq!(copies.len(), 4);
        service.reset_stats();

        let sessions: Vec<CardSession> = (0..16)
            .map(|_| {
                terminal_for(&server, "doctor").connect_shared(Arc::clone(&service), "folder-0")
            })
            .collect();
        // Every session drew a distinct salt from the shared ticket counter.
        let mut salts: Vec<u64> = sessions.iter().map(|s| s.route_salt()).collect();
        salts.sort_unstable();
        salts.dedup();
        assert_eq!(salts.len(), 16, "salts must be distinct per session");

        let report = SessionScheduler::new(2, 4).run(sessions);
        assert!(report.failures().is_empty(), "{:?}", report.failures());

        // Header requests = requests − chunks − rule blobs, per shard. With
        // unsalted routing all 16 identical header fetches hit the home copy;
        // salted sessions must spread them over several replicas.
        let stats = service.shard_stats();
        let header_shards = copies
            .iter()
            .filter(|&&shard| {
                let s = &stats[shard];
                s.requests > s.chunks_served + s.rule_blobs_served
            })
            .count();
        assert!(
            header_shards > 1,
            "identical header requests must spread over replicas, got {header_shards} shard(s)"
        );
    }

    #[test]
    fn missing_rules_fail_the_session_not_the_scheduler() {
        let (server, service, _) = setup(1, 2);
        let session =
            terminal_for(&server, "researcher").connect_shared(Arc::clone(&service), "folder-0");
        let ok_session =
            terminal_for(&server, "doctor").connect_shared(Arc::clone(&service), "folder-0");
        let report = SessionScheduler::new(1, 4).run(vec![session, ok_session]);
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].1.contains("researcher") || failures[0].1.contains("no rules"));
        assert_eq!(report.finished.iter().filter(|f| f.is_ok()).count(), 1);
    }
}
