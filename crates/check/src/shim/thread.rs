//! Shim `thread::spawn` / `thread::scope`.
//!
//! Model threads are real OS threads, but they only run while the scheduler
//! grants them a slice, so spawning is cheap to reason about: a spawn
//! registers the child with the engine (making child-first schedules
//! explorable) and the child body runs under the engine's `run_thread`,
//! which catches panics and reports them as counterexamples.
//!
//! [`scope`] is built on [`std::thread::scope`], with one twist: every child
//! is *model*-joined before the `std` scope exits, so the OS-level join never
//! waits on a thread the scheduler has not granted yet. The closure receives
//! `&Scope` exactly like the `std` API, so library code written as
//! `thread::scope(|scope| … scope.spawn(…) …)` compiles against either.

use std::time::Duration;

use crate::exec::{child_ctx, current_ctx, run_thread, Tid};

fn unpoison<T>(result: Result<T, std::sync::PoisonError<T>>) -> T {
    result.unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn panicked<T>() -> std::thread::Result<T> {
    // alloc: cold — panic propagation path of a failed model thread.
    Err(Box::new("model thread panicked".to_owned()))
}

/// Model-checked stand-in for [`std::thread::spawn`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current_ctx() {
        None => JoinHandle {
            inner: std::thread::spawn(move || Some(f())),
            child: None,
        },
        Some(ctx) => {
            let child = child_ctx(&ctx);
            let tid = child.tid();
            let inner = std::thread::spawn(move || run_thread(child, f));
            // Yield only now that the child's OS thread exists: this is the
            // point where child-first schedules branch off.
            ctx.point();
            JoinHandle {
                inner,
                child: Some(tid),
            }
        }
    }
}

/// Model-checked stand-in for [`std::thread::JoinHandle`].
#[derive(Debug)]
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<Option<T>>,
    child: Option<Tid>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. Inside a model
    /// run a panicked child reports `Err` here *and* fails the execution.
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some(child), Some(ctx)) = (self.child, current_ctx()) {
            ctx.join(child);
        }
        match self.inner.join() {
            Ok(Some(value)) => Ok(value),
            Ok(None) => panicked(),
            Err(payload) => Err(payload),
        }
    }

    /// Whether the thread has finished running.
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// Model-checked stand-in for [`std::thread::scope`].
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'a, 'scope> FnOnce(&'a Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|inner| {
        let wrapper = Scope {
            inner,
            children: std::sync::Mutex::new(Vec::new()),
        };
        let out = f(&wrapper);
        // Model-join every child before the std scope exits: the OS-level
        // join must never wait on a thread the scheduler still has parked.
        // (Joining an already-joined or finished child is a no-op.)
        if let Some(ctx) = current_ctx() {
            let pending = std::mem::take(&mut *unpoison(wrapper.children.lock()));
            for child in pending {
                ctx.join(child);
            }
        }
        out
    })
}

/// Model-checked stand-in for [`std::thread::Scope`].
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    children: std::sync::Mutex<Vec<Tid>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread, exactly like [`std::thread::Scope::spawn`].
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match current_ctx() {
            None => ScopedJoinHandle {
                inner: self.inner.spawn(move || Some(f())),
                child: None,
            },
            Some(ctx) => {
                let child = child_ctx(&ctx);
                let tid = child.tid();
                unpoison(self.children.lock()).push(tid);
                let inner = self.inner.spawn(move || run_thread(child, f));
                // Yield only now that the child's OS thread exists: this is
                // the point where child-first schedules branch off.
                ctx.point();
                ScopedJoinHandle {
                    inner,
                    child: Some(tid),
                }
            }
        }
    }
}

/// Model-checked stand-in for [`std::thread::ScopedJoinHandle`].
#[derive(Debug)]
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
    child: Option<Tid>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish and returns its result.
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some(child), Some(ctx)) = (self.child, current_ctx()) {
            ctx.join(child);
        }
        match self.inner.join() {
            Ok(Some(value)) => Ok(value),
            Ok(None) => panicked(),
            Err(payload) => Err(payload),
        }
    }

    /// Whether the thread has finished running.
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// Yield point; outside a model run this is [`std::thread::yield_now`].
pub fn yield_now() {
    match current_ctx() {
        None => std::thread::yield_now(),
        Some(ctx) => ctx.point(),
    }
}

/// Inside a model run, sleeping is just a yield point: the model has no
/// clock, and correctness must not depend on timing. Outside, real sleep.
pub fn sleep(duration: Duration) {
    match current_ctx() {
        None => std::thread::sleep(duration),
        Some(ctx) => ctx.point(),
    }
}
