//! E1 — streaming evaluation cost vs. number of access rules (Figure 2 machinery).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdds_bench::workloads;

fn bench(c: &mut Criterion) {
    let doc = workloads::hospital(1_500);
    let events = doc.to_events();
    let mut group = c.benchmark_group("e1_rules_scaling");
    group.sample_size(10);
    for n in [1usize, 8, 32] {
        let rules = workloads::rule_pool(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| workloads::evaluate_plain(&events, &rules, "subject"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
