//! Terminal proxy of the SDDS architecture.
//!
//! Figure 3 of the paper places, on the device hosting the smart card, a
//! *proxy* that lets applications talk to the DSP and to the card "through an
//! XML API independent of the underlying protocols (JDBC, APDU)". This crate
//! is that terminal-side software:
//!
//! * [`pki`] — the simulated PKI of the demo (footnote 2: "we will not use a
//!   PKI infrastructure but rather simulate it"),
//! * [`publish`] — the [`publish::DisseminationChannel`] publisher of the
//!   push scenario (E6): it holds the channel key, encrypts each stream item
//!   once, and hands the untrusted DSP fan-out nothing but ciphertext,
//! * [`proxy`] — the [`proxy::Terminal`]: card issuance, key/rule/query
//!   provisioning over APDUs, and push-mode local evaluation,
//! * [`session`] — the [`session::CardSession`] stepped pull flow against the
//!   shared multi-client [`sdds_dsp::DspService`]
//!   ([`proxy::Terminal::connect_shared`]), schedulable by the service's
//!   round-robin session scheduler. This is the **only** pull-mode serving
//!   path of the workspace — the single-tenant loop it replaced is gone.
//!
//! Applications are expected to use the top-level `sdds::Client` /
//! `sdds::Publisher` facade (root crate), which wires a PKI, a card profile
//! and a `DspService` handle around these primitives; the demo applications
//! live there too (`sdds::apps`).

#![forbid(unsafe_code)]

pub mod pki;
pub mod proxy;
pub mod publish;
pub mod session;

pub use pki::SimulatedPki;
pub use proxy::{ProxyError, Terminal};
pub use publish::DisseminationChannel;
pub use session::CardSession;
