//! Serialisation of event streams back to XML text.
//!
//! The terminal proxy uses the writer to re-assemble the *authorized view* of a
//! document from the event stream delivered by the smart card (§2.1: "delivers
//! the authorized subpart matching the query").

use crate::event::Event;

/// Escapes character data for element content.
pub fn escape_text(text: &str) -> String {
    // alloc: amortized — output buffer sized to the escaped text; the rendered view owns it.
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Escapes character data for attribute values (double-quoted).
pub fn escape_attr(text: &str) -> String {
    // alloc: amortized — output buffer sized to the escaped text; the rendered view owns it.
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
    out
}

/// An XML writer accumulating output in a `String`.
#[derive(Debug, Default)]
pub struct Writer {
    out: String,
    indent: Option<usize>,
    depth: usize,
    /// True when the last thing written was an opening tag with no content yet,
    /// which controls indentation of the matching closing tag.
    last_was_open: bool,
    last_was_text: bool,
}

impl Writer {
    /// Creates a compact writer (no indentation).
    pub fn new() -> Self {
        Writer::default()
    }

    /// Creates a pretty-printing writer indenting by `width` spaces per level.
    pub fn pretty(width: usize) -> Self {
        Writer {
            indent: Some(width),
            ..Writer::default()
        }
    }

    fn newline_and_indent(&mut self) {
        if let Some(width) = self.indent {
            if !self.out.is_empty() {
                self.out.push('\n');
            }
            for _ in 0..self.depth * width {
                self.out.push(' ');
            }
        }
    }

    /// Writes a single event.
    pub fn write(&mut self, event: &Event) {
        match event {
            Event::Open { name, attrs } => {
                self.newline_and_indent();
                self.out.push('<');
                self.out.push_str(name);
                for a in attrs {
                    self.out.push(' ');
                    self.out.push_str(&a.name);
                    self.out.push_str("=\"");
                    self.out.push_str(&escape_attr(&a.value));
                    self.out.push('"');
                }
                self.out.push('>');
                self.depth += 1;
                self.last_was_open = true;
                self.last_was_text = false;
            }
            Event::Text(t) => {
                self.out.push_str(&escape_text(t));
                self.last_was_open = false;
                self.last_was_text = true;
            }
            Event::Close(name) => {
                self.depth = self.depth.saturating_sub(1);
                if !self.last_was_open && !self.last_was_text {
                    self.newline_and_indent();
                }
                self.out.push_str("</");
                self.out.push_str(name);
                self.out.push('>');
                self.last_was_open = false;
                self.last_was_text = false;
            }
        }
    }

    /// Writes a whole event stream.
    pub fn write_all<'a>(&mut self, events: impl IntoIterator<Item = &'a Event>) {
        for ev in events {
            self.write(ev);
        }
    }

    /// Consumes the writer and returns the produced text.
    pub fn finish(self) -> String {
        self.out
    }

    /// Current output length in bytes.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

/// Serialises an event stream compactly.
pub fn to_string(events: &[Event]) -> String {
    let mut w = Writer::new();
    w.write_all(events);
    w.finish()
}

/// Serialises an event stream with indentation.
pub fn to_pretty_string(events: &[Event]) -> String {
    let mut w = Writer::pretty(2);
    w.write_all(events);
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Attribute;
    use crate::parser::Parser;

    #[test]
    fn compact_roundtrip() {
        let doc = "<a><b id=\"1\">hi</b><c/></a>";
        let events = Parser::parse_all(doc).unwrap();
        let text = to_string(&events);
        let reparsed = Parser::parse_all(&text).unwrap();
        assert_eq!(events, reparsed);
    }

    #[test]
    fn escaping_roundtrip() {
        let events = vec![
            Event::open_with("a", vec![Attribute::new("t", "x<&\"y")]),
            Event::text("1 < 2 && \"q\""),
            Event::close("a"),
        ];
        let text = to_string(&events);
        let reparsed = Parser::parse_all(&text).unwrap();
        assert_eq!(reparsed[0].attrs()[0].value, "x<&\"y");
        assert_eq!(reparsed[1].as_text(), Some("1 < 2 && \"q\""));
    }

    #[test]
    fn pretty_output_contains_newlines_and_roundtrips() {
        let doc = "<a><b>hi</b><c><d>x</d></c></a>";
        let events = Parser::parse_all(doc).unwrap();
        let pretty = to_pretty_string(&events);
        assert!(pretty.contains('\n'));
        let reparsed = Parser::parse_all(&pretty).unwrap();
        assert_eq!(events, reparsed);
    }

    #[test]
    fn writer_len_tracks_output() {
        let mut w = Writer::new();
        assert!(w.is_empty());
        w.write(&Event::open("a"));
        w.write(&Event::close("a"));
        assert_eq!(w.len(), "<a></a>".len());
        assert_eq!(w.finish(), "<a></a>");
    }
}
