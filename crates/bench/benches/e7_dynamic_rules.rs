//! E7 — cost of a policy change: static encryption re-partitioning vs. SOE rule refresh.
use criterion::{criterion_group, criterion_main, Criterion};
use sdds_bench::workloads;
use sdds_core::baseline::StaticEncryptionScheme;
use sdds_core::conflict::AccessPolicy;
use sdds_core::rule::Sign;
use sdds_core::session::{ProtectedRules, TrustedServer};

fn bench(c: &mut Criterion) {
    let doc = workloads::hospital(1_000);
    let policy = AccessPolicy::paper();
    let mut group = c.benchmark_group("e7_dynamic_rules");
    group.sample_size(10);
    group.bench_function("static_encryption_rule_change", |b| {
        b.iter(|| {
            let rules = workloads::medical_rules();
            let mut scheme = StaticEncryptionScheme::build(&doc, &rules, &policy);
            let mut changed = rules.clone();
            changed
                .push(Sign::Permit, "nurse", "//patient/name")
                .unwrap();
            scheme
                .apply_rule_change(&doc, &changed, &policy)
                .bytes_reencrypted
        })
    });
    group.bench_function("soe_rule_refresh", |b| {
        b.iter(|| {
            let mut server = TrustedServer::new(b"bench", workloads::medical_rules());
            server
                .rules_mut()
                .push(Sign::Permit, "nurse", "//patient/name")
                .unwrap();
            let sealed = server.protected_rules_for(&sdds_core::rule::Subject::new("nurse"));
            ProtectedRules::decode(&sealed.encode())
                .unwrap()
                .encode()
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
