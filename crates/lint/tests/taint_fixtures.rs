//! Planted-leak fixtures for the trust-boundary taint analyzer.
//!
//! Each fixture is a tiny workspace (a `TrustConfig` plus in-memory source
//! files) with one deliberate leak of a known class; the test asserts the
//! analyzer reports it with the expected rule at the expected `file:line`.
//! The clean fixtures at the bottom guard against false positives on the
//! patterns the real workspace relies on (ciphertext carriers, byte-count
//! verbs, associated types, test-only key usage, annotated boundaries).

use sdds_lint::taint::{analyze, SourceFile, TrustConfig};
use sdds_lint::{Rule, Violation};

/// A minimal trust model mirroring the real `trust.toml` shape.
const CONFIG: &str = r#"
[tiers]
secret = ["SecretKey"]
plaintext = ["Document", "Event"]
ciphertext = ["SecureDocument", "StreamItem"]

[scopes]
dsp = ["dsp/src"]
obs = ["obs/src"]

[annotations]
boundary_verbs = ["encrypt", "decrypt", "seal", "wrap", "unwrap_key", "derive"]
label_calls = ["counter_with", "gauge_with", "histogram_with"]
"#;

fn config() -> TrustConfig {
    TrustConfig::parse(CONFIG).expect("fixture config parses")
}

fn file(path: &str, contents: &str) -> SourceFile {
    SourceFile {
        path: path.to_owned(),
        contents: contents.to_owned(),
    }
}

fn run(files: &[SourceFile]) -> Vec<Violation> {
    analyze(&config(), files)
}

/// Asserts at least one violation of `rule` at `file:line` (and echoes the
/// whole report on failure so the planted leak is easy to locate).
#[track_caller]
fn assert_caught(violations: &[Violation], rule: Rule, path: &str, line: usize) {
    let caught = violations
        .iter()
        .any(|v| v.rule == rule && v.file.to_string_lossy() == path && v.line == line);
    assert!(
        caught,
        "expected a {} at {path}:{line}, got: {violations:#?}",
        rule.name()
    );
}

// ---------------------------------------------------------------- leaks --

#[test]
fn leak_1_plaintext_field_in_dsp_struct_is_caught() {
    let v = run(&[file(
        "dsp/src/store.rs",
        "pub struct Cache {\n    last: Document,\n}\n",
    )]);
    assert_caught(&v, Rule::TaintDsp, "dsp/src/store.rs", 1);
    let msg = &v.first().expect("caught above").message;
    assert!(
        msg.contains("Document") && msg.contains("dsp/src/store.rs:2"),
        "the report should name the plaintext field and its line: {msg}"
    );
}

#[test]
fn leak_2_secret_in_dsp_fn_signature_is_caught() {
    let v = run(&[file(
        "dsp/src/server.rs",
        "pub fn serve(key: &SecretKey) -> usize {\n    0\n}\n",
    )]);
    assert_caught(&v, Rule::TaintDsp, "dsp/src/server.rs", 1);
}

#[test]
fn leak_3_secret_reexport_from_dsp_is_caught() {
    let v = run(&[file("dsp/src/lib.rs", "pub use sdds_crypto::SecretKey;\n")]);
    assert_caught(&v, Rule::TaintDsp, "dsp/src/lib.rs", 1);
}

#[test]
fn leak_4_boundary_verb_fn_inside_dsp_is_caught() {
    // Even with ciphertext-only types, a DSP fn that encrypts is a breach:
    // encryption implies the key is present on the untrusted server.
    let v = run(&[file(
        "dsp/src/fanout.rs",
        "// taint: sink — annotated, but in the wrong place entirely\n\
         pub fn encrypt_item(item: &StreamItem) -> Vec<u8> {\n    vec![]\n}\n",
    )]);
    assert_caught(&v, Rule::TaintDsp, "dsp/src/fanout.rs", 2);
}

#[test]
fn leak_5_transitive_secret_holder_in_dsp_is_caught_with_provenance() {
    // KeyHolder is never tiered explicitly: it becomes secret because it
    // embeds SecretKey, and the DSP field that embeds *it* leaks.
    let v = run(&[
        file(
            "core/src/holder.rs",
            "pub struct KeyHolder {\n    key: SecretKey,\n}\n",
        ),
        file(
            "dsp/src/shard.rs",
            "pub struct Shard {\n    holder: KeyHolder,\n}\n",
        ),
    ]);
    assert_caught(&v, Rule::TaintDsp, "dsp/src/shard.rs", 1);
    assert!(
        v.iter().any(|x| {
            x.rule == Rule::TaintDsp
                && x.message.contains("SecretKey")
                && x.message.contains("core/src/holder.rs")
        }),
        "provenance should name the embedded secret and its field site: {v:#?}"
    );
}

#[test]
fn leak_6_derive_debug_on_secret_type_is_caught() {
    let v = run(&[file(
        "crypto/src/keys.rs",
        "#[derive(Debug, Clone)]\npub struct SecretKey {\n    bytes: [u8; 16],\n}\n",
    )]);
    assert_caught(&v, Rule::TaintDebug, "crypto/src/keys.rs", 2);
}

#[test]
fn leak_7_display_impl_on_secret_type_is_caught() {
    let v = run(&[file(
        "crypto/src/keys.rs",
        "pub struct SecretKey {\n    bytes: [u8; 16],\n}\n\n\
         impl std::fmt::Display for SecretKey {\n\
         \u{20}   fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {\n\
         \u{20}       write!(f, \"{:x?}\", self.bytes)\n    }\n}\n",
    )]);
    assert_caught(&v, Rule::TaintDebug, "crypto/src/keys.rs", 5);
}

#[test]
fn leak_8_unannotated_byte_escape_on_secret_type_is_caught() {
    let v = run(&[file(
        "crypto/src/keys.rs",
        "pub struct SecretKey {\n    bytes: [u8; 16],\n}\n\n\
         impl SecretKey {\n\
         \u{20}   pub fn raw(&self) -> &[u8; 16] {\n        &self.bytes\n    }\n}\n",
    )]);
    assert_caught(&v, Rule::TaintDebug, "crypto/src/keys.rs", 6);
}

#[test]
fn leak_9_secret_on_metric_label_line_is_caught() {
    let v = run(&[file(
        "core/src/engine.rs",
        "pub fn record(obs: &Obs) {\n\
         \u{20}   obs.counter_with(\"evals\", &[(\"key\", SecretKey::label())]);\n}\n",
    )]);
    assert_caught(&v, Rule::TaintObs, "core/src/engine.rs", 2);
}

#[test]
fn leak_10_plaintext_in_obs_signature_is_caught() {
    let v = run(&[file(
        "obs/src/recorder.rs",
        "pub fn record_event(event: &Event) {\n}\n",
    )]);
    assert_caught(&v, Rule::TaintObs, "obs/src/recorder.rs", 1);
}

#[test]
fn leak_11_unannotated_decrypt_fn_is_caught() {
    let v = run(&[file(
        "crypto/src/modes.rs",
        "pub fn cbc_decrypt(key: &SecretKey, data: &[u8]) -> Vec<u8> {\n    vec![]\n}\n",
    )]);
    assert_caught(&v, Rule::TaintAnnotation, "crypto/src/modes.rs", 1);
}

#[test]
fn leak_12_sink_returning_plaintext_is_inconsistent() {
    // A "sink" whose return type is cleartext contradicts its own claim.
    let v = run(&[file(
        "crypto/src/modes.rs",
        "// taint: sink — claims to encrypt\n\
         pub fn cbc_encrypt(key: &SecretKey, doc: &Document) -> Document {\n    doc.clone()\n}\n",
    )]);
    assert_caught(&v, Rule::TaintAnnotation, "crypto/src/modes.rs", 2);
}

#[test]
fn leak_13_malformed_annotation_without_reason_is_caught() {
    let v = run(&[file(
        "crypto/src/modes.rs",
        "// taint: source\n\
         pub fn cbc_decrypt(key: &SecretKey, data: &[u8]) -> Vec<u8> {\n    vec![]\n}\n",
    )]);
    assert_caught(&v, Rule::TaintAnnotation, "crypto/src/modes.rs", 1);
}

// ------------------------------------------------------- false positives --

#[test]
fn clean_ciphertext_carrier_in_dsp_is_allowed() {
    // The real shape of the DSP: ciphertext types in signatures and fields,
    // including a ciphertext type that (per config) stops propagation.
    let v = run(&[file(
        "dsp/src/store.rs",
        "pub struct Store {\n    items: Vec<StreamItem>,\n}\n\n\
         impl Store {\n\
         \u{20}   pub fn get(&self, i: usize) -> &SecureDocument {\n\
         \u{20}       &self.items[i].document\n    }\n}\n",
    )]);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn clean_byte_count_verb_fn_in_dsp_is_exempt() {
    // `record_decrypt(bytes: usize)` carries a boundary verb but touches no
    // tiered type and no raw bytes: it counts, it does not decrypt.
    let v = run(&[file(
        "dsp/src/obs.rs",
        "pub fn record_decrypt(&mut self, bytes: usize) {\n}\n",
    )]);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn clean_associated_event_type_in_dsp_is_not_the_plaintext_event() {
    let v = run(&[file(
        "dsp/src/actors.rs",
        "pub fn on_event<A: Actor>(a: &mut A, e: A::Event) -> Self::Event {\n}\n",
    )]);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn clean_test_code_in_dsp_may_hold_keys() {
    let v = run(&[file(
        "dsp/src/fanout.rs",
        "pub struct FanOut {\n    n: usize,\n}\n\n\
         #[cfg(test)]\nmod tests {\n\
         \u{20}   use sdds_crypto::SecretKey;\n\n\
         \u{20}   fn item(key: &SecretKey) -> usize {\n        16\n    }\n}\n",
    )]);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn clean_annotated_boundaries_and_redactions_pass() {
    let v = run(&[file(
        "crypto/src/keys.rs",
        "pub struct SecretKey {\n    bytes: [u8; 16],\n}\n\n\
         // taint: redacted — prints a placeholder, never the bytes.\n\
         impl std::fmt::Debug for SecretKey {\n\
         \u{20}   fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {\n\
         \u{20}       f.write_str(\"SecretKey(<redacted>)\")\n    }\n}\n\n\
         // taint: source — ciphertext in, cleartext out; SOE-side only.\n\
         pub fn cbc_decrypt(key: &SecretKey, data: &[u8]) -> Vec<u8> {\n    vec![]\n}\n\n\
         // taint: sink — cleartext in, ciphertext out.\n\
         pub fn cbc_encrypt(key: &SecretKey, data: &[u8]) -> Vec<u8> {\n    vec![]\n}\n",
    )]);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn clean_annotated_type_tier_claim_overrides_propagation() {
    // A wrapper that would inherit secret-tier can claim ciphertext at its
    // declaration — a reviewed assertion that the key is encrypted away.
    let v = run(&[
        file(
            "core/src/wrap.rs",
            "// taint: ciphertext — the key is AES-wrapped before storage.\n\
             pub struct WrappedKey {\n    sealed: Vec<u8>,\n    src: SecretKey,\n}\n",
        ),
        file(
            "dsp/src/store.rs",
            "pub struct Store {\n    keys: Vec<WrappedKey>,\n}\n",
        ),
    ]);
    assert!(v.is_empty(), "{v:#?}");
}
