//! Facade-equivalence contract of the API redesign: the authorized view
//! delivered through `sdds::Client` must be **byte-identical** whether the
//! publisher's service runs 1 shard (the single-tenant layout) or 16 shards
//! (the E10 fleet layout), for permit-heavy, deny-heavy and query-restricted
//! subjects alike — and identical again through the incremental
//! `ViewStream`, through a scheduler-multiplexed session, and equal to the
//! tree oracle. Sharding must change *where requests queue*, never *what is
//! served*.

use sdds::{AccessPolicy, Client, Publisher, RuleSet, SessionScheduler, Subject};
use sdds_core::baseline::authorized_view_oracle;
use sdds_xml::generator::{Corpus, GeneratorConfig};
use sdds_xml::{writer, Document};

fn rules() -> RuleSet {
    RuleSet::parse(
        "+, doctor, //patient\n\
         -, doctor, //patient/ssn\n\
         +, secretary, //patient/name\n\
         +, secretary, //patient/address\n\
         +, researcher, //diagnosis",
    )
    .unwrap()
}

fn document() -> Document {
    Corpus::Hospital.generate(1_200, &GeneratorConfig::default())
}

/// The subjects of the contract: a permit+deny mix, a deny-dominated outsider
/// (no rule at all), and a query-restricted researcher.
const SUBJECTS: &[(&str, Option<&str>)] = &[
    ("doctor", None),
    ("secretary", None),
    ("outsider", None),
    ("researcher", Some("//diagnosis/item")),
];

fn views_at(shards: usize, doc: &Document) -> Vec<(String, String, String)> {
    let publisher = Publisher::builder(b"hospital-2005")
        .rules(rules())
        .shards(shards)
        .build()
        .unwrap();
    publisher.publish("folders", doc).unwrap();
    assert_eq!(publisher.service().shard_count(), shards);

    SUBJECTS
        .iter()
        .map(|(subject, query)| {
            let mut builder = Client::builder(*subject);
            if let Some(q) = query {
                builder = builder.query(*q);
            }
            let client = builder.provision(&publisher).unwrap();
            let card_view = client.authorized_view("folders").unwrap();
            let streamed = client
                .open_stream("folders")
                .unwrap()
                .collect_view()
                .unwrap();
            ((*subject).to_owned(), card_view, streamed)
        })
        .collect()
}

#[test]
fn one_and_sixteen_shards_serve_byte_identical_views() {
    let doc = document();
    let one = views_at(1, &doc);
    let sixteen = views_at(16, &doc);
    assert_eq!(one.len(), sixteen.len());

    for ((subject, card_1, stream_1), (_, card_16, stream_16)) in one.iter().zip(sixteen.iter()) {
        assert_eq!(
            card_1, card_16,
            "`{subject}`: card view differs between 1 and 16 shards"
        );
        assert_eq!(
            stream_1, stream_16,
            "`{subject}`: streamed view differs between 1 and 16 shards"
        );
        assert_eq!(
            card_1, stream_1,
            "`{subject}`: ViewStream differs from the card path"
        );

        // And both equal the tree oracle.
        let query = SUBJECTS
            .iter()
            .find(|(s, _)| s == subject)
            .and_then(|(_, q)| *q)
            .map(|q| sdds_core::Query::parse(q).unwrap());
        let oracle = authorized_view_oracle(
            &doc,
            &rules(),
            &Subject::new(subject.as_str()),
            query.as_ref(),
            &AccessPolicy::paper(),
        );
        assert_eq!(
            *card_1,
            writer::to_string(&oracle),
            "`{subject}`: facade view differs from the oracle"
        );
    }

    // The deny/permit mix really exercised both sides of the contract.
    let doctor = &one[0].1;
    assert!(doctor.contains("<patient"));
    assert!(!doctor.contains("<ssn>"));
    assert!(one[2].1.is_empty(), "outsider must get an empty view");
    assert!(one[3].1.contains("<item"));
}

#[test]
fn scheduler_multiplexed_sessions_match_direct_facade_pulls() {
    // The same clients, pulled two ways on a 16-shard service: one by one
    // through `authorized_view`, and multiplexed by the round-robin scheduler.
    let doc = document();
    let publisher = Publisher::builder(b"hospital-2005")
        .rules(rules())
        .shards(16)
        .build()
        .unwrap();
    for i in 0..6 {
        publisher.publish(&format!("folder-{i}"), &doc).unwrap();
    }

    let clients: Vec<Client> = (0..6)
        .map(|i| {
            let subject = ["doctor", "secretary", "researcher"][i % 3];
            Client::builder(subject).provision(&publisher).unwrap()
        })
        .collect();

    let direct: Vec<String> = clients
        .iter()
        .enumerate()
        .map(|(i, c)| c.authorized_view(&format!("folder-{i}")).unwrap())
        .collect();

    let sessions = clients
        .iter()
        .enumerate()
        .map(|(i, c)| c.connect(format!("folder-{i}")).unwrap())
        .collect();
    let report = SessionScheduler::new(3, 4).run(sessions);
    assert!(report.failures().is_empty(), "{:?}", report.failures());
    assert_eq!(report.finished.len(), 6);
    for finished in &report.finished {
        assert_eq!(
            finished.session.view().unwrap(),
            direct[finished.index],
            "session {} differs from its direct pull",
            finished.index
        );
    }
}
