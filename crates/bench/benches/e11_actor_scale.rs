//! E11 — actor engine vs thread scheduler at 1k–100k sessions. The wall time
//! measured here is the *functional* cost of really running both engines
//! (mailboxes, work stealing, the FIFO run queue); the scaling claims of E11
//! live on the deterministic simulated clock and are reported by the harness
//! (`e11.sessions_*` keys) and pinned by `tests/actor_equivalence.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use sdds_bench::workloads::{actor_scale, ActorScaleConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_actor_scale");
    group.sample_size(10);
    for sessions in [1_000usize, 10_000] {
        group.bench_function(format!("both_engines_sessions_{sessions}"), |b| {
            b.iter(|| {
                let outcome = actor_scale(ActorScaleConfig::new(sessions));
                outcome.speedup()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
