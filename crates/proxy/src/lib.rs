//! Terminal proxy and demo applications.
//!
//! Figure 3 of the paper places, on the device hosting the smart card, a
//! *proxy* that lets applications talk to the DSP and to the card "through an
//! XML API independent of the underlying protocols (JDBC, APDU)". This crate
//! is that terminal-side software plus the two demonstration applications:
//!
//! * [`pki`] — the simulated PKI of the demo (footnote 2: "we will not use a
//!   PKI infrastructure but rather simulate it"),
//! * [`proxy`] — the [`proxy::Terminal`]: card issuance, provisioning, and the
//!   pull-mode document evaluation loop (fetch header → let the card request
//!   chunks → push them over APDUs → reassemble the authorized view),
//! * [`apps::collab`] — application 1, collaborative data sharing within a
//!   community (pull, textual data, interactive latencies),
//! * [`apps::dissem`] — application 2, selective dissemination of streams over
//!   unsecured channels (push, per-subscriber filtering, real-time constraint),
//! * [`session`] — the [`session::CardSession`] stepped pull flow against the
//!   shared multi-client [`sdds_dsp::DspService`]
//!   ([`proxy::Terminal::connect_shared`]), schedulable by the service's
//!   round-robin session scheduler.

pub mod apps;
pub mod pki;
pub mod proxy;
pub mod session;

pub use pki::SimulatedPki;
pub use proxy::{ProxyError, Terminal};
pub use session::CardSession;
