//! SOE-side streaming reader of the binary token stream.
//!
//! The reader is deliberately *incremental and push-fed*: the card never holds
//! more than a small window of decrypted plaintext (the terminal pushes
//! encrypted chunks one APDU at a time), and it must be able to **skip** a
//! summarised subtree by simply advancing its cursor — the skipped bytes are
//! then never requested, transferred, nor decrypted, which is precisely the
//! benefit measured in experiment E2.

use sdds_xml::{Attribute, Event, TagDict, TagId};

use super::compress::{read_varint, TagReference};
use super::encode::{token, SubtreeSummary};
use crate::error::CoreError;

/// A decoded item of the token stream.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenEvent {
    /// A document event (open / value / close).
    Event(Event),
    /// A subtree summary describing the content of the element that was just
    /// opened. The caller decides whether to [`TokenReader::skip`] it.
    Summary(SubtreeSummary),
}

/// Outcome of a [`TokenReader::next_token`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadResult {
    /// A token was decoded.
    Token(TokenEvent),
    /// The window does not contain a complete token; more plaintext must be
    /// supplied starting at [`TokenReader::needed_offset`].
    NeedData,
    /// The whole stream has been consumed.
    End,
}

/// Decision taken for a summarised subtree (returned by the engine's skip
/// logic and consumed by its statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipDecision {
    /// The subtree content must be read and evaluated.
    Read,
    /// The subtree cannot contribute to the authorized view: skip it.
    Skip,
}

/// Incremental reader of the binary token stream.
#[derive(Debug)]
pub struct TokenReader {
    dict: TagDict,
    recursive_bitmaps: bool,
    stream_len: u64,
    /// Absolute offset of `window[0]`.
    window_start: u64,
    window: Vec<u8>,
    /// Absolute offset of the next byte to decode.
    cursor: u64,
    depth: usize,
    open_names: Vec<String>,
    /// Reference tag sets of enclosing summaries: `(depth, reference)`.
    ref_stack: Vec<(usize, TagReference)>,
    /// Set when the last decoded token was an OPEN, in which case a SUMMARY
    /// may follow and would describe that element.
    last_open_depth: Option<usize>,
}

impl TokenReader {
    /// Creates a reader over a stream of `stream_len` bytes whose tokens start
    /// at `start_offset` (the bytes before it hold the serialised dictionary,
    /// already parsed by the caller).
    pub fn new(dict: TagDict, start_offset: u64, stream_len: u64, recursive_bitmaps: bool) -> Self {
        TokenReader {
            dict,
            recursive_bitmaps,
            stream_len,
            window_start: start_offset,
            window: Vec::new(),
            cursor: start_offset,
            depth: 0,
            open_names: Vec::new(),
            ref_stack: Vec::new(),
            last_open_depth: None,
        }
    }

    /// The tag dictionary.
    pub fn dict(&self) -> &TagDict {
        &self.dict
    }

    /// Absolute offset of the next byte the reader needs.
    pub fn needed_offset(&self) -> u64 {
        self.window_start + self.window.len() as u64
    }

    /// Current element depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Bytes currently buffered in the reader window (charged to secure RAM).
    pub fn window_bytes(&self) -> usize {
        self.window.len()
    }

    /// True once every byte of the stream has been consumed or skipped.
    pub fn at_end(&self) -> bool {
        self.cursor >= self.stream_len
    }

    /// Supplies plaintext bytes starting at absolute `offset`. Bytes the reader
    /// has already consumed are ignored; a gap after the current window is an
    /// error.
    pub fn supply(&mut self, offset: u64, bytes: &[u8]) -> Result<(), CoreError> {
        let end = offset + bytes.len() as u64;
        if self.window.is_empty() {
            if end <= self.cursor {
                return Ok(()); // entirely stale (e.g. a chunk that was skipped over)
            }
            if offset > self.cursor {
                return Err(CoreError::BadState {
                    // alloc: cold — plaintext-gap error path.
                    message: format!(
                        "plaintext gap: reader needs offset {} but received {offset}",
                        self.cursor
                    ),
                });
            }
            let prefix = (self.cursor - offset) as usize;
            self.window_start = self.cursor;
            self.window.extend_from_slice(&bytes[prefix..]);
        } else {
            let window_end = self.window_start + self.window.len() as u64;
            if end <= window_end {
                return Ok(());
            }
            if offset > window_end {
                return Err(CoreError::BadState {
                    // alloc: cold — plaintext-gap error path.
                    message: format!(
                        "plaintext gap: window ends at {window_end} but received offset {offset}"
                    ),
                });
            }
            let prefix = (window_end - offset) as usize;
            self.window.extend_from_slice(&bytes[prefix..]);
        }
        Ok(())
    }

    /// Skips `content_len` bytes of subtree content (the caller obtained the
    /// length from the corresponding [`SubtreeSummary`]).
    pub fn skip(&mut self, content_len: u64) {
        self.cursor += content_len;
        let window_end = self.window_start + self.window.len() as u64;
        if self.cursor >= window_end {
            self.window.clear();
            self.window_start = self.cursor;
        } else {
            let keep_from = (self.cursor - self.window_start) as usize;
            self.window.drain(..keep_from);
            self.window_start = self.cursor;
        }
        // A skip consumes the content of the element that was just opened; the
        // next token is its CLOSE.
        self.last_open_depth = None;
    }

    fn rel(&self) -> usize {
        (self.cursor - self.window_start) as usize
    }

    fn current_reference(&self) -> TagReference {
        self.ref_stack
            .last()
            // alloc: amortized — the recursive tag reference is a small bitmap, cloned per summary probe.
            .map(|(_, r)| r.clone())
            .unwrap_or_else(|| TagReference::full(self.dict.len()))
    }

    fn tag_name(&self, id: u64) -> Result<String, CoreError> {
        self.dict
            .name(TagId(id as u16))
            .map(str::to_owned)
            .ok_or_else(|| CoreError::BadDocument {
                // alloc: cold — unknown-tag error path.
                message: format!("unknown tag id {id}"),
            })
    }

    /// Decodes the next token, if the window holds a complete one.
    pub fn next_token(&mut self) -> Result<ReadResult, CoreError> {
        if self.at_end() {
            return Ok(ReadResult::End);
        }
        let start = self.rel();
        let Some(&marker) = self.window.get(start) else {
            return Ok(ReadResult::NeedData);
        };
        match marker {
            token::OPEN => {
                let mut pos = start + 1;
                let Some((tag, used)) = read_varint(&self.window, pos) else {
                    return Ok(ReadResult::NeedData);
                };
                pos += used;
                let Some((attr_count, used)) = read_varint(&self.window, pos) else {
                    return Ok(ReadResult::NeedData);
                };
                pos += used;
                // alloc: amortized — attribute list sized to this one element.
                let mut attrs = Vec::with_capacity(attr_count as usize);
                for _ in 0..attr_count {
                    let Some((name_id, used)) = read_varint(&self.window, pos) else {
                        return Ok(ReadResult::NeedData);
                    };
                    pos += used;
                    let Some((value_len, used)) = read_varint(&self.window, pos) else {
                        return Ok(ReadResult::NeedData);
                    };
                    pos += used;
                    let Some(value) = self.window.get(pos..pos + value_len as usize) else {
                        return Ok(ReadResult::NeedData);
                    };
                    let value = String::from_utf8_lossy(value).into_owned();
                    pos += value_len as usize;
                    attrs.push(Attribute::new(self.tag_name(name_id)?, value));
                }
                let name = self.tag_name(tag)?;
                self.consume(pos - start);
                self.depth += 1;
                // alloc: amortized — the reader tracks one open tag name per element for well-formedness.
                self.open_names.push(name.clone());
                self.last_open_depth = Some(self.depth);
                Ok(ReadResult::Token(TokenEvent::Event(Event::Open {
                    name,
                    attrs,
                })))
            }
            token::TEXT => {
                let mut pos = start + 1;
                let Some((len, used)) = read_varint(&self.window, pos) else {
                    return Ok(ReadResult::NeedData);
                };
                pos += used;
                let Some(text) = self.window.get(pos..pos + len as usize) else {
                    return Ok(ReadResult::NeedData);
                };
                let text = String::from_utf8_lossy(text).into_owned();
                pos += len as usize;
                self.consume(pos - start);
                self.last_open_depth = None;
                Ok(ReadResult::Token(TokenEvent::Event(Event::Text(text))))
            }
            token::CLOSE => {
                self.consume(1);
                let name = self
                    .open_names
                    .pop()
                    .ok_or_else(|| CoreError::BadDocument {
                        message: "close token without a matching open".into(),
                    })?;
                while self
                    .ref_stack
                    .last()
                    .is_some_and(|(depth, _)| *depth >= self.depth)
                {
                    self.ref_stack.pop();
                }
                self.depth -= 1;
                self.last_open_depth = None;
                Ok(ReadResult::Token(TokenEvent::Event(Event::Close(name))))
            }
            token::SUMMARY => {
                let Some(open_depth) = self.last_open_depth else {
                    return Err(CoreError::BadDocument {
                        message: "summary token not immediately after an open token".into(),
                    });
                };
                let mut pos = start + 1;
                let Some((content_len, used)) = read_varint(&self.window, pos) else {
                    return Ok(ReadResult::NeedData);
                };
                pos += used;
                let Some((bitmap_len, used)) = read_varint(&self.window, pos) else {
                    return Ok(ReadResult::NeedData);
                };
                pos += used;
                let Some(bitmap) = self.window.get(pos..pos + bitmap_len as usize) else {
                    return Ok(ReadResult::NeedData);
                };
                let reference = self.current_reference();
                let tags = reference.decode_subset(bitmap);
                pos += bitmap_len as usize;
                self.consume(pos - start);
                // Nested summaries are encoded against this subtree's tag set
                // (recursive compression) or the full dictionary.
                let nested_ref = if self.recursive_bitmaps {
                    TagReference::from_set(&tags)
                } else {
                    TagReference::full(self.dict.len())
                };
                self.ref_stack.push((open_depth, nested_ref));
                self.last_open_depth = None;
                Ok(ReadResult::Token(TokenEvent::Summary(SubtreeSummary {
                    content_len,
                    tags,
                })))
            }
            other => Err(CoreError::BadDocument {
                // alloc: cold — unknown-token error path.
                message: format!(
                    "unknown token marker 0x{other:02X} at offset {}",
                    self.cursor
                ),
            }),
        }
    }

    fn consume(&mut self, bytes: usize) {
        self.cursor += bytes as u64;
        let keep_from = (self.cursor - self.window_start) as usize;
        self.window.drain(..keep_from);
        self.window_start = self.cursor;
    }
}

/// Convenience helper: decodes a full in-memory plaintext (dictionary +
/// tokens) into events, honouring no skip. Used by tests and by the DOM
/// baseline, which by definition reads everything.
pub fn decode_all(plaintext: &[u8], recursive_bitmaps: bool) -> Result<Vec<Event>, CoreError> {
    let (dict, dict_len) = TagDict::decode(plaintext).ok_or_else(|| CoreError::BadDocument {
        message: "cannot decode the tag dictionary".into(),
    })?;
    let mut reader = TokenReader::new(
        dict,
        dict_len as u64,
        plaintext.len() as u64,
        recursive_bitmaps,
    );
    reader.supply(0, plaintext)?;
    let mut events = Vec::new();
    loop {
        match reader.next_token()? {
            ReadResult::Token(TokenEvent::Event(e)) => events.push(e),
            ReadResult::Token(TokenEvent::Summary(_)) => {}
            ReadResult::NeedData => {
                return Err(CoreError::BadDocument {
                    message: "truncated token stream".into(),
                })
            }
            ReadResult::End => break,
        }
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skipindex::encode::{DocumentEncoder, EncoderConfig};
    use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};
    use sdds_xml::Document;

    fn encode(doc: &Document, config: EncoderConfig) -> (Vec<u8>, TagDict) {
        let enc = DocumentEncoder::new(config).encode(doc);
        (enc.plaintext(), enc.dict)
    }

    #[test]
    fn roundtrip_small_document() {
        let doc = Document::parse("<a x=\"1\"><b>hello &amp; goodbye</b><c/></a>").unwrap();
        let (plaintext, _) = encode(&doc, EncoderConfig::default());
        let events = decode_all(&plaintext, true).unwrap();
        assert_eq!(events, doc.to_events());
    }

    #[test]
    fn roundtrip_generated_documents_with_and_without_index() {
        for config in [EncoderConfig::default(), EncoderConfig::without_index()] {
            let doc = generator::hospital(&HospitalProfile::default(), &GeneratorConfig::default());
            let (plaintext, _) = encode(&doc, config);
            let events = decode_all(&plaintext, config.recursive_bitmaps).unwrap();
            assert_eq!(events, doc.to_events());
        }
    }

    #[test]
    fn incremental_supply_in_small_pieces() {
        let doc = generator::hospital(
            &HospitalProfile {
                patients: 3,
                ..HospitalProfile::default()
            },
            &GeneratorConfig::default(),
        );
        let enc = DocumentEncoder::new(EncoderConfig::default()).encode(&doc);
        let plaintext = enc.plaintext();
        let (dict, dict_len) = TagDict::decode(&plaintext).unwrap();
        let mut reader = TokenReader::new(dict, dict_len as u64, plaintext.len() as u64, true);

        let mut events = Vec::new();
        let mut supplied = dict_len;
        loop {
            match reader.next_token().unwrap() {
                ReadResult::Token(TokenEvent::Event(e)) => events.push(e),
                ReadResult::Token(TokenEvent::Summary(s)) => {
                    // Text-only subtrees legitimately have an empty tag set.
                    assert!(s.content_len > 0);
                }
                ReadResult::NeedData => {
                    assert!(
                        supplied < plaintext.len(),
                        "reader starved at end of stream"
                    );
                    let next = (supplied + 33).min(plaintext.len());
                    reader
                        .supply(supplied as u64, &plaintext[supplied..next])
                        .unwrap();
                    supplied = next;
                }
                ReadResult::End => break,
            }
        }
        assert_eq!(events, doc.to_events());
        // The window never holds the whole document.
        assert!(reader.window_bytes() < plaintext.len());
    }

    #[test]
    fn skipping_a_summarised_subtree_jumps_to_its_close() {
        let doc = generator::hospital(
            &HospitalProfile {
                patients: 4,
                ..HospitalProfile::default()
            },
            &GeneratorConfig::default(),
        );
        let enc = DocumentEncoder::new(EncoderConfig {
            min_index_bytes: 16,
            ..EncoderConfig::default()
        })
        .encode(&doc);
        let plaintext = enc.plaintext();
        let (dict, dict_len) = TagDict::decode(&plaintext).unwrap();
        let mut reader = TokenReader::new(dict, dict_len as u64, plaintext.len() as u64, true);
        reader.supply(0, &plaintext).unwrap();

        // Skip every patient: the remaining visible elements are the root and
        // the patient tags themselves.
        let mut seen = Vec::new();
        let mut skipped_bytes = 0u64;
        loop {
            match reader.next_token().unwrap() {
                ReadResult::Token(TokenEvent::Event(e)) => {
                    if let Event::Open { name, .. } = &e {
                        seen.push(name.clone());
                    }
                }
                ReadResult::Token(TokenEvent::Summary(s)) => {
                    // Summaries for patient elements: skip them all.
                    if *seen.last().unwrap() == "patient" {
                        skipped_bytes += s.content_len;
                        reader.skip(s.content_len);
                    }
                }
                ReadResult::NeedData => panic!("whole stream was supplied"),
                ReadResult::End => break,
            }
        }
        assert_eq!(seen.iter().filter(|n| *n == "patient").count(), 4);
        assert!(!seen.contains(&"name".to_owned()));
        assert!(skipped_bytes > plaintext.len() as u64 / 2);
        assert_eq!(reader.depth(), 0);
    }

    #[test]
    fn supply_rejects_gaps_and_ignores_stale_data() {
        let doc = Document::parse("<a><b>xx</b></a>").unwrap();
        let (plaintext, dict) = encode(&doc, EncoderConfig::default());
        let dict_len = dict.encoded_len();
        let mut reader = TokenReader::new(dict, dict_len as u64, plaintext.len() as u64, true);
        // A gap beyond the needed offset is rejected.
        assert!(reader
            .supply(plaintext.len() as u64 + 10, &[1, 2, 3])
            .is_err());
        // Stale data before the cursor is ignored.
        reader.supply(0, &plaintext[..dict_len]).unwrap();
        assert_eq!(reader.window_bytes(), 0);
        // Normal supply succeeds.
        reader.supply(0, &plaintext).unwrap();
        assert!(matches!(reader.next_token().unwrap(), ReadResult::Token(_)));
    }

    #[test]
    fn summaries_describe_descendant_tags() {
        let doc = Document::parse(
            "<r><big><x>aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa</x><y>bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb</y></big></r>",
        )
        .unwrap();
        let enc = DocumentEncoder::new(EncoderConfig {
            min_index_bytes: 8,
            ..EncoderConfig::default()
        })
        .encode(&doc);
        let plaintext = enc.plaintext();
        let (dict, dict_len) = TagDict::decode(&plaintext).unwrap();
        let x_id = dict.get("x").unwrap();
        let y_id = dict.get("y").unwrap();
        let r_id = dict.get("r").unwrap();
        let mut reader = TokenReader::new(dict, dict_len as u64, plaintext.len() as u64, true);
        reader.supply(0, &plaintext).unwrap();
        let mut summaries = Vec::new();
        loop {
            match reader.next_token().unwrap() {
                ReadResult::Token(TokenEvent::Summary(s)) => summaries.push(s),
                ReadResult::Token(_) => {}
                ReadResult::NeedData => panic!("fully supplied"),
                ReadResult::End => break,
            }
        }
        assert!(!summaries.is_empty());
        let outer = &summaries[0];
        assert!(outer.tags.contains(x_id));
        assert!(outer.tags.contains(y_id));
        assert!(!outer.tags.contains(r_id));
    }

    #[test]
    fn decode_all_rejects_truncated_stream() {
        let doc = Document::parse("<a><b>hello</b></a>").unwrap();
        let (plaintext, _) = encode(&doc, EncoderConfig::default());
        assert!(decode_all(&plaintext[..plaintext.len() - 3], true).is_err());
        assert!(decode_all(&[1, 2], true).is_err());
    }

    #[test]
    fn corrupted_marker_is_reported() {
        let doc = Document::parse("<a><b>hello</b></a>").unwrap();
        let (mut plaintext, dict) = encode(&doc, EncoderConfig::default());
        let dict_len = dict.encoded_len();
        plaintext[dict_len] = 0x7F; // clobber the first token marker
        let err = decode_all(&plaintext, true).unwrap_err();
        assert!(matches!(err, CoreError::BadDocument { .. }));
    }
}
