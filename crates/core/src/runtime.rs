//! Streaming execution of the rule automata (§2.3).
//!
//! "When an open or a value event is received, all the automata are checked
//! and go to their next state. Upon receiving a close event, all the automata
//! backtrack. To manage these automata efficiently, we use a stack that keeps
//! track of active states, materializing all the possible paths that can be
//! followed on the non-deterministic automata. [...] This is controlled using
//! a predicate set which records all the final states of predicates that have
//! been reached. [...] the rule is said to be pending [...]"
//!
//! [`RuleEngine`] implements exactly that machinery:
//!
//! * the **token stack** is the per-depth [`Frame`] vector: every navigational
//!   state activated by an element is recorded in that element's frame and
//!   discarded when the element closes (backtracking),
//! * the **predicate set** is the [`InstanceId`] space: every deferred
//!   predicate encountered along a navigational run spawns a *pending
//!   instance*, resolved to `true` when its predicate path reaches its final
//!   state (and its value condition holds) or to `false` when its context
//!   element closes,
//! * **pending rules** are rule matches whose status is
//!   [`MatchAlternatives`] with unresolved instances; the decision they imply
//!   is deferred by the view assembler until the instances resolve.
//!
//! The engine does **not** decide anything by itself: it annotates the event
//! stream with the rule/query matches of each node and emits instance
//! resolutions; conflict resolution and view construction happen downstream in
//! [`crate::assembler`], mirroring the sign-stack of the paper.

use std::collections::HashMap;

use sdds_xml::{Attribute, Event};
use sdds_xpath::Axis;

use crate::automaton::{CompiledPath, CompiledPredicate, RelStep, ValueCondition};
use crate::rule::{AccessRule, RuleId, Sign};

/// Identifier of a pending predicate instance (an entry of the paper's
/// *predicate set*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u32);

/// The alternatives under which a rule (or the query) matches a node: each
/// alternative is a conjunction of pending instances that must all resolve to
/// `true`; the match applies if **any** alternative holds. An empty
/// conjunction means the match holds unconditionally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchAlternatives {
    /// The alternatives.
    pub alternatives: Vec<Vec<InstanceId>>,
}

impl MatchAlternatives {
    /// Adds one alternative (a conjunction of instance ids).
    pub fn add(&mut self, conjunction: Vec<InstanceId>) {
        // An unconditional alternative makes every other alternative redundant.
        if conjunction.is_empty() {
            self.alternatives.clear();
            self.alternatives.push(conjunction);
        } else if !self.is_unconditional() {
            self.alternatives.push(conjunction);
        }
    }

    /// True if the match holds whatever the pending instances resolve to.
    pub fn is_unconditional(&self) -> bool {
        self.alternatives.iter().any(Vec::is_empty)
    }

    /// Evaluates the match against the currently known instance truths.
    /// Returns `Some(true)` / `Some(false)` when determined, `None` while at
    /// least one relevant instance is still unresolved.
    pub fn evaluate(&self, truth: &dyn Fn(InstanceId) -> Option<bool>) -> Option<bool> {
        let mut any_unknown = false;
        for alt in &self.alternatives {
            let mut all_true = true;
            let mut unknown = false;
            for &id in alt {
                match truth(id) {
                    Some(true) => {}
                    Some(false) => {
                        all_true = false;
                        break;
                    }
                    None => {
                        unknown = true;
                        all_true = false;
                    }
                }
            }
            if all_true {
                return Some(true);
            }
            if unknown {
                any_unknown = true;
            }
        }
        if any_unknown {
            None
        } else {
            Some(false)
        }
    }

    /// All instance ids mentioned by the alternatives.
    pub fn instance_ids(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.alternatives.iter().flatten().copied()
    }
}

/// A rule that reached its navigational final state on a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectMatch {
    /// The rule.
    pub rule: RuleId,
    /// Its sign.
    pub sign: Sign,
    /// Conditions under which the match actually applies.
    pub matches: MatchAlternatives,
}

/// Per-node annotation produced by the engine for `open` events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeAnnotation {
    /// Rules whose navigational path ends on this node.
    pub direct: Vec<DirectMatch>,
    /// Query match on this node, if a query is installed and its navigational
    /// path ends here.
    pub query: Option<MatchAlternatives>,
}

/// Output of the engine for one input event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineOutput {
    /// The input event, annotated for `open` events.
    Annotated {
        /// The event.
        event: Event,
        /// Node annotation (`Some` for `Open`, `None` otherwise).
        annotation: Option<NodeAnnotation>,
    },
    /// A pending predicate instance was resolved.
    Resolved {
        /// The instance.
        instance: InstanceId,
        /// Whether the predicate is satisfied.
        satisfied: bool,
    },
}

/// What a navigational run belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    Rule(usize),
    Query,
}

/// An active navigational state: `position` steps of `target` are matched, the
/// last of them by the element owning the frame this run is stored in.
#[derive(Debug, Clone)]
struct Run {
    target: Target,
    position: usize,
    deps: Vec<InstanceId>,
}

/// An active state of a predicate path instance.
#[derive(Debug, Clone)]
struct PredRun {
    instance: InstanceId,
    position: usize,
}

/// Direct-text accumulator for a value condition (`[. = "v"]`, `[c = "v"]`).
#[derive(Debug, Clone)]
struct Watcher {
    instance: InstanceId,
    condition: Option<ValueCondition>,
    buffer: String,
    saw_text: bool,
}

/// Specification of a pending relative-path predicate instance.
#[derive(Debug, Clone)]
struct PredSpec {
    steps: Vec<RelStep>,
    attribute: Option<String>,
    condition: Option<ValueCondition>,
}

/// Runtime state of a pending predicate instance.
#[derive(Debug, Clone)]
struct InstanceState {
    resolved: Option<bool>,
    #[allow(dead_code)]
    context_depth: usize,
    spec: Option<PredSpec>,
}

/// One entry of the token stack: everything activated by the element at the
/// corresponding depth.
#[derive(Debug, Default)]
struct Frame {
    name: String,
    runs: Vec<Run>,
    pred_runs: Vec<PredRun>,
    watchers: Vec<Watcher>,
    owned_instances: Vec<InstanceId>,
}

impl Frame {
    fn ram_bytes(&self) -> usize {
        self.name.len()
            + self
                .runs
                .iter()
                .map(|r| 8 + 4 * r.deps.len())
                .sum::<usize>()
            + self.pred_runs.len() * 8
            + self
                .watchers
                .iter()
                .map(|w| 8 + w.buffer.len())
                .sum::<usize>()
            + self.owned_instances.len() * 4
    }
}

/// A rule installed in the engine.
#[derive(Debug, Clone)]
pub struct EngineRule {
    /// Rule identifier.
    pub id: RuleId,
    /// Sign.
    pub sign: Sign,
    /// Compiled object path.
    pub path: CompiledPath,
}

impl EngineRule {
    /// Compiles an [`AccessRule`] for the engine.
    pub fn compile(rule: &AccessRule) -> Result<Self, crate::error::CoreError> {
        Ok(EngineRule {
            id: rule.id,
            sign: rule.sign,
            path: crate::automaton::compile(&rule.object)?,
        })
    }
}

/// Counters exposed by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events processed.
    pub events: usize,
    /// Pending predicate instances created.
    pub instances_created: usize,
    /// Navigational state activations (token stack pushes).
    pub run_activations: usize,
    /// Peak secure-RAM footprint of the engine structures, in bytes.
    pub peak_ram_bytes: usize,
}

/// The streaming automata engine.
#[derive(Debug)]
pub struct RuleEngine {
    rules: Vec<EngineRule>,
    query: Option<CompiledPath>,
    frames: Vec<Frame>,
    instances: Vec<InstanceState>,
    stats: EngineStats,
}

impl RuleEngine {
    /// Creates an engine for a set of compiled rules and an optional query.
    pub fn new(rules: Vec<EngineRule>, query: Option<CompiledPath>) -> Self {
        RuleEngine {
            rules,
            query,
            // frames[0] is the virtual document node.
            frames: vec![Frame::default()],
            instances: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    /// Installed rules.
    pub fn rules(&self) -> &[EngineRule] {
        &self.rules
    }

    /// Installed query automaton, if any.
    pub fn query(&self) -> Option<&CompiledPath> {
        self.query.as_ref()
    }

    /// Engine counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Current element depth (0 before the root opens).
    pub fn depth(&self) -> usize {
        self.frames.len() - 1
    }

    /// Positions (numbers of matched navigational steps) currently active for
    /// each installed rule, including the implicit initial position 0. The
    /// skip-index logic uses these to ask whether a rule could still progress
    /// inside an upcoming subtree.
    pub fn active_positions(&self) -> Vec<Vec<usize>> {
        let mut positions = vec![vec![0usize]; self.rules.len()];
        for frame in &self.frames {
            for run in &frame.runs {
                if let Target::Rule(i) = run.target {
                    if !positions[i].contains(&run.position) {
                        positions[i].push(run.position);
                    }
                }
            }
        }
        positions
    }

    /// Active positions of the query automaton (empty when no query is set).
    pub fn active_query_positions(&self) -> Vec<usize> {
        if self.query.is_none() {
            return Vec::new();
        }
        let mut positions = vec![0usize];
        for frame in &self.frames {
            for run in &frame.runs {
                if matches!(run.target, Target::Query) && !positions.contains(&run.position) {
                    positions.push(run.position);
                }
            }
        }
        positions
    }

    /// True if at least one pending predicate instance is unresolved.
    pub fn has_unresolved_instances(&self) -> bool {
        self.instances.iter().any(|i| i.resolved.is_none())
    }

    /// Current secure-RAM footprint of the engine structures, in bytes.
    pub fn ram_bytes(&self) -> usize {
        let frames: usize = self.frames.iter().map(Frame::ram_bytes).sum();
        let unresolved = self
            .instances
            .iter()
            .filter(|i| i.resolved.is_none())
            .count();
        // One unresolved instance costs its spec (bounded by the rule size) +
        // bookkeeping; resolved instances boil down to one bit in the
        // predicate set.
        frames + unresolved * 24 + self.instances.len() / 8
    }

    fn path_for(&self, target: Target) -> &CompiledPath {
        match target {
            Target::Rule(i) => &self.rules[i].path,
            Target::Query => self.query.as_ref().expect("query target without query"),
        }
    }

    fn resolve_instance(
        &mut self,
        id: InstanceId,
        satisfied: bool,
        outputs: &mut Vec<EngineOutput>,
    ) {
        let state = &mut self.instances[id.0 as usize];
        if state.resolved.is_none() {
            state.resolved = Some(satisfied);
            outputs.push(EngineOutput::Resolved {
                instance: id,
                satisfied,
            });
        }
    }

    fn attribute_predicate_holds(pred: &CompiledPredicate, attrs: &[Attribute]) -> bool {
        match pred {
            CompiledPredicate::Attribute { name, condition } => {
                match attrs.iter().find(|a| &a.name == name) {
                    Some(attr) => condition
                        .as_ref()
                        .map(|c| c.holds(&attr.value))
                        .unwrap_or(true),
                    None => false,
                }
            }
            _ => true,
        }
    }

    /// Creates the pending instances required by the deferred predicates of a
    /// step matched by the element currently being opened (at depth `depth`).
    fn spawn_instances(
        &mut self,
        deferred: &[CompiledPredicate],
        depth: usize,
        new_frame: &mut Frame,
    ) -> Vec<InstanceId> {
        let mut ids = Vec::with_capacity(deferred.len());
        for pred in deferred {
            let id = InstanceId(self.instances.len() as u32);
            self.stats.instances_created += 1;
            match pred {
                CompiledPredicate::SelfText { condition } => {
                    self.instances.push(InstanceState {
                        resolved: None,
                        context_depth: depth,
                        spec: None,
                    });
                    new_frame.watchers.push(Watcher {
                        instance: id,
                        condition: condition.clone(),
                        buffer: String::new(),
                        saw_text: false,
                    });
                }
                CompiledPredicate::RelPath {
                    steps,
                    attribute,
                    condition,
                } => {
                    self.instances.push(InstanceState {
                        resolved: None,
                        context_depth: depth,
                        spec: Some(PredSpec {
                            steps: steps.clone(),
                            attribute: attribute.clone(),
                            condition: condition.clone(),
                        }),
                    });
                    // The initial state of the predicate path lives in the
                    // context element's frame.
                    new_frame.pred_runs.push(PredRun {
                        instance: id,
                        position: 0,
                    });
                }
                CompiledPredicate::Attribute { .. } => {
                    unreachable!("attribute predicates are immediate")
                }
            }
            new_frame.owned_instances.push(id);
            ids.push(id);
        }
        ids
    }

    /// Processes one event and returns the engine outputs it triggers.
    pub fn process(&mut self, event: &Event) -> Vec<EngineOutput> {
        self.stats.events += 1;
        let mut outputs = Vec::new();
        match event {
            Event::Open { name, attrs } => self.process_open(name, attrs, event, &mut outputs),
            Event::Text(text) => self.process_text(text, event, &mut outputs),
            Event::Close(_) => self.process_close(event, &mut outputs),
        }
        self.stats.peak_ram_bytes = self.stats.peak_ram_bytes.max(self.ram_bytes());
        outputs
    }

    fn process_open(
        &mut self,
        name: &str,
        attrs: &[Attribute],
        event: &Event,
        outputs: &mut Vec<EngineOutput>,
    ) {
        let depth = self.frames.len(); // depth of the element being opened
        let mut new_frame = Frame {
            name: name.to_owned(),
            ..Frame::default()
        };

        // ------------------------------------------------------------------
        // 1. Navigational transitions.
        // ------------------------------------------------------------------
        // Candidate runs: the implicit initial state (position 0 at the
        // virtual document depth 0) for every automaton, plus every run stored
        // in an open ancestor's frame.
        let mut candidates: Vec<(Target, usize, usize, Vec<InstanceId>)> = Vec::new();
        for i in 0..self.rules.len() {
            candidates.push((Target::Rule(i), 0, 0, Vec::new()));
        }
        if self.query.is_some() {
            candidates.push((Target::Query, 0, 0, Vec::new()));
        }
        for (frame_depth, frame) in self.frames.iter().enumerate() {
            for run in &frame.runs {
                candidates.push((run.target, run.position, frame_depth, run.deps.clone()));
            }
        }

        let mut direct: HashMap<usize, MatchAlternatives> = HashMap::new();
        let mut query_match: Option<MatchAlternatives> = None;

        for (target, position, run_depth, deps) in candidates {
            let path = self.path_for(target);
            if position >= path.steps.len() {
                continue;
            }
            let step = &path.steps[position];
            let axis_ok = match step.axis {
                Axis::Child => run_depth == depth - 1,
                Axis::Descendant => run_depth <= depth - 1,
            };
            if !axis_ok || !step.test.matches(name) {
                continue;
            }
            if !step
                .immediate
                .iter()
                .all(|p| Self::attribute_predicate_holds(p, attrs))
            {
                continue;
            }
            // Clone the deferred predicates up front to end the borrow of
            // `self` held through `path`.
            let deferred: Vec<CompiledPredicate> = step.deferred.clone();
            let path_len = path.steps.len();
            let new_ids = self.spawn_instances(&deferred, depth, &mut new_frame);
            let mut new_deps = deps.clone();
            new_deps.extend(new_ids);

            if position + 1 == path_len {
                // Final navigational state reached: the rule/query matches this
                // node, possibly conditionally.
                match target {
                    Target::Rule(i) => {
                        direct.entry(i).or_default().add(new_deps.clone());
                    }
                    Target::Query => {
                        query_match
                            .get_or_insert_with(MatchAlternatives::default)
                            .add(new_deps.clone());
                    }
                }
            }
            if position + 1 < path_len {
                self.stats.run_activations += 1;
                new_frame.runs.push(Run {
                    target,
                    position: position + 1,
                    deps: new_deps,
                });
            }
        }

        // ------------------------------------------------------------------
        // 2. Predicate-path transitions.
        // ------------------------------------------------------------------
        let mut pred_candidates: Vec<(InstanceId, usize, usize)> = Vec::new();
        for (frame_depth, frame) in self.frames.iter().enumerate() {
            for pr in &frame.pred_runs {
                if self.instances[pr.instance.0 as usize].resolved.is_none() {
                    pred_candidates.push((pr.instance, pr.position, frame_depth));
                }
            }
        }
        for (instance, position, run_depth) in pred_candidates {
            let Some(spec) = self.instances[instance.0 as usize].spec.clone() else {
                continue;
            };
            if position >= spec.steps.len() {
                continue;
            }
            let step = &spec.steps[position];
            let axis_ok = match step.axis {
                Axis::Child => run_depth == depth - 1,
                Axis::Descendant => run_depth <= depth - 1,
            };
            if !axis_ok || !step.test.matches(name) {
                continue;
            }
            if position + 1 == spec.steps.len() {
                // Final state of the predicate path reached on this element.
                if let Some(attr_name) = &spec.attribute {
                    if let Some(attr) = attrs.iter().find(|a| &a.name == attr_name) {
                        let ok = spec
                            .condition
                            .as_ref()
                            .map(|c| c.holds(&attr.value))
                            .unwrap_or(true);
                        if ok {
                            self.resolve_instance(instance, true, outputs);
                        }
                    }
                } else if spec.condition.is_none() {
                    // Pure existence test.
                    self.resolve_instance(instance, true, outputs);
                } else {
                    // A value condition on the element's direct text: watch it.
                    new_frame.watchers.push(Watcher {
                        instance,
                        condition: spec.condition.clone(),
                        buffer: String::new(),
                        saw_text: false,
                    });
                }
            } else {
                new_frame.pred_runs.push(PredRun {
                    instance,
                    position: position + 1,
                });
            }
        }

        // ------------------------------------------------------------------
        // 3. Assemble the annotation and push the frame.
        // ------------------------------------------------------------------
        let mut annotation = NodeAnnotation {
            direct: Vec::with_capacity(direct.len()),
            query: query_match,
        };
        let mut rule_indexes: Vec<usize> = direct.keys().copied().collect();
        rule_indexes.sort_unstable();
        for i in rule_indexes {
            let matches = direct.remove(&i).expect("key collected above");
            annotation.direct.push(DirectMatch {
                rule: self.rules[i].id,
                sign: self.rules[i].sign,
                matches,
            });
        }
        self.frames.push(new_frame);
        outputs.push(EngineOutput::Annotated {
            event: event.clone(),
            annotation: Some(annotation),
        });
    }

    fn process_text(&mut self, text: &str, event: &Event, outputs: &mut Vec<EngineOutput>) {
        // Feed the watchers of the element directly containing this text.
        let depth = self.frames.len() - 1;
        let mut resolved_now: Vec<(InstanceId, bool)> = Vec::new();
        if depth >= 1 {
            let frame = &mut self.frames[depth];
            for w in &mut frame.watchers {
                if self.instances[w.instance.0 as usize].resolved.is_some() {
                    continue;
                }
                w.buffer.push_str(text);
                w.saw_text = true;
                if w.condition.is_none() && !text.trim().is_empty() {
                    // Existence of direct text is enough.
                    resolved_now.push((w.instance, true));
                }
            }
        }
        for (id, value) in resolved_now {
            self.resolve_instance(id, value, outputs);
        }
        outputs.push(EngineOutput::Annotated {
            event: event.clone(),
            annotation: None,
        });
    }

    fn process_close(&mut self, event: &Event, outputs: &mut Vec<EngineOutput>) {
        let frame = self.frames.pop().expect("close without a matching open");
        // Evaluate the direct-text watchers anchored on the closing element.
        for w in &frame.watchers {
            if self.instances[w.instance.0 as usize].resolved.is_some() {
                continue;
            }
            if let Some(condition) = &w.condition {
                if w.saw_text && condition.holds(&w.buffer) {
                    self.resolve_instance(w.instance, true, outputs);
                }
                // A failed candidate does not fail the instance: another
                // element matched by the predicate path may still satisfy it.
            }
        }
        // Instances whose context element closes without having been satisfied
        // are now definitely unsatisfied.
        for id in &frame.owned_instances {
            self.resolve_instance(*id, false, outputs);
        }
        outputs.push(EngineOutput::Annotated {
            event: event.clone(),
            annotation: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::compile_str;
    use sdds_xml::Parser;

    fn engine_for(rules: &[(&str, Sign)], query: Option<&str>) -> RuleEngine {
        let compiled: Vec<EngineRule> = rules
            .iter()
            .enumerate()
            .map(|(i, (expr, sign))| EngineRule {
                id: RuleId(i as u32),
                sign: *sign,
                path: compile_str(expr).unwrap(),
            })
            .collect();
        RuleEngine::new(compiled, query.map(|q| compile_str(q).unwrap()))
    }

    fn run(engine: &mut RuleEngine, doc: &str) -> Vec<EngineOutput> {
        let events = Parser::parse_all(doc).unwrap();
        events.iter().flat_map(|e| engine.process(e)).collect()
    }

    /// Collects, for each element (in document order), the rules that matched
    /// unconditionally on it.
    fn unconditional_matches(outputs: &[EngineOutput]) -> Vec<(String, Vec<u32>)> {
        let mut out = Vec::new();
        for o in outputs {
            if let EngineOutput::Annotated {
                event: Event::Open { name, .. },
                annotation: Some(ann),
            } = o
            {
                let rules: Vec<u32> = ann
                    .direct
                    .iter()
                    .filter(|d| d.matches.is_unconditional())
                    .map(|d| d.rule.0)
                    .collect();
                out.push((name.clone(), rules));
            }
        }
        out
    }

    fn resolutions(outputs: &[EngineOutput]) -> Vec<(u32, bool)> {
        outputs
            .iter()
            .filter_map(|o| match o {
                EngineOutput::Resolved {
                    instance,
                    satisfied,
                } => Some((instance.0, *satisfied)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn simple_child_path_matches_expected_nodes() {
        let mut e = engine_for(&[("/a/b", Sign::Permit)], None);
        let out = run(&mut e, "<a><b/><c><b/></c><b/></a>");
        let matches = unconditional_matches(&out);
        // Only the two b children of a match /a/b; the nested one does not.
        assert_eq!(
            matches,
            vec![
                ("a".into(), vec![]),
                ("b".into(), vec![0]),
                ("c".into(), vec![]),
                ("b".into(), vec![]),
                ("b".into(), vec![0]),
            ]
        );
    }

    #[test]
    fn descendant_and_wildcard_paths() {
        let mut e = engine_for(&[("//b", Sign::Permit), ("/a/*", Sign::Deny)], None);
        let out = run(&mut e, "<a><b><b/></b><c/></a>");
        let matches = unconditional_matches(&out);
        assert_eq!(
            matches,
            vec![
                ("a".into(), vec![]),
                ("b".into(), vec![0, 1]), // //b and /a/*
                ("b".into(), vec![0]),    // //b only (not a child of a)
                ("c".into(), vec![1]),    // /a/* only
            ]
        );
    }

    #[test]
    fn attribute_predicates_filter_matches_immediately() {
        let mut e = engine_for(&[("//item[@sensitive = \"true\"]", Sign::Deny)], None);
        let out = run(
            &mut e,
            "<r><item sensitive=\"true\"/><item sensitive=\"false\"/><item/></r>",
        );
        let matches = unconditional_matches(&out);
        assert_eq!(matches[1].1, vec![0]);
        assert!(matches[2].1.is_empty());
        assert!(matches[3].1.is_empty());
        // No pending instance was needed.
        assert_eq!(e.stats().instances_created, 0);
    }

    #[test]
    fn figure2_rule_is_pending_until_predicate_resolves() {
        // //b[c]/d with the c arriving *after* d: the match on d must be
        // conditional, and the instance must resolve to true later.
        let mut e = engine_for(&[("//b[c]/d", Sign::Permit)], None);
        let out = run(&mut e, "<r><b><d>x</d><c/></b></r>");
        // The d node match is conditional (no unconditional match recorded).
        let matches = unconditional_matches(&out);
        assert!(matches.iter().all(|(_, rules)| rules.is_empty()));
        // One instance created, resolved true when c opens.
        assert_eq!(e.stats().instances_created, 1);
        assert_eq!(resolutions(&out), vec![(0, true)]);
        // And the conditional match on d references that instance.
        let d_annotation = out
            .iter()
            .find_map(|o| match o {
                EngineOutput::Annotated {
                    event: Event::Open { name, .. },
                    annotation: Some(ann),
                } if name == "d" => Some(ann.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(d_annotation.direct.len(), 1);
        assert_eq!(
            d_annotation.direct[0].matches.alternatives,
            vec![vec![InstanceId(0)]]
        );
    }

    #[test]
    fn unsatisfied_predicate_resolves_false_at_context_close() {
        let mut e = engine_for(&[("//b[c]/d", Sign::Permit)], None);
        let out = run(&mut e, "<r><b><d>x</d></b><b><c/><d>y</d></b></r>");
        // First b: no c => instance resolves false at </b>.
        // Second b: c present => instance resolves true; d match conditional on it.
        let res = resolutions(&out);
        assert!(res.contains(&(0, false)));
        assert!(res.contains(&(1, true)));
        assert_eq!(e.stats().instances_created, 2);
    }

    #[test]
    fn value_condition_on_element_text() {
        let mut e = engine_for(&[("//act[date = \"2004\"]/report", Sign::Permit)], None);
        let out = run(
            &mut e,
            "<r><act><date>2004</date><report>a</report></act><act><date>2005</date><report>b</report></act></r>",
        );
        let res = resolutions(&out);
        // First act: date text matches => true. Second act: never satisfied =>
        // false at </act>.
        assert!(res.contains(&(0, true)));
        assert!(res.contains(&(1, false)));
    }

    #[test]
    fn self_text_condition() {
        let mut e = engine_for(&[("//rating[. <= 12]", Sign::Deny)], None);
        let out = run(&mut e, "<r><rating>7</rating><rating>16</rating></r>");
        let res = resolutions(&out);
        assert!(res.contains(&(0, true)));
        assert!(res.contains(&(1, false)));
    }

    #[test]
    fn query_matches_are_annotated_separately() {
        let mut e = engine_for(&[("//b", Sign::Permit)], Some("//c"));
        let out = run(&mut e, "<a><b/><c/></a>");
        let mut saw_query = false;
        for o in &out {
            if let EngineOutput::Annotated {
                event: Event::Open { name, .. },
                annotation: Some(ann),
            } = o
            {
                if name == "c" {
                    assert!(ann.query.as_ref().unwrap().is_unconditional());
                    saw_query = true;
                } else {
                    assert!(ann.query.is_none());
                }
            }
        }
        assert!(saw_query);
        assert_eq!(e.active_query_positions(), vec![0]);
    }

    #[test]
    fn active_positions_reflect_partial_matches() {
        let mut e = engine_for(&[("/a/b/c", Sign::Permit)], None);
        let events = Parser::parse_all("<a><b><c/></b></a>").unwrap();
        e.process(&events[0]); // <a>
        assert_eq!(e.active_positions(), vec![vec![0, 1]]);
        e.process(&events[1]); // <b>
        assert_eq!(e.active_positions(), vec![vec![0, 1, 2]]);
        e.process(&events[2]); // <c>
        e.process(&events[3]); // </c>
        e.process(&events[4]); // </b>
        assert_eq!(e.active_positions(), vec![vec![0, 1]]);
        e.process(&events[5]); // </a>
        assert_eq!(e.active_positions(), vec![vec![0]]);
        assert_eq!(e.depth(), 0);
    }

    #[test]
    fn backtracking_discards_runs_created_in_closed_subtrees() {
        let mut e = engine_for(&[("//b//d", Sign::Permit)], None);
        let out = run(&mut e, "<a><b><x/></b><d/></a>");
        // The d element is NOT under a b (the b closed before), so no match.
        let matches = unconditional_matches(&out);
        assert!(matches.iter().all(|(_, rules)| rules.is_empty()));
    }

    #[test]
    fn match_alternatives_evaluation() {
        let mut m = MatchAlternatives::default();
        m.add(vec![InstanceId(0), InstanceId(1)]);
        m.add(vec![InstanceId(2)]);
        let truth = |known: Vec<(u32, bool)>| {
            move |id: InstanceId| known.iter().find(|(i, _)| *i == id.0).map(|(_, v)| *v)
        };
        assert_eq!(m.evaluate(&truth(vec![])), None);
        assert_eq!(m.evaluate(&truth(vec![(0, true), (1, true)])), Some(true));
        assert_eq!(m.evaluate(&truth(vec![(2, true)])), Some(true));
        assert_eq!(
            m.evaluate(&truth(vec![(0, false), (2, false)])),
            Some(false)
        );
        assert_eq!(m.evaluate(&truth(vec![(0, false)])), None);
        // Unconditional alternative short-circuits everything.
        m.add(vec![]);
        assert!(m.is_unconditional());
        assert_eq!(m.evaluate(&truth(vec![])), Some(true));
        assert_eq!(m.instance_ids().count(), 0);
    }

    #[test]
    fn ram_accounting_grows_with_depth_and_shrinks_on_close() {
        let mut e = engine_for(&[("//a//a//a", Sign::Permit)], None);
        let deep: String = (0..10).map(|_| "<a>").collect::<String>()
            + &(0..10).map(|_| "</a>").collect::<String>();
        let events = Parser::parse_all(&deep).unwrap();
        let mut max_seen = 0usize;
        for ev in &events[..10] {
            e.process(ev);
            max_seen = max_seen.max(e.ram_bytes());
        }
        let at_peak = e.ram_bytes();
        for ev in &events[10..] {
            e.process(ev);
        }
        assert!(e.ram_bytes() < at_peak);
        assert!(e.stats().peak_ram_bytes >= max_seen);
        assert!(e.stats().run_activations > 0);
    }

    #[test]
    fn multiple_rules_matching_same_node_are_all_reported() {
        let mut e = engine_for(
            &[
                ("//patient/name", Sign::Permit),
                ("//name", Sign::Deny),
                ("/hospital/patient/name", Sign::Permit),
            ],
            None,
        );
        let out = run(&mut e, "<hospital><patient><name>x</name></patient></hospital>");
        let name_ann = out
            .iter()
            .find_map(|o| match o {
                EngineOutput::Annotated {
                    event: Event::Open { name, .. },
                    annotation: Some(ann),
                } if name == "name" => Some(ann.clone()),
                _ => None,
            })
            .unwrap();
        let rule_ids: Vec<u32> = name_ann.direct.iter().map(|d| d.rule.0).collect();
        assert_eq!(rule_ids, vec![0, 1, 2]);
    }
}
