#!/usr/bin/env bash
# CI check for the SDDS workspace: formatting, lints, tier-1 build + tests
# (with the raised property-case count), compile checks for benches and
# examples, and the bench-regression gate against BENCH_baseline.json.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> RUSTDOCFLAGS=\"-D warnings\" cargo doc --workspace --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> sdds-lint (concurrency + panic hygiene + taint + hot-path escapes)"
# The taint pass statically proves no plaintext or key type reaches the DSP
# or the obs export surface (see ARCHITECTURE.md, "Trust boundary"); the
# hot-path pass proves the per-event serving path allocation-free, with
# every remaining allocation carrying a justified `// alloc:` annotation
# (ARCHITECTURE.md, "Hot path"). The machine-readable findings land next to
# the human report so CI logs and tooling see the same thing.
mkdir -p target
if ! cargo run -q -p sdds-lint -- --json target/sdds-lint.json; then
    echo "sdds-lint findings (also at target/sdds-lint.json):" >&2
    cat target/sdds-lint.json >&2
    exit 1
fi

echo "==> cargo test -q (SDDS_PROP_CASES=256)"
SDDS_PROP_CASES=256 cargo test -q

echo "==> model check (--cfg sdds_check, SDDS_CHECK_BRANCHES=${SDDS_CHECK_BRANCHES:-60000})"
# The instrumented build swaps sdds-sync onto the sdds-check shims, so the
# invariant models explore real service interleavings. A separate target dir
# keeps the differently-flagged artifacts from thrashing the main cache.
CARGO_TARGET_DIR=target/check RUSTFLAGS="--cfg sdds_check" \
    SDDS_CHECK_BRANCHES="${SDDS_CHECK_BRANCHES:-60000}" \
    cargo test -q -p sdds-check

echo "==> concurrent-read property test (SDDS_PROP_CASES=512)"
# The readers-vs-republisher race deserves a deeper soak than the default
# suite gives it: 512 completed reads under continuous republishing.
SDDS_PROP_CASES=512 cargo test -q --test concurrent_reads

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --no-run

echo "==> cargo build --release --examples"
cargo build --release --examples

echo "==> obs snapshot (harness --obs --obs-only: E10/E11 telemetry report)"
# The telemetry pass re-runs the E10 hot-document and E11 actor workloads
# with observability wired in and dumps the merged ObsSnapshot + flight
# recorder. The report must be valid JSON and carry one family from each
# instrumented layer (serve, scheduler, actors, session, errors).
obs_report="$(mktemp -t sdds-obs-XXXXXX.json)"
trap 'rm -f "$obs_report"' EXIT
target/release/harness --obs "$obs_report" --obs-only
if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$obs_report"
fi
for family in dsp.serve.requests dsp.serve.latency_ns sched.steps \
    actors.dispatches session.apdu_round_trips sdds-obs-flight-v1; do
    grep -qF "$family" "$obs_report" ||
        { echo "obs report is missing \`$family\`" >&2; exit 1; }
done

echo "==> scripts/bench_gate.sh"
# Gates the E1/E9 hardware-measured keys plus the simulated-clock E10/E11
# keys (aggregate events/s, scaling and replication ratios, actor-vs-thread
# speedup). On foreign hardware, SDDS_BENCH_GATE=ram narrows the gate to the
# machine-independent set — peak RAM and every E10/E11 key.
scripts/bench_gate.sh

echo "CI checks passed."
