//! Demo application 2: selective dissemination of a stream over an unsecured
//! channel (push mode), with parental control and channel subscriptions
//! enforced inside each subscriber's smart card — through the facade-based
//! app of `sdds::apps::dissem`.
//!
//! Run with: `cargo run --example selective_dissemination`

use std::time::Duration;

use sdds::apps::dissem::DisseminationApp;
use sdds::{AccessPolicy, CardProfile, RuleSet, SddsError};
use sdds_xml::generator::{self, GeneratorConfig, StreamProfile};

fn main() -> Result<(), SddsError> {
    // A broadcast stream of items (news, sports, finance, movies) carrying a
    // rating and an opaque payload.
    let stream = generator::stream(
        &StreamProfile {
            items: 20,
            payload_len: 128,
            ..StreamProfile::default()
        },
        &GeneratorConfig::default(),
    );

    // Subscriber-specific policies:
    //  * the child: open world minus anything rated above 12 (parental control),
    //  * the trader: closed world, only the finance channel is subscribed.
    let rules = RuleSet::parse(
        "-, child, //item[rating > 12]\n\
         +, trader, //item[@channel = \"finance\"]",
    )?;

    let app = DisseminationApp::new(
        b"broadcast-2005",
        &stream,
        rules,
        CardProfile::modern_secure_element(),
    );
    println!(
        "publisher broadcast {} encrypted items ({} bytes in total)",
        app.channel().published().len(),
        app.channel().broadcast_bytes()
    );

    let child = app.consume_with_card("child", AccessPolicy::open())?;
    let trader = app.consume_in_process("trader", AccessPolicy::paper())?;

    for report in [&child, &trader] {
        println!(
            "\nsubscriber `{}`: {} items delivered, {} blocked",
            report.subscriber, report.items_delivered, report.items_blocked
        );
        println!(
            "  worst per-item latency on the e-gate model: {:.1} ms (total {:.1} s)",
            report.max_item_latency.as_secs_f64() * 1e3,
            report.total_latency.as_secs_f64()
        );
        println!(
            "  sustains a 1 item/2s stream in real time: {}",
            report.meets_real_time(Duration::from_secs(2))
        );
    }
    println!(
        "\nbytes skipped inside the trader's SOE thanks to the index: {}",
        trader.bytes_skipped
    );
    Ok(())
}
