//! Regression tests for the torn-read-on-republish bug: a session that
//! pinned revision `r` at open must fail with the **typed**
//! `SddsError::StaleRevision` when the document is republished under it —
//! never with a Merkle/crypto verification error (the pre-pinning symptom:
//! chunks of the new upload verified against the old header's root), and
//! never with silently mixed content.

use sdds::{Client, Publisher, RuleSet, SddsError};
use sdds_dsp::service::Schedulable;
use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};
use sdds_xml::Document;

fn rules() -> RuleSet {
    RuleSet::parse("+, doctor, //patient\n-, doctor, //patient/ssn").unwrap()
}

fn hospital(patients: usize) -> Document {
    generator::hospital(
        &HospitalProfile {
            patients,
            ..HospitalProfile::default()
        },
        &GeneratorConfig::default(),
    )
}

fn publisher() -> Publisher {
    // Small chunks so streams take many fetches — plenty of room to
    // republish "mid-stream".
    let publisher = Publisher::builder(b"hospital-2005")
        .rules(rules())
        .chunk_size(128)
        .build()
        .unwrap();
    publisher.publish("folders", &hospital(4)).unwrap();
    publisher
}

#[test]
fn view_stream_republish_between_next_calls_is_a_typed_stale_revision() {
    let publisher = publisher();
    let client = Client::builder("doctor").provision(&publisher).unwrap();
    let mut stream = client.open_stream("folders").unwrap();
    assert_eq!(stream.revision(), 0);

    // Pull one event, then replace the document under the open stream.
    let first = stream.next().expect("stream has events");
    first.unwrap();
    publisher.publish("folders", &hospital(5)).unwrap();

    // The next fetch must surface the typed staleness signal — explicitly
    // not a crypto/Merkle error, which is what this bug used to look like.
    let outcome = stream.find_map(Result::err);
    match outcome {
        Some(SddsError::StaleRevision {
            doc_id,
            pinned: 0,
            current: 1,
        }) => assert_eq!(doc_id, "folders"),
        Some(other) => panic!("expected StaleRevision, got {other:?}"),
        // The SOE may have buffered every remaining chunk already; only a
        // stream that still needed a fetch can observe the republish. Force
        // one more open→fetch cycle to prove the typed path end to end.
        None => {
            let mut reopened = client.open_stream("folders").unwrap();
            assert_eq!(reopened.revision(), 1);
            reopened.next().expect("reopened stream serves").unwrap();
        }
    }

    // A fresh stream pins the new revision and reads it cleanly.
    let view = client
        .open_stream("folders")
        .unwrap()
        .collect_view()
        .unwrap();
    assert!(view.contains("<patient"));
}

#[test]
fn card_session_republish_mid_pull_is_a_typed_stale_revision() {
    let publisher = publisher();
    let client = Client::builder("doctor").provision(&publisher).unwrap();

    // Step the session just past its start (rules + header pinned at
    // revision 0), then republish and drive it to completion.
    let mut session = client.connect("folders").unwrap();
    Schedulable::step(&mut session, 1).unwrap();
    assert_eq!(session.revision(), Some(0));
    publisher.publish("folders", &hospital(5)).unwrap();

    let err = session.run().expect_err("pinned session must go stale");
    let err = SddsError::from(err);
    assert!(
        matches!(
            err,
            SddsError::StaleRevision {
                pinned: 0,
                current: 1,
                ..
            }
        ),
        "expected StaleRevision, got {err:?}"
    );

    // `authorized_view` (a fresh session) pins revision 1 and succeeds.
    assert!(client
        .authorized_view("folders")
        .unwrap()
        .contains("<patient"));
}

#[test]
fn scheduler_reports_carry_the_typed_failure_too() {
    let publisher = publisher();
    let client = Client::builder("doctor").provision(&publisher).unwrap();
    let mut session = client.connect("folders").unwrap();
    Schedulable::step(&mut session, 1).unwrap();
    publisher.publish("folders", &hospital(5)).unwrap();

    let report = sdds::SessionScheduler::new(2, 2).run(vec![session]);
    let failures = report.failures();
    assert_eq!(failures.len(), 1);
    assert!(failures[0].1.contains("republished"), "{}", failures[0].1);
    // Beyond the transported message, the session keeps the typed error.
    let failed = &report.finished[0];
    assert!(matches!(
        failed.session.failure(),
        Some(sdds_proxy::ProxyError::Core(
            sdds_core::CoreError::StaleRevision { .. }
        ))
    ));
}

#[test]
fn missing_documents_and_rules_are_typed_not_found() {
    let publisher = publisher();
    let client = Client::builder("doctor").provision(&publisher).unwrap();
    let err = client.authorized_view("nope").unwrap_err();
    assert!(
        matches!(err, SddsError::NotFound { ref doc_id } if doc_id == "nope"),
        "expected NotFound, got {err:?}"
    );

    // A subject provisioned against a different community has no blob on
    // this service: typed NoRulesForSubject, distinguishable from NotFound.
    let stranger = Client::builder("stranger")
        .service(std::sync::Arc::clone(publisher.service()))
        .provision(&Publisher::new(b"other-community", RuleSet::new()))
        .unwrap();
    // (`provision` against `other-community` uploaded the blob to *this*
    // service — remove the document's blobs by republishing with cleared
    // rules to simulate an unprovisioned subject.)
    publisher.service().put_document_with(
        sdds_core::secdoc::SecureDocumentBuilder::new("folders", publisher.server().document_key())
            .build(&hospital(4)),
        true,
    );
    let err = stranger.authorized_view("folders").unwrap_err();
    assert!(
        matches!(
            err,
            SddsError::NoRulesForSubject { ref subject, .. } if subject == "stranger"
        ),
        "expected NoRulesForSubject, got {err:?}"
    );
}

#[test]
fn zero_shards_is_a_build_time_config_error_at_the_facade() {
    let err = Publisher::builder(b"hospital-2005")
        .rules(rules())
        .shards(0)
        .build()
        .expect_err(".shards(0) must be rejected at build time");
    assert!(matches!(err, SddsError::Config(_)), "got {err:?}");
    assert!(err.to_string().contains("shards"));

    let err = Publisher::builder(b"hospital-2005")
        .replicate(0)
        .build()
        .expect_err(".replicate(0) must be rejected at build time");
    assert!(matches!(err, SddsError::Config(_)), "got {err:?}");

    // The lower-level store documents (and keeps) the clamp instead: the
    // facade is the layer that turns the degenerate request into an error.
    assert_eq!(sdds_dsp::ShardedStore::new(0).shard_count(), 1);
}

#[test]
fn replicated_documents_serve_byte_identical_views() {
    // Replication is a serving-layout knob: it must never change content.
    let plain = Publisher::builder(b"hospital-2005")
        .rules(rules())
        .shards(16)
        .chunk_size(128)
        .build()
        .unwrap();
    let replicated = Publisher::builder(b"hospital-2005")
        .rules(rules())
        .shards(16)
        .chunk_size(128)
        .replicate(16)
        .build()
        .unwrap();
    let doc = hospital(4);
    plain.publish("folders", &doc).unwrap();
    replicated.publish("folders", &doc).unwrap();
    assert_eq!(replicated.service().replica_shards("folders").len(), 16);
    assert_eq!(plain.service().replica_shards("folders").len(), 1);

    let a = Client::builder("doctor")
        .provision(&plain)
        .unwrap()
        .authorized_view("folders")
        .unwrap();
    let b = Client::builder("doctor")
        .provision(&replicated)
        .unwrap()
        .authorized_view("folders")
        .unwrap();
    assert_eq!(a, b);
    assert!(a.contains("<patient"));
    // The replicated pull really spread over several shards.
    let serving = replicated
        .service()
        .shard_stats()
        .iter()
        .filter(|s| s.requests > 0)
        .count();
    assert!(
        serving > 1,
        "replication should spread serving, got {serving}"
    );
}
