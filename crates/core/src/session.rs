//! Provisioning protocols between trusted parties and the SOE.
//!
//! The demo emphasises that "the tamper resistance of the access control
//! relies not only on the SOE but also on the whole environment (e.g.,
//! communication protocol, access rights update protocol, etc.)" (§1, point 2).
//! This module implements those protocols for the reproduction:
//!
//! * [`ProtectedRules`] — access-control rules travel from the rule issuer to
//!   the SOE (possibly through the untrusted DSP and terminal) encrypted and
//!   authenticated, with a version number that the SOE checks monotonically to
//!   defeat rollback to a stale, more permissive policy,
//! * [`KeyProvisioning`] — document keys are delivered wrapped under a
//!   card-specific transport key (in the demo a PKI is *simulated*; here the
//!   transport key plays that role),
//! * [`TrustedServer`] — the issuer side: holds the master secrets, produces
//!   protected rule sets and wrapped keys for a community of cards.

use sdds_crypto::hmac::{hmac_sha256, verify_mac};
use sdds_crypto::modes::{cbc_decrypt, cbc_encrypt};
use sdds_crypto::{Aes128, CryptoError, SecretKey};

use crate::error::CoreError;
use crate::rule::{RuleSet, Subject};

/// An encrypted, authenticated, versioned rule set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtectedRules {
    /// Version carried outside the ciphertext so the SOE can reject stale
    /// updates before paying for decryption; it is also bound inside the MAC.
    pub version: u64,
    /// AES-128-CBC ciphertext of the serialised rule set.
    pub ciphertext: Vec<u8>,
    /// IV of the CBC encryption.
    pub iv: [u8; 16],
    /// HMAC over version, IV and ciphertext.
    pub mac: [u8; 32],
}

impl ProtectedRules {
    fn mac_input(version: u64, iv: &[u8; 16], ciphertext: &[u8]) -> Vec<u8> {
        // alloc: startup — rule blobs seal/open at provisioning, once per session.
        let mut buf = Vec::with_capacity(8 + 16 + ciphertext.len());
        buf.extend_from_slice(&version.to_le_bytes());
        buf.extend_from_slice(iv);
        buf.extend_from_slice(ciphertext);
        buf
    }

    /// Seals `rules` under `key` (the rule-protection key of the community).
    // taint: sink — cleartext rules leave here only as an encrypted, MACed
    // blob the DSP can store but not read.
    pub fn seal(rules: &RuleSet, key: &SecretKey) -> Self {
        let payload = rules.encode();
        let enc_key = key.subkey("rules-enc");
        let mac_key = key.subkey("rules-mac");
        // A deterministic IV derived from the version keeps the pipeline
        // reproducible; versions never repeat for a given community key.
        let iv_material = hmac_sha256(mac_key.as_bytes(), &rules.version().to_le_bytes());
        let mut iv = [0u8; 16];
        iv.copy_from_slice(&iv_material[..16]);
        let cipher = Aes128::new(enc_key.as_bytes());
        let ciphertext = cbc_encrypt(&cipher, &iv, &payload);
        let mac = hmac_sha256(
            mac_key.as_bytes(),
            &Self::mac_input(rules.version(), &iv, &ciphertext),
        );
        ProtectedRules {
            version: rules.version(),
            ciphertext,
            iv,
            mac,
        }
    }

    /// Opens a protected rule set, verifying authenticity and (optionally)
    /// that it is **not older** than `minimum_version` (rollback protection).
    pub fn open(
        &self,
        key: &SecretKey,
        minimum_version: Option<u64>,
    ) -> Result<RuleSet, CoreError> {
        if let Some(min) = minimum_version {
            if self.version < min {
                return Err(CoreError::BadState {
                    // alloc: cold — tampered rule blob error path.
                    message: format!(
                        "rule set version {} is older than the installed version {min} (rollback rejected)",
                        self.version
                    ),
                });
            }
        }
        let mac_key = key.subkey("rules-mac");
        let expected = hmac_sha256(
            mac_key.as_bytes(),
            &Self::mac_input(self.version, &self.iv, &self.ciphertext),
        );
        if !verify_mac(&expected, &self.mac) {
            return Err(CryptoError::IntegrityFailure {
                context: "protected rule set".into(),
            }
            .into());
        }
        let enc_key = key.subkey("rules-enc");
        let cipher = Aes128::new(enc_key.as_bytes());
        let payload = cbc_decrypt(&cipher, &self.iv, &self.ciphertext)?;
        let mut rules = RuleSet::decode(&payload)?;
        rules.set_version(self.version);
        Ok(rules)
    }

    /// Serialises the protected rule set (what the DSP stores / the terminal
    /// forwards to the card).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 16 + 32 + 4 + self.ciphertext.len());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.iv);
        out.extend_from_slice(&self.mac);
        out.extend_from_slice(&(self.ciphertext.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.ciphertext);
        out
    }

    /// Parses a serialised protected rule set.
    pub fn decode(bytes: &[u8]) -> Result<Self, CoreError> {
        let bad = |m: &str| CoreError::BadDocument {
            // alloc: cold — malformed rule blob error path.
            message: format!("protected rules: {m}"),
        };
        if bytes.len() < 8 + 16 + 32 + 4 {
            return Err(bad("truncated"));
        }
        // lint: infallible — the minimum-length check above covers every
        // fixed-width slice here.
        let version = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        let iv: [u8; 16] = bytes[8..24].try_into().expect("16 bytes"); // lint: infallible — see above
        let mac: [u8; 32] = bytes[24..56].try_into().expect("32 bytes"); // lint: infallible — see above
        let len = u32::from_le_bytes(bytes[56..60].try_into().expect("4 bytes")) as usize; // lint: infallible — see above
        let ciphertext = bytes
            .get(60..60 + len)
            .ok_or_else(|| bad("truncated body"))?
            // alloc: startup — rule blobs decode at provisioning, once per session.
            .to_vec();
        Ok(ProtectedRules {
            version,
            ciphertext,
            iv,
            mac,
        })
    }
}

/// A document key wrapped for a specific card.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyProvisioning {
    /// Identifier the key will have in the card's key ring.
    pub key_id: u32,
    /// Wrapped (encrypted) key material.
    pub wrapped: Vec<u8>,
    /// IV of the wrapping.
    pub iv: [u8; 16],
    /// HMAC over key id, IV and wrapped material.
    pub mac: [u8; 32],
}

impl KeyProvisioning {
    fn mac_input(key_id: u32, iv: &[u8; 16], wrapped: &[u8]) -> Vec<u8> {
        // alloc: startup — key wrapping runs at provisioning, once per key.
        let mut buf = Vec::with_capacity(4 + 16 + wrapped.len());
        buf.extend_from_slice(&key_id.to_le_bytes());
        buf.extend_from_slice(iv);
        buf.extend_from_slice(wrapped);
        buf
    }

    /// Wraps `key` for a card holding `transport_key`.
    // taint: sink — the document key crosses to the card only AES-wrapped
    // and MACed under the per-card transport key.
    pub fn wrap(key_id: u32, key: &SecretKey, transport_key: &SecretKey) -> Self {
        let enc_key = transport_key.subkey("kw-enc");
        let mac_key = transport_key.subkey("kw-mac");
        let iv_material = hmac_sha256(mac_key.as_bytes(), &key_id.to_le_bytes());
        let mut iv = [0u8; 16];
        iv.copy_from_slice(&iv_material[..16]);
        let cipher = Aes128::new(enc_key.as_bytes());
        let wrapped = cbc_encrypt(&cipher, &iv, key.as_bytes());
        let mac = hmac_sha256(mac_key.as_bytes(), &Self::mac_input(key_id, &iv, &wrapped));
        KeyProvisioning {
            key_id,
            wrapped,
            iv,
            mac,
        }
    }

    /// Serialises the provisioning message (forwarded verbatim by the
    /// untrusted terminal in a `PUT_KEY` APDU).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 16 + 32 + 2 + self.wrapped.len());
        out.extend_from_slice(&self.key_id.to_le_bytes());
        out.extend_from_slice(&self.iv);
        out.extend_from_slice(&self.mac);
        out.extend_from_slice(&(self.wrapped.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.wrapped);
        out
    }

    /// Parses a provisioning message.
    pub fn decode(bytes: &[u8]) -> Result<Self, CoreError> {
        let bad = |m: &str| CoreError::BadDocument {
            // alloc: cold — malformed key blob error path.
            message: format!("key provisioning: {m}"),
        };
        if bytes.len() < 4 + 16 + 32 + 2 {
            return Err(bad("truncated"));
        }
        // lint: infallible — the minimum-length check above covers every
        // fixed-width slice here.
        let key_id = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
        let iv: [u8; 16] = bytes[4..20].try_into().expect("16 bytes"); // lint: infallible — see above
        let mac: [u8; 32] = bytes[20..52].try_into().expect("32 bytes"); // lint: infallible — see above
        let len = u16::from_le_bytes(bytes[52..54].try_into().expect("2 bytes")) as usize; // lint: infallible — see above
        let wrapped = bytes
            .get(54..54 + len)
            .ok_or_else(|| bad("truncated body"))?
            // alloc: startup — key blobs decode at provisioning, once per key.
            .to_vec();
        Ok(KeyProvisioning {
            key_id,
            wrapped,
            iv,
            mac,
        })
    }

    /// Unwraps the key on the card side.
    // taint: source — recovers the cleartext key inside the SOE after the
    // MAC check; the result never leaves the card.
    pub fn unwrap_key(&self, transport_key: &SecretKey) -> Result<SecretKey, CoreError> {
        let mac_key = transport_key.subkey("kw-mac");
        let expected = hmac_sha256(
            mac_key.as_bytes(),
            &Self::mac_input(self.key_id, &self.iv, &self.wrapped),
        );
        if !verify_mac(&expected, &self.mac) {
            return Err(CryptoError::IntegrityFailure {
                context: "wrapped key".into(),
            }
            .into());
        }
        let enc_key = transport_key.subkey("kw-enc");
        let cipher = Aes128::new(enc_key.as_bytes());
        let material = cbc_decrypt(&cipher, &self.iv, &self.wrapped)?;
        if material.len() != 16 {
            return Err(CoreError::BadDocument {
                message: "wrapped key has a bad length".into(),
            });
        }
        let mut bytes = [0u8; 16];
        bytes.copy_from_slice(&material);
        Ok(SecretKey::from_bytes(bytes))
    }
}

/// The trusted rule issuer / key manager of a community.
// taint: redacted — the derived impl delegates to SecretKey's redacting
// Debug; the rule base is policy text, not key material.
#[derive(Debug)]
pub struct TrustedServer {
    master: SecretKey,
    rules: RuleSet,
}

impl TrustedServer {
    /// Creates a server from a master secret and an initial policy.
    pub fn new(master_secret: &[u8], rules: RuleSet) -> Self {
        TrustedServer {
            master: SecretKey::derive(master_secret, "community-master"),
            rules,
        }
    }

    /// The document encryption key of the community.
    pub fn document_key(&self) -> SecretKey {
        self.master.subkey("documents")
    }

    /// The rule-protection key of the community.
    pub fn rules_key(&self) -> SecretKey {
        self.master.subkey("rules")
    }

    /// The transport key shared with the card of `subject` (stands in for the
    /// PKI-based key exchange which the demo simulates).
    pub fn transport_key_for(&self, subject: &Subject) -> SecretKey {
        self.master.subkey(&format!("transport:{}", subject.name()))
    }

    /// Current policy.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Mutable access to the policy (each change bumps the version through
    /// [`RuleSet::push`] / [`RuleSet::remove`]).
    pub fn rules_mut(&mut self) -> &mut RuleSet {
        &mut self.rules
    }

    /// Produces the protected rule set for one subject (only that subject's
    /// rules are shipped to its card).
    pub fn protected_rules_for(&self, subject: &Subject) -> ProtectedRules {
        let mut subset = self.rules.subset_for(subject);
        subset.set_version(self.rules.version());
        ProtectedRules::seal(&subset, &self.rules_key())
    }

    /// Produces the wrapped document key for one subject's card.
    pub fn provision_document_key(&self, subject: &Subject, key_id: u32) -> KeyProvisioning {
        KeyProvisioning::wrap(
            key_id,
            &self.document_key(),
            &self.transport_key_for(subject),
        )
    }

    /// Produces the wrapped rule-protection key for one subject's card.
    pub fn provision_rules_key(&self, subject: &Subject, key_id: u32) -> KeyProvisioning {
        KeyProvisioning::wrap(key_id, &self.rules_key(), &self.transport_key_for(subject))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Sign;

    fn rules() -> RuleSet {
        RuleSet::parse("+, doctor, //patient\n-, doctor, //ssn\n+, nurse, //patient/name").unwrap()
    }

    #[test]
    fn protected_rules_roundtrip() {
        let key = SecretKey::derive(b"secret", "rules");
        let mut set = rules();
        set.set_version(3);
        let sealed = ProtectedRules::seal(&set, &key);
        assert_eq!(sealed.version, 3);
        let opened = sealed.open(&key, None).unwrap();
        assert_eq!(opened.len(), 3);
        assert_eq!(opened.version(), 3);
        // Wire roundtrip too.
        let decoded = ProtectedRules::decode(&sealed.encode()).unwrap();
        assert_eq!(decoded, sealed);
        assert!(ProtectedRules::decode(&sealed.encode()[..20]).is_err());
    }

    #[test]
    fn protected_rules_detect_tampering_and_wrong_key() {
        let key = SecretKey::derive(b"secret", "rules");
        let sealed = ProtectedRules::seal(&rules(), &key);
        let mut tampered = sealed.clone();
        tampered.ciphertext[4] ^= 1;
        assert!(tampered.open(&key, None).is_err());
        let mut tampered = sealed.clone();
        tampered.version += 1;
        assert!(tampered.open(&key, None).is_err());
        let other = SecretKey::derive(b"other", "rules");
        assert!(sealed.open(&other, None).is_err());
    }

    #[test]
    fn rollback_protection_rejects_stale_versions() {
        let key = SecretKey::derive(b"secret", "rules");
        let mut old = rules();
        old.set_version(2);
        let mut new = rules();
        new.push(Sign::Deny, "nurse", "//diagnosis").unwrap();
        new.set_version(5);
        let sealed_old = ProtectedRules::seal(&old, &key);
        let sealed_new = ProtectedRules::seal(&new, &key);
        // Installing the new one after the old one is fine.
        assert!(sealed_new.open(&key, Some(2)).is_ok());
        // Re-installing the old one after the new one is a rollback.
        assert!(sealed_old.open(&key, Some(5)).is_err());
        // Same version is accepted (idempotent refresh).
        assert!(sealed_new.open(&key, Some(5)).is_ok());
    }

    #[test]
    fn key_provisioning_roundtrip_and_tamper_detection() {
        let transport = SecretKey::derive(b"pki-sim", "card-42");
        let doc_key = SecretKey::derive(b"secret", "documents");
        let wrapped = KeyProvisioning::wrap(7, &doc_key, &transport);
        assert_eq!(wrapped.key_id, 7);
        let unwrapped = wrapped.unwrap_key(&transport).unwrap();
        assert_eq!(unwrapped, doc_key);
        let mut tampered = wrapped.clone();
        tampered.wrapped[0] ^= 1;
        assert!(tampered.unwrap_key(&transport).is_err());
        let wrong = SecretKey::derive(b"pki-sim", "card-43");
        assert!(wrapped.unwrap_key(&wrong).is_err());
    }

    #[test]
    fn trusted_server_provisions_subject_specific_material() {
        let mut server = TrustedServer::new(b"community", rules());
        let doctor = Subject::new("doctor");
        let nurse = Subject::new("nurse");

        let doctor_rules = server
            .protected_rules_for(&doctor)
            .open(&server.rules_key(), None)
            .unwrap();
        assert_eq!(doctor_rules.len(), 2);
        let nurse_rules = server
            .protected_rules_for(&nurse)
            .open(&server.rules_key(), None)
            .unwrap();
        assert_eq!(nurse_rules.len(), 1);

        // Key provisioning: each card unwraps with its own transport key.
        let kp = server.provision_document_key(&doctor, 1);
        let unwrapped = kp.unwrap_key(&server.transport_key_for(&doctor)).unwrap();
        assert_eq!(unwrapped, server.document_key());
        assert!(kp.unwrap_key(&server.transport_key_for(&nurse)).is_err());

        // A policy change bumps the version seen by every subject.
        let v0 = server.rules().version();
        server
            .rules_mut()
            .push(Sign::Deny, "doctor", "//address")
            .unwrap();
        assert!(server.rules().version() > v0);
        let refreshed = server
            .protected_rules_for(&doctor)
            .open(&server.rules_key(), Some(v0))
            .unwrap();
        assert_eq!(refreshed.len(), 3);
        // Crucially: the documents themselves are untouched — no re-encryption,
        // no key redistribution (the document key is unchanged).
        assert_eq!(server.document_key(), server.document_key());
    }
}
