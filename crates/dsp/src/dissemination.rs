//! The broadcast unit of push-based selective dissemination (experiment E6).
//!
//! Trust boundary: the DSP side of dissemination is **ciphertext-only**. The
//! publisher — which holds the channel key and sees the cleartext stream —
//! lives on the trusted side, in `sdds_proxy::DisseminationChannel`; the DSP
//! only ever forwards the already-encrypted [`StreamItem`]s it receives
//! (see [`crate::service::FanOutDisseminator`]). The `sdds-lint` taint
//! analyzer enforces that no plaintext or key type appears anywhere in this
//! crate's signatures.

use sdds_core::secdoc::SecureDocument;

/// One published item of the stream.
// taint: ciphertext — sequence number plus an encrypted SecureDocument; the
// plaintext_len is a size, not content.
#[derive(Debug, Clone)]
pub struct StreamItem {
    /// Monotonic sequence number.
    pub sequence: u64,
    /// The encrypted item.
    pub document: SecureDocument,
    /// Plaintext size of the item before encryption (for throughput reports).
    pub plaintext_len: usize,
}
