//! The secure document format stored at the DSP.
//!
//! "The data are kept encrypted at the server" (§1) and the SOE "fetches the
//! appropriate encrypted XML document from the server, decrypts it, checks
//! that it has not been tampered" (§2). The format below packages the output
//! of the skip-index encoder for that purpose:
//!
//! * the plaintext (tag dictionary + token stream) is split into fixed-size
//!   **chunks**, each encrypted independently under AES-128-CTR with a
//!   deterministic per-chunk nonce — so the SOE can decrypt any chunk in
//!   isolation, which is what makes skipping possible,
//! * a **Merkle tree** over the ciphertext chunks provides tamper detection of
//!   any consumed subset of chunks; its root is authenticated by an HMAC under
//!   a key derived from the document key,
//! * a small plaintext **header** carries the identifiers, geometry and the
//!   authenticated root; the header itself is covered by the HMAC.

use std::sync::Arc;

use sdds_crypto::hmac::{hmac_sha256, verify_mac};
use sdds_crypto::merkle::{MerkleProof, MerkleTree};
use sdds_crypto::modes::{chunk_iv, ctr_apply};
use sdds_crypto::{Aes128, CryptoError, SecretKey};
use sdds_xml::Document;

use crate::error::CoreError;
use crate::skipindex::encode::{DocumentEncoder, EncodeStats, EncoderConfig};

/// Default plaintext chunk size, chosen so that one ciphertext chunk plus its
/// Merkle proof fits comfortably in the e-gate's 1 KiB of applet RAM.
pub const DEFAULT_CHUNK_SIZE: usize = 512;

/// Plaintext header of a secure document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocumentHeader {
    /// Document identifier (unique at the DSP).
    pub doc_id: String,
    /// Nonce from which per-chunk IVs are derived.
    pub nonce: [u8; 8],
    /// Plaintext chunk size in bytes (the last chunk may be shorter).
    pub chunk_size: u32,
    /// Number of chunks.
    pub chunk_count: u32,
    /// Total plaintext length (dictionary + tokens).
    pub plaintext_len: u64,
    /// Byte offset at which the token stream starts (end of the dictionary).
    pub tokens_start: u64,
    /// Whether nested summaries use recursive bitmap compression.
    pub recursive_bitmaps: bool,
    /// Merkle root over the ciphertext chunks.
    pub merkle_root: [u8; 32],
    /// HMAC over all the fields above, keyed by the document MAC key.
    pub mac: [u8; 32],
}

impl DocumentHeader {
    fn mac_input(&self) -> Vec<u8> {
        // alloc: startup — the header MAC is computed once per session open.
        let mut buf = Vec::with_capacity(64 + self.doc_id.len());
        buf.extend_from_slice(self.doc_id.as_bytes());
        buf.push(0);
        buf.extend_from_slice(&self.nonce);
        buf.extend_from_slice(&self.chunk_size.to_le_bytes());
        buf.extend_from_slice(&self.chunk_count.to_le_bytes());
        buf.extend_from_slice(&self.plaintext_len.to_le_bytes());
        buf.extend_from_slice(&self.tokens_start.to_le_bytes());
        buf.push(u8::from(self.recursive_bitmaps));
        buf.extend_from_slice(&self.merkle_root);
        buf
    }

    /// Verifies the header authenticity under the document key.
    pub fn verify(&self, key: &SecretKey) -> Result<(), CoreError> {
        let mac_key = key.subkey("doc-mac");
        let expected = hmac_sha256(mac_key.as_bytes(), &self.mac_input());
        if verify_mac(&expected, &self.mac) {
            Ok(())
        } else {
            Err(CryptoError::IntegrityFailure {
                // alloc: cold — integrity-failure error path.
                context: format!("header of document `{}`", self.doc_id),
            }
            .into())
        }
    }

    /// Serialised size of [`DocumentHeader::encode`]'s output, without
    /// building it — the DSP accounts header bytes per serve, and computing
    /// the count keeps the serving read path allocation-free.
    pub fn encoded_len(&self) -> usize {
        // magic + version + id length prefix + id + nonce + chunk_size +
        // chunk_count + plaintext_len + tokens_start + recursive_bitmaps +
        // merkle_root + mac.
        4 + 1 + 2 + self.doc_id.len() + 8 + 4 + 4 + 8 + 8 + 1 + 32 + 32
    }

    /// Serialises the header.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"SDDS");
        out.push(1); // format version
        out.extend_from_slice(&(self.doc_id.len() as u16).to_le_bytes());
        out.extend_from_slice(self.doc_id.as_bytes());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.chunk_size.to_le_bytes());
        out.extend_from_slice(&self.chunk_count.to_le_bytes());
        out.extend_from_slice(&self.plaintext_len.to_le_bytes());
        out.extend_from_slice(&self.tokens_start.to_le_bytes());
        out.push(u8::from(self.recursive_bitmaps));
        out.extend_from_slice(&self.merkle_root);
        out.extend_from_slice(&self.mac);
        out
    }

    /// Parses a header.
    pub fn decode(bytes: &[u8]) -> Result<Self, CoreError> {
        let bad = |m: &str| CoreError::BadDocument {
            // alloc: cold — malformed header error path.
            message: format!("header: {m}"),
        };
        if bytes.len() < 7 || &bytes[..4] != b"SDDS" {
            return Err(bad("bad magic"));
        }
        if bytes[4] != 1 {
            return Err(bad("unsupported version"));
        }
        let id_len = u16::from_le_bytes([bytes[5], bytes[6]]) as usize;
        let mut pos = 7usize;
        let doc_id = String::from_utf8(
            bytes
                .get(pos..pos + id_len)
                .ok_or_else(|| bad("truncated id"))?
                // alloc: startup — the header decodes once per session open.
                .to_vec(),
        )
        .map_err(|_| bad("non UTF-8 id"))?;
        pos += id_len;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], CoreError> {
            let s = bytes
                .get(*pos..*pos + n)
                .ok_or_else(|| bad("truncated header"))?;
            *pos += n;
            Ok(s)
        };
        // lint: infallible — `take(n)` returns exactly `n` bytes, so every
        // fixed-width conversion below succeeds.
        let nonce: [u8; 8] = take(&mut pos, 8)?.try_into().expect("8 bytes");
        let chunk_size = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")); // lint: infallible — see above
        let chunk_count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")); // lint: infallible — see above
        let plaintext_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")); // lint: infallible — see above
        let tokens_start = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")); // lint: infallible — see above
        let recursive_bitmaps = take(&mut pos, 1)?[0] != 0;
        let merkle_root: [u8; 32] = take(&mut pos, 32)?.try_into().expect("32 bytes"); // lint: infallible — see above
        let mac: [u8; 32] = take(&mut pos, 32)?.try_into().expect("32 bytes"); // lint: infallible — see above
        Ok(DocumentHeader {
            doc_id,
            nonce,
            chunk_size,
            chunk_count,
            plaintext_len,
            tokens_start,
            recursive_bitmaps,
            merkle_root,
            mac,
        })
    }
}

/// A fully built secure document, ready to be uploaded to the DSP.
#[derive(Debug, Clone)]
pub struct SecureDocument {
    /// Plaintext header.
    pub header: DocumentHeader,
    /// Encrypted chunks. Each chunk sits behind an `Arc` so the DSP can
    /// serve it by bumping a refcount instead of copying ciphertext per
    /// request (the chunks are immutable once built).
    pub chunks: Vec<Arc<[u8]>>,
    /// Merkle tree over the encrypted chunks (kept by the publisher / DSP to
    /// serve proofs).
    merkle: MerkleTree,
    /// Encoding statistics (index overhead etc.).
    pub encode_stats: EncodeStats,
}

impl SecureDocument {
    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Ciphertext of chunk `index`.
    pub fn chunk(&self, index: usize) -> Option<&[u8]> {
        self.chunks.get(index).map(|c| &c[..])
    }

    /// Shared handle to the ciphertext of chunk `index` — the zero-copy
    /// serving form: the DSP hands the same allocation to every requester.
    pub fn chunk_shared(&self, index: usize) -> Option<Arc<[u8]>> {
        self.chunks.get(index).map(Arc::clone)
    }

    /// Merkle proof of chunk `index`.
    pub fn proof(&self, index: usize) -> Result<MerkleProof, CoreError> {
        Ok(self.merkle.proof(index)?)
    }

    /// Total ciphertext size (what the DSP stores for the document body).
    pub fn ciphertext_len(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }

    /// Serialised size of one chunk's Merkle proof.
    pub fn proof_len(&self) -> usize {
        self.merkle.proof_len()
    }

    /// Plaintext byte range covered by chunk `index`.
    pub fn chunk_range(&self, index: usize) -> (u64, u64) {
        let start = index as u64 * u64::from(self.header.chunk_size);
        let end = (start + u64::from(self.header.chunk_size)).min(self.header.plaintext_len);
        (start, end)
    }

    /// Index of the chunk containing plaintext `offset`.
    pub fn chunk_of(&self, offset: u64) -> u32 {
        (offset / u64::from(self.header.chunk_size)) as u32
    }
}

/// Decrypts one chunk given the document key and header (used by the SOE after
/// integrity verification).
// taint: source — re-introduces cleartext from a verified ciphertext chunk;
// callable only on the card side, which holds the document key.
pub fn decrypt_chunk(
    key: &SecretKey,
    header: &DocumentHeader,
    index: u32,
    ciphertext: &[u8],
) -> Vec<u8> {
    let enc_key = key.subkey("doc-enc");
    let cipher = Aes128::new(enc_key.as_bytes());
    let iv = chunk_iv(&header.nonce, u64::from(index));
    ctr_apply(&cipher, &iv, ciphertext)
}

/// Builder for [`SecureDocument`].
#[derive(Debug, Clone)]
pub struct SecureDocumentBuilder {
    doc_id: String,
    key: SecretKey,
    chunk_size: usize,
    encoder: EncoderConfig,
    nonce: [u8; 8],
}

impl SecureDocumentBuilder {
    /// Creates a builder for document `doc_id` encrypted under `key`.
    pub fn new(doc_id: impl Into<String>, key: SecretKey) -> Self {
        let doc_id = doc_id.into();
        // The nonce only needs to be unique per (key, document); deriving it
        // from the document id keeps the whole pipeline deterministic, which
        // the experiments rely on for reproducibility.
        let digest = sdds_crypto::merkle::digest(doc_id.as_bytes());
        let mut nonce = [0u8; 8];
        nonce.copy_from_slice(&digest[..8]);
        SecureDocumentBuilder {
            doc_id,
            key,
            chunk_size: DEFAULT_CHUNK_SIZE,
            encoder: EncoderConfig::default(),
            nonce,
        }
    }

    /// Sets the plaintext chunk size.
    pub fn chunk_size(mut self, size: usize) -> Self {
        assert!(size >= 64, "chunks below 64 bytes are not supported");
        self.chunk_size = size;
        self
    }

    /// Sets the skip-index encoder configuration.
    pub fn encoder_config(mut self, config: EncoderConfig) -> Self {
        self.encoder = config;
        self
    }

    /// Encodes, chunks and encrypts `doc`.
    pub fn build(&self, doc: &Document) -> SecureDocument {
        let encoded = DocumentEncoder::new(self.encoder).encode(doc);
        let plaintext = encoded.plaintext();
        let tokens_start = encoded.dict.encoded_len() as u64;

        let enc_key = self.key.subkey("doc-enc");
        let cipher = Aes128::new(enc_key.as_bytes());
        let mut chunks = Vec::with_capacity(plaintext.len().div_ceil(self.chunk_size).max(1));
        if plaintext.is_empty() {
            chunks.push(Arc::from(&[][..]));
        } else {
            for (index, chunk) in plaintext.chunks(self.chunk_size).enumerate() {
                let iv = chunk_iv(&self.nonce, index as u64);
                chunks.push(ctr_apply(&cipher, &iv, chunk).into());
            }
        }
        let merkle = MerkleTree::build(&chunks);

        let mut header = DocumentHeader {
            doc_id: self.doc_id.clone(),
            nonce: self.nonce,
            chunk_size: self.chunk_size as u32,
            chunk_count: chunks.len() as u32,
            plaintext_len: plaintext.len() as u64,
            tokens_start,
            recursive_bitmaps: self.encoder.recursive_bitmaps,
            merkle_root: merkle.root(),
            mac: [0u8; 32],
        };
        let mac_key = self.key.subkey("doc-mac");
        header.mac = hmac_sha256(mac_key.as_bytes(), &header.mac_input());

        SecureDocument {
            header,
            chunks,
            merkle,
            encode_stats: encoded.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skipindex::decode::decode_all;
    use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};

    fn key() -> SecretKey {
        SecretKey::derive(b"community-secret", "medical-folder")
    }

    fn sample_doc() -> Document {
        generator::hospital(
            &HospitalProfile {
                patients: 5,
                ..HospitalProfile::default()
            },
            &GeneratorConfig::default(),
        )
    }

    #[test]
    fn build_verify_and_decrypt_roundtrip() {
        let doc = sample_doc();
        let secure = SecureDocumentBuilder::new("folder-42", key()).build(&doc);
        assert!(secure.chunk_count() > 1);
        assert_eq!(secure.chunk_count() as u32, secure.header.chunk_count);
        secure.header.verify(&key()).unwrap();

        // Decrypt every chunk, verify its proof, reassemble the plaintext.
        let mut plaintext = Vec::new();
        for i in 0..secure.chunk_count() {
            let chunk = secure.chunk(i).unwrap();
            secure
                .proof(i)
                .unwrap()
                .verify(chunk, &secure.header.merkle_root)
                .unwrap();
            plaintext.extend(decrypt_chunk(&key(), &secure.header, i as u32, chunk));
        }
        assert_eq!(plaintext.len() as u64, secure.header.plaintext_len);
        let events = decode_all(&plaintext, secure.header.recursive_bitmaps).unwrap();
        assert_eq!(events, doc.to_events());
    }

    #[test]
    fn header_encode_decode_roundtrip() {
        let secure = SecureDocumentBuilder::new("doc-1", key()).build(&sample_doc());
        let bytes = secure.header.encode();
        let back = DocumentHeader::decode(&bytes).unwrap();
        assert_eq!(back, secure.header);
        back.verify(&key()).unwrap();
        assert!(DocumentHeader::decode(&bytes[..10]).is_err());
        assert!(DocumentHeader::decode(b"XXXX123").is_err());
    }

    #[test]
    fn wrong_key_fails_header_verification() {
        let secure = SecureDocumentBuilder::new("doc-1", key()).build(&sample_doc());
        let other = SecretKey::derive(b"other", "k");
        assert!(secure.header.verify(&other).is_err());
    }

    #[test]
    fn tampered_header_or_chunk_is_detected() {
        let secure = SecureDocumentBuilder::new("doc-1", key()).build(&sample_doc());
        // Tampered header field.
        let mut header = secure.header.clone();
        header.chunk_size += 1;
        assert!(header.verify(&key()).is_err());
        // Tampered chunk fails its Merkle proof.
        let mut chunk = secure.chunk(1).unwrap().to_vec();
        chunk[0] ^= 0xFF;
        assert!(secure
            .proof(1)
            .unwrap()
            .verify(&chunk, &secure.header.merkle_root)
            .is_err());
        // Swapping two chunks is detected too.
        assert!(secure
            .proof(0)
            .unwrap()
            .verify(secure.chunk(1).unwrap(), &secure.header.merkle_root)
            .is_err());
    }

    #[test]
    fn chunk_geometry_helpers() {
        let secure = SecureDocumentBuilder::new("doc-1", key())
            .chunk_size(256)
            .build(&sample_doc());
        assert_eq!(secure.header.chunk_size, 256);
        let (start, end) = secure.chunk_range(0);
        assert_eq!(start, 0);
        assert_eq!(end, 256);
        assert_eq!(secure.chunk_of(0), 0);
        assert_eq!(secure.chunk_of(255), 0);
        assert_eq!(secure.chunk_of(256), 1);
        let last = secure.chunk_count() - 1;
        let (ls, le) = secure.chunk_range(last);
        assert!(le <= secure.header.plaintext_len);
        assert!(ls < le);
        assert!(secure.ciphertext_len() as u64 >= secure.header.plaintext_len);
        assert!(secure.proof_len() > 0);
    }

    #[test]
    fn different_keys_produce_different_ciphertexts() {
        let doc = sample_doc();
        let a = SecureDocumentBuilder::new("doc-1", key()).build(&doc);
        let b = SecureDocumentBuilder::new("doc-1", SecretKey::derive(b"other", "k")).build(&doc);
        assert_ne!(a.chunk(0).unwrap(), b.chunk(0).unwrap());
        // Same key and id are deterministic (reproducible experiments).
        let c = SecureDocumentBuilder::new("doc-1", key()).build(&doc);
        assert_eq!(a.chunk(0).unwrap(), c.chunk(0).unwrap());
        assert_eq!(a.header, c.header);
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn tiny_chunk_sizes_are_rejected() {
        let _ = SecureDocumentBuilder::new("doc-1", key()).chunk_size(16);
    }
}
