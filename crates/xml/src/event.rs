//! The streaming event model.
//!
//! The paper's evaluator is "fed by an event-based parser (e.g., SAX) raising
//! `open`, `value` and `close` events respectively for each opening, text and
//! closing tag in the input document" (§2.3). [`Event`] mirrors exactly that
//! model; attributes are carried on the `Open` event and follow the decision
//! taken for their element.

use std::fmt;

/// An attribute attached to an opening tag.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Attribute value (already entity-decoded).
    pub value: String,
}

impl Attribute {
    /// Creates a new attribute.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            value: value.into(),
        }
    }
}

/// A single parsing event.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Event {
    /// An opening tag `<name a="v">`.
    Open {
        /// Element name.
        name: String,
        /// Attributes, in document order.
        attrs: Vec<Attribute>,
    },
    /// Text content between tags (the paper's `value` event). Whitespace-only
    /// text nodes are not emitted by the parser.
    Text(String),
    /// A closing tag `</name>`.
    Close(String),
}

/// Discriminant of an [`Event`], convenient for statistics and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Opening tag.
    Open,
    /// Text content.
    Text,
    /// Closing tag.
    Close,
}

impl Event {
    /// Creates an `Open` event without attributes.
    pub fn open(name: impl Into<String>) -> Self {
        Event::Open {
            name: name.into(),
            attrs: Vec::new(),
        }
    }

    /// Creates an `Open` event with attributes.
    pub fn open_with(name: impl Into<String>, attrs: Vec<Attribute>) -> Self {
        Event::Open {
            name: name.into(),
            attrs,
        }
    }

    /// Creates a `Text` event.
    pub fn text(value: impl Into<String>) -> Self {
        Event::Text(value.into())
    }

    /// Creates a `Close` event.
    pub fn close(name: impl Into<String>) -> Self {
        Event::Close(name.into())
    }

    /// Returns the kind of this event.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::Open { .. } => EventKind::Open,
            Event::Text(_) => EventKind::Text,
            Event::Close(_) => EventKind::Close,
        }
    }

    /// Returns the element name for `Open`/`Close` events, `None` for text.
    pub fn name(&self) -> Option<&str> {
        match self {
            Event::Open { name, .. } | Event::Close(name) => Some(name),
            Event::Text(_) => None,
        }
    }

    /// Returns the text content for `Text` events.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Event::Text(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the attributes of an `Open` event (empty slice otherwise).
    pub fn attrs(&self) -> &[Attribute] {
        match self {
            Event::Open { attrs, .. } => attrs,
            _ => &[],
        }
    }

    /// Approximate serialised size of the event in bytes. Used by the cost
    /// model and the skip-index size accounting; it matches what [`crate::writer::Writer`]
    /// produces for compact (non-indented) output.
    pub fn serialized_len(&self) -> usize {
        match self {
            Event::Open { name, attrs } => {
                // `<` + name + attributes (` name="value"`) + `>`
                2 + name.len()
                    + attrs
                        .iter()
                        .map(|a| 4 + a.name.len() + a.value.len())
                        .sum::<usize>()
            }
            Event::Text(t) => t.len(),
            Event::Close(name) => 3 + name.len(),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Open { name, attrs } => {
                write!(f, "<{name}")?;
                for a in attrs {
                    write!(f, " {}=\"{}\"", a.name, a.value)?;
                }
                write!(f, ">")
            }
            Event::Text(t) => write!(f, "{t}"),
            Event::Close(name) => write!(f, "</{name}>"),
        }
    }
}

/// Checks that a sequence of events is *well formed*: every `Close` matches the
/// innermost `Open`, the stream ends with an empty stack, text never appears
/// outside the root, and there is exactly one root element.
pub fn is_well_formed(events: &[Event]) -> bool {
    let mut stack: Vec<&str> = Vec::new();
    let mut roots = 0usize;
    for ev in events {
        match ev {
            Event::Open { name, .. } => {
                if stack.is_empty() {
                    roots += 1;
                    if roots > 1 {
                        return false;
                    }
                }
                stack.push(name);
            }
            Event::Close(name) => match stack.pop() {
                Some(top) if top == name => {}
                _ => return false,
            },
            Event::Text(_) => {
                if stack.is_empty() {
                    return false;
                }
            }
        }
    }
    stack.is_empty() && roots == 1
}

/// Depth profile of an event stream: maximum element nesting depth.
pub fn max_depth(events: &[Event]) -> usize {
    let mut depth = 0usize;
    let mut max = 0usize;
    for ev in events {
        match ev {
            Event::Open { .. } => {
                depth += 1;
                max = max.max(depth);
            }
            Event::Close(_) => depth = depth.saturating_sub(1),
            Event::Text(_) => {}
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Event> {
        vec![
            Event::open("a"),
            Event::open_with("b", vec![Attribute::new("id", "1")]),
            Event::text("hello"),
            Event::close("b"),
            Event::close("a"),
        ]
    }

    #[test]
    fn kinds_and_accessors() {
        let evs = sample();
        assert_eq!(evs[0].kind(), EventKind::Open);
        assert_eq!(evs[2].kind(), EventKind::Text);
        assert_eq!(evs[4].kind(), EventKind::Close);
        assert_eq!(evs[0].name(), Some("a"));
        assert_eq!(evs[2].name(), None);
        assert_eq!(evs[2].as_text(), Some("hello"));
        assert_eq!(evs[1].attrs().len(), 1);
        assert_eq!(evs[0].attrs().len(), 0);
    }

    #[test]
    fn well_formedness_accepts_valid_stream() {
        assert!(is_well_formed(&sample()));
    }

    #[test]
    fn well_formedness_rejects_mismatch() {
        let evs = vec![Event::open("a"), Event::close("b")];
        assert!(!is_well_formed(&evs));
    }

    #[test]
    fn well_formedness_rejects_two_roots() {
        let evs = vec![
            Event::open("a"),
            Event::close("a"),
            Event::open("b"),
            Event::close("b"),
        ];
        assert!(!is_well_formed(&evs));
    }

    #[test]
    fn well_formedness_rejects_dangling_open() {
        let evs = vec![Event::open("a"), Event::open("b"), Event::close("b")];
        assert!(!is_well_formed(&evs));
    }

    #[test]
    fn well_formedness_rejects_toplevel_text() {
        let evs = vec![Event::text("x"), Event::open("a"), Event::close("a")];
        assert!(!is_well_formed(&evs));
    }

    #[test]
    fn max_depth_counts_nesting() {
        assert_eq!(max_depth(&sample()), 2);
        assert_eq!(max_depth(&[]), 0);
    }

    #[test]
    fn serialized_len_matches_display() {
        for ev in sample() {
            assert_eq!(ev.serialized_len(), ev.to_string().len(), "{ev:?}");
        }
    }

    #[test]
    fn display_roundtrip_shape() {
        let evs = sample();
        let text: String = evs.iter().map(|e| e.to_string()).collect();
        assert_eq!(text, "<a><b id=\"1\">hello</b></a>");
    }
}
