//! Interned tag / attribute name symbols.
//!
//! The streaming evaluator must compare element and attribute names against
//! rule automata on every event. Comparing strings per rule per event scales
//! linearly with the number of installed rules (the E1 cliff); interning every
//! name occurring in a rule to a dense `u32` [`Symbol`] turns the per-event
//! work into a single hash lookup followed by integer dispatch.
//!
//! The table is *append-only*: symbols are never removed or renumbered, so
//! identifiers captured by compiled automata stay valid across rule updates.
//! Names that never occur in any rule are not interned at all — the evaluator
//! calls [`SymbolTable::lookup`] on document tokens and treats `None` as "can
//! only advance wildcard transitions", which keeps the table bounded by the
//! rule vocabulary instead of the document vocabulary.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, the classic fast hash for short keys. The table is probed once per
/// parsed token on the evaluator hot path, where the default SipHash (keyed,
/// DoS-resistant) costs more than the probe itself; symbol tables are built
/// from trusted rule vocabularies, so the stronger hash buys nothing here.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut hash = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = hash;
    }
}

/// `HashMap` state plugging [`Fnv1a`] in.
pub type FnvState = BuildHasherDefault<Fnv1a>;

/// A dense identifier for an interned tag or attribute name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The symbol as a dense index (for bucket arrays and bitsets).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An append-only interner mapping names to dense [`Symbol`]s.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, Symbol, FnvState>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Interns a name, returning its symbol. Idempotent: interning the same
    /// name twice returns the same symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.index.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        // alloc: amortized — the first occurrence of a name allocates; repeats hit the index.
        self.names.push(name.to_owned());
        // alloc: amortized — the first occurrence of a name allocates; repeats hit the index.
        self.index.insert(name.to_owned(), sym);
        sym
    }

    /// Looks a name up without interning it. `None` means the name does not
    /// occur in any interned vocabulary.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.index.get(name).copied()
    }

    /// Resolves a symbol back to its name.
    ///
    /// # Panics
    /// Panics if the symbol was not produced by this table.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = SymbolTable::new();
        let a = t.intern("patient");
        let b = t.intern("name");
        assert_eq!(a, Symbol(0));
        assert_eq!(b, Symbol(1));
        assert_eq!(t.intern("patient"), a);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut t = SymbolTable::new();
        t.intern("a");
        assert_eq!(t.lookup("a"), Some(Symbol(0)));
        assert_eq!(t.lookup("b"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = SymbolTable::new();
        let names = ["alpha", "beta", "gamma"];
        let syms: Vec<Symbol> = names.iter().map(|n| t.intern(n)).collect();
        for (sym, name) in syms.iter().zip(names.iter()) {
            assert_eq!(t.resolve(*sym), *name);
        }
        let collected: Vec<(Symbol, &str)> = t.iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2], (Symbol(2), "gamma"));
    }
}
