//! Lock-free metric primitives and the registry that snapshots them.
//!
//! Recording is wait-free: every handle is a cheap `Arc` clone around
//! relaxed atomics, so hot paths pay one `fetch_add` per event and never
//! take a lock. The registry's mutex is touched only at registration and
//! snapshot time.

use std::fmt::Write as _;

use sdds_sync::sync::atomic::{AtomicU64, Ordering};
use sdds_sync::sync::{Arc, Mutex, MutexExt};

/// Number of power-of-two latency buckets: bucket 0 holds `{0, 1}`, bucket
/// `i` holds `[2^i, 2^(i+1))`, and the last bucket tops out near 2^48
/// nanoseconds (≈ 3.3 days) — wide enough for any latency this workspace
/// can produce.
pub const HISTOGRAM_BUCKETS: usize = 48;

/// Inclusive upper bound of histogram bucket `index`.
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        1
    } else {
        (2u64 << index.min(HISTOGRAM_BUCKETS - 1)) - 1
    }
}

/// Bucket index a recorded value falls into.
pub fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        ((63 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// A monotone event counter; cloning shares the underlying cell.
#[derive(Clone, Debug)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Default for Counter {
    fn default() -> Self {
        Counter {
            value: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Counter {
    /// A fresh, unregistered counter (useful for detached components).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// An instantaneous level (queue depth, in-flight sessions) with a
/// best-effort high-water mark; cloning shares the underlying cells.
#[derive(Clone, Debug)]
pub struct Gauge {
    value: Arc<AtomicU64>,
    peak: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            value: Arc::new(AtomicU64::new(0)),
            peak: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Gauge {
    /// A fresh, unregistered gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the current level and folds it into the high-water mark. The
    /// peak is best-effort under concurrent writers (a racing lower store
    /// can shadow a higher one); every recorded peak is some observed level.
    pub fn set(&self, level: u64) {
        self.value.store(level, Ordering::Relaxed);
        if level > self.peak.load(Ordering::Relaxed) {
            self.peak.store(level, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// High-water mark since the last reset.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Resets level and peak to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
    }
}

/// Shared state of a [`Histogram`].
#[derive(Debug)]
struct HistogramCells {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket log-scale histogram; cloning shares the underlying cells.
///
/// Recording is three relaxed `fetch_add`s plus a best-effort max update
/// (the shims expose no `fetch_max`, so a racing smaller store can shadow a
/// larger one; the reported max is always some recorded value).
#[derive(Clone, Debug)]
pub struct Histogram {
    cells: Arc<HistogramCells>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            cells: Arc::new(HistogramCells {
                buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// A fresh, unregistered histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        if let Some(bucket) = self.cells.buckets.get(bucket_index(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.cells.count.fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(value, Ordering::Relaxed);
        if value > self.cells.max.load(Ordering::Relaxed) {
            self.cells.max.store(value, Ordering::Relaxed);
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .cells
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                // alloc: cold — snapshots run on a stats scrape, not per served event.
                .collect(),
            count: self.cells.count.load(Ordering::Relaxed),
            sum: self.cells.sum.load(Ordering::Relaxed),
            max: self.cells.max.load(Ordering::Relaxed),
        }
    }

    /// Clears every bucket and the summary cells.
    pub fn reset(&self) {
        for bucket in &self.cells.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.cells.count.store(0, Ordering::Relaxed);
        self.cells.sum.store(0, Ordering::Relaxed);
        self.cells.max.store(0, Ordering::Relaxed);
    }
}

/// A plain-data copy of a histogram, mergeable and queryable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_upper_bound`]).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample (best-effort under concurrent recording).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Folds `other` into `self`: buckets, counts and sums add, max takes
    /// the larger — associative and commutative, so shard snapshots can be
    /// merged in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`): the bucket
    /// ceiling the sample at that rank falls under, clamped to the observed
    /// max. For any sample `v >= 1` the estimate `e` satisfies
    /// `v <= e < 2 * v`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return bucket_upper_bound(index).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One registered metric.
#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Clone, Debug)]
struct Entry {
    family: &'static str,
    label: Option<String>,
    metric: Metric,
}

/// The metric registry: hands out shared handles and snapshots them all.
///
/// Registration is idempotent — asking twice for the same `(family, label)`
/// returns a handle to the same cells — so detached components can register
/// lazily without coordination.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn entry(
        &self,
        family: &'static str,
        label: Option<&str>,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut entries = self.entries.lock_np();
        if let Some(found) = entries
            .iter()
            .find(|e| e.family == family && e.label.as_deref() == label)
        {
            // alloc: amortized — metric handles are Arc-backed cells; the clone is a refcount bump.
            return found.metric.clone();
        }
        let metric = make();
        entries.push(Entry {
            family,
            label: label.map(str::to_owned),
            // alloc: amortized — the label interns once per (family, label); later lookups hit the index.
            metric: metric.clone(),
        });
        metric
    }

    /// Registers (or finds) an unlabelled counter.
    pub fn counter(&self, family: &'static str) -> Counter {
        self.counter_with(family, None)
    }

    /// Registers (or finds) a counter, optionally labelled (`"shard=3"`).
    pub fn counter_with(&self, family: &'static str, label: Option<&str>) -> Counter {
        match self.entry(family, label, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            // A family re-registered under a different kind gets a detached
            // cell rather than a panic: the snapshot keeps the first kind.
            _ => Counter::new(),
        }
    }

    /// Registers (or finds) an unlabelled gauge.
    pub fn gauge(&self, family: &'static str) -> Gauge {
        match self.entry(family, None, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            _ => Gauge::new(),
        }
    }

    /// Registers (or finds) an unlabelled histogram.
    pub fn histogram(&self, family: &'static str) -> Histogram {
        match self.entry(family, None, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            _ => Histogram::new(),
        }
    }

    /// A point-in-time copy of every registered metric, sorted by
    /// `(family, label)` so the rendering is deterministic.
    pub fn snapshot(&self) -> ObsSnapshot {
        let entries = self.entries.lock_np();
        let mut snap = ObsSnapshot::default();
        for entry in entries.iter() {
            let key = MetricKey {
                // alloc: cold — snapshots run on a stats scrape, not per served event.
                family: entry.family.to_owned(),
                // alloc: cold — snapshots run on a stats scrape, not per served event.
                label: entry.label.clone(),
            };
            match &entry.metric {
                Metric::Counter(c) => snap.counters.push((key, c.get())),
                Metric::Gauge(g) => snap.gauges.push((
                    key,
                    GaugeSnapshot {
                        value: g.get(),
                        peak: g.peak(),
                    },
                )),
                Metric::Histogram(h) => snap.histograms.push((key, h.snapshot())),
            }
        }
        drop(entries);
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }

    /// Resets every registered metric to zero.
    pub fn reset(&self) {
        let entries = self.entries.lock_np();
        for entry in entries.iter() {
            match &entry.metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

/// Identity of one metric instance: family name plus optional label.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Family name (see [`crate::families`]).
    pub family: String,
    /// Instance label, e.g. `shard=3` or `error=stale_revision`.
    pub label: Option<String>,
}

impl MetricKey {
    /// `family` or `family{label}` — the JSON key form.
    pub fn render(&self) -> String {
        match &self.label {
            Some(label) => format!("{}{{{label}}}", self.family),
            None => self.family.clone(),
        }
    }
}

/// Plain-data copy of a gauge: last level plus high-water mark.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Level at snapshot time.
    pub value: u64,
    /// High-water mark since the last reset.
    pub peak: u64,
}

/// A point-in-time copy of a whole registry, mergeable across registries
/// and renderable as JSON or Prometheus-style text.
#[derive(Clone, Debug, Default)]
pub struct ObsSnapshot {
    /// Counters as `(key, value)`.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauges as `(key, snapshot)`.
    pub gauges: Vec<(MetricKey, GaugeSnapshot)>,
    /// Histograms as `(key, snapshot)`.
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
}

impl ObsSnapshot {
    /// Folds `other` into `self`: counters and histograms add, gauges take
    /// the elementwise max (a merged gauge reports the higher level and
    /// peak). All three folds are associative and commutative.
    pub fn merge(&mut self, other: &ObsSnapshot) {
        for (key, value) in &other.counters {
            match self.counters.iter_mut().find(|(k, _)| k == key) {
                Some((_, mine)) => *mine += value,
                None => self.counters.push((key.clone(), *value)),
            }
        }
        for (key, theirs) in &other.gauges {
            match self.gauges.iter_mut().find(|(k, _)| k == key) {
                Some((_, mine)) => {
                    mine.value = mine.value.max(theirs.value);
                    mine.peak = mine.peak.max(theirs.peak);
                }
                None => self.gauges.push((key.clone(), *theirs)),
            }
        }
        for (key, theirs) in &other.histograms {
            match self.histograms.iter_mut().find(|(k, _)| k == key) {
                Some((_, mine)) => mine.merge(theirs),
                None => self.histograms.push((key.clone(), theirs.clone())),
            }
        }
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Sum of a counter family across all labels.
    pub fn counter(&self, family: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.family == family)
            .map(|(_, v)| v)
            .sum()
    }

    /// One labelled counter instance, 0 when absent.
    pub fn counter_with(&self, family: &str, label: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k.family == family && k.label.as_deref() == Some(label))
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// An unlabelled gauge instance.
    pub fn gauge(&self, family: &str) -> Option<GaugeSnapshot> {
        self.gauges
            .iter()
            .find(|(k, _)| k.family == family)
            .map(|(_, g)| *g)
    }

    /// A histogram family merged across all its labels; `None` when absent.
    pub fn histogram(&self, family: &str) -> Option<HistogramSnapshot> {
        let mut merged: Option<HistogramSnapshot> = None;
        for (key, hist) in &self.histograms {
            if key.family == family {
                match merged.as_mut() {
                    Some(m) => m.merge(hist),
                    None => merged = Some(hist.clone()),
                }
            }
        }
        merged
    }

    /// Renders the snapshot as a stable, self-describing JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"sdds-obs-v1\",\n  \"counters\": {");
        for (i, (key, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {value}",
                json_escape(&key.render())
            );
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (key, gauge)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"value\": {}, \"peak\": {}}}",
                json_escape(&key.render()),
                gauge.value,
                gauge.peak
            );
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (key, hist)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let trimmed = hist
                .buckets
                .iter()
                .rposition(|&b| b != 0)
                .map(|last| &hist.buckets[..=last])
                .unwrap_or(&[]);
            let buckets: Vec<String> = trimmed.iter().map(u64::to_string).collect();
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [{}]}}",
                json_escape(&key.render()),
                hist.count,
                hist.sum,
                hist.max,
                hist.p50(),
                hist.p90(),
                hist.p99(),
                buckets.join(", ")
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders the snapshot as Prometheus-style exposition text: family
    /// names with dots folded to underscores, labels kept, histograms
    /// summarised as `quantile=`-labelled samples plus `_count` / `_sum` /
    /// `_max`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = "";
        for (key, value) in &self.counters {
            let name = prom_name(&key.family);
            if key.family != last_family {
                let _ = writeln!(out, "# TYPE {name} counter");
                last_family = &key.family;
            }
            let _ = writeln!(out, "{name}{} {value}", prom_label(key.label.as_deref()));
        }
        for (key, gauge) in &self.gauges {
            let name = prom_name(&key.family);
            let labels = prom_label(key.label.as_deref());
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name}{labels} {}", gauge.value);
            let _ = writeln!(out, "{name}_peak{labels} {}", gauge.peak);
        }
        for (key, hist) in &self.histograms {
            let name = prom_name(&key.family);
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, v) in [(0.5, hist.p50()), (0.9, hist.p90()), (0.99, hist.p99())] {
                let _ = writeln!(
                    out,
                    "{name}{} {v}",
                    prom_quantile_label(key.label.as_deref(), q)
                );
            }
            let labels = prom_label(key.label.as_deref());
            let _ = writeln!(out, "{name}_count{labels} {}", hist.count);
            let _ = writeln!(out, "{name}_sum{labels} {}", hist.sum);
            let _ = writeln!(out, "{name}_max{labels} {}", hist.max);
        }
        out
    }
}

fn prom_name(family: &str) -> String {
    family.replace(['.', '-'], "_")
}

fn prom_label(label: Option<&str>) -> String {
    match label.and_then(|l| l.split_once('=')) {
        Some((k, v)) => format!("{{{k}=\"{v}\"}}"),
        None => String::new(),
    }
}

fn prom_quantile_label(label: Option<&str>, q: f64) -> String {
    match label.and_then(|l| l.split_once('=')) {
        Some((k, v)) => format!("{{{k}=\"{v}\",quantile=\"{q}\"}}"),
        None => format!("{{quantile=\"{q}\"}}"),
    }
}

/// Escapes a string for use inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}
