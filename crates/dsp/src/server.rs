//! Pull-mode request API of the DSP.
//!
//! The terminal proxy fetches the document header, then individual encrypted
//! chunks (with their Merkle proofs) *on demand of the card*, and the protected
//! rule blob of its subject. The server counts every byte it serves — the
//! transfer-volume results of experiments E2 and E5 are read off these
//! counters on one side and off the card ledger on the other.

use sdds_core::secdoc::DocumentHeader;
use sdds_core::CoreError;
use sdds_crypto::merkle::MerkleProof;

use crate::store::DspStore;

/// Serving statistics of a DSP (one front-end, or one shard of the
/// [`crate::service::ShardedStore`]).
///
/// Every served payload is counted through exactly one of the `record_*`
/// methods below, which both the single-tenant [`DspServer`] and the sharded
/// service share — so `bytes_served` counts headers, chunks + proofs and rule
/// blobs each exactly once, and merging per-shard statistics cannot double- or
/// under-count any class of payload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests served.
    pub requests: usize,
    /// Payload bytes served (headers, chunks, proofs, rule blobs).
    pub bytes_served: usize,
    /// Chunk requests served.
    pub chunks_served: usize,
    /// Rule-blob requests served.
    pub rule_blobs_served: usize,
    /// Bytes of protected rule blobs served (a subset of `bytes_served`).
    pub rule_bytes_served: usize,
}

impl ServerStats {
    /// Records one served document header of `bytes` payload.
    pub fn record_header(&mut self, bytes: usize) {
        self.requests += 1;
        self.bytes_served += bytes;
    }

    /// Records one served chunk (ciphertext + proof) of `bytes` payload.
    pub fn record_chunk(&mut self, bytes: usize) {
        self.requests += 1;
        self.bytes_served += bytes;
        self.chunks_served += 1;
    }

    /// Records one served protected rule blob of `bytes` payload.
    pub fn record_rules(&mut self, bytes: usize) {
        self.requests += 1;
        self.bytes_served += bytes;
        self.rule_blobs_served += 1;
        self.rule_bytes_served += bytes;
    }

    /// Merges the counters of another server (or shard) into this one.
    pub fn merge(&mut self, other: &ServerStats) {
        self.requests += other.requests;
        self.bytes_served += other.bytes_served;
        self.chunks_served += other.chunks_served;
        self.rule_blobs_served += other.rule_blobs_served;
        self.rule_bytes_served += other.rule_bytes_served;
    }
}

/// Serves a document header out of `store`, accounting it on `stats`. Shared
/// by [`DspServer`] and the shards of the concurrent service so both count
/// identically.
pub(crate) fn serve_header(
    store: &DspStore,
    stats: &mut ServerStats,
    doc_id: &str,
) -> Result<DocumentHeader, CoreError> {
    let record = store.get(doc_id).ok_or_else(|| missing(doc_id))?;
    let header = record.document.header.clone();
    stats.record_header(header.encode().len());
    Ok(header)
}

/// Serves one encrypted chunk and its Merkle proof out of `store`.
pub(crate) fn serve_chunk(
    store: &DspStore,
    stats: &mut ServerStats,
    doc_id: &str,
    index: u32,
) -> Result<(Vec<u8>, MerkleProof), CoreError> {
    let record = store.get(doc_id).ok_or_else(|| missing(doc_id))?;
    let chunk = record
        .document
        .chunk(index as usize)
        .ok_or_else(|| CoreError::BadState {
            message: format!("chunk {index} out of range for `{doc_id}`"),
        })?
        .to_vec();
    let proof = record.document.proof(index as usize)?;
    stats.record_chunk(chunk.len() + proof.encode().len());
    Ok((chunk, proof))
}

/// Serves the protected rule blob of `subject` out of `store`.
pub(crate) fn serve_rules(
    store: &DspStore,
    stats: &mut ServerStats,
    doc_id: &str,
    subject: &str,
) -> Result<Vec<u8>, CoreError> {
    let record = store.get(doc_id).ok_or_else(|| missing(doc_id))?;
    let blob = record
        .rules
        .get(subject)
        .ok_or_else(|| CoreError::BadState {
            message: format!("no rules stored for subject `{subject}` on `{doc_id}`"),
        })?
        .clone();
    stats.record_rules(blob.len());
    Ok(blob)
}

fn missing(doc_id: &str) -> CoreError {
    CoreError::BadState {
        message: format!("document `{doc_id}` is not stored at this DSP"),
    }
}

/// The DSP front-end.
#[derive(Debug, Default)]
pub struct DspServer {
    store: DspStore,
    stats: ServerStats,
}

impl DspServer {
    /// Creates a server over an empty store.
    pub fn new() -> Self {
        DspServer::default()
    }

    /// Access to the underlying store (uploads).
    pub fn store_mut(&mut self) -> &mut DspStore {
        &mut self.store
    }

    /// Read access to the store.
    pub fn store(&self) -> &DspStore {
        &self.store
    }

    /// Serving statistics.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Resets the serving statistics (between experiment runs).
    pub fn reset_stats(&mut self) {
        self.stats = ServerStats::default();
    }

    /// Fetches a document header.
    pub fn fetch_header(&mut self, doc_id: &str) -> Result<DocumentHeader, CoreError> {
        serve_header(&self.store, &mut self.stats, doc_id)
    }

    /// Fetches one encrypted chunk and its Merkle proof.
    pub fn fetch_chunk(
        &mut self,
        doc_id: &str,
        index: u32,
    ) -> Result<(Vec<u8>, MerkleProof), CoreError> {
        serve_chunk(&self.store, &mut self.stats, doc_id, index)
    }

    /// Fetches the protected rule blob of `subject`.
    pub fn fetch_rules(&mut self, doc_id: &str, subject: &str) -> Result<Vec<u8>, CoreError> {
        serve_rules(&self.store, &mut self.stats, doc_id, subject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_core::rule::RuleSet;
    use sdds_core::secdoc::SecureDocumentBuilder;
    use sdds_core::session::ProtectedRules;
    use sdds_crypto::SecretKey;
    use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};

    fn server() -> DspServer {
        let mut server = DspServer::new();
        let doc = generator::hospital(
            &HospitalProfile {
                patients: 3,
                ..HospitalProfile::default()
            },
            &GeneratorConfig::default(),
        );
        let secure =
            SecureDocumentBuilder::new("folder", SecretKey::derive(b"s", "doc")).build(&doc);
        server.store_mut().put_document(secure);
        let rules = RuleSet::parse("+, doctor, //patient").unwrap();
        let sealed = ProtectedRules::seal(&rules, &SecretKey::derive(b"s", "rules"));
        server
            .store_mut()
            .put_rules("folder", "doctor", &sealed)
            .unwrap();
        server
    }

    #[test]
    fn serves_headers_chunks_and_rules_with_accounting() {
        let mut s = server();
        let header = s.fetch_header("folder").unwrap();
        assert_eq!(header.doc_id, "folder");
        let (chunk, proof) = s.fetch_chunk("folder", 0).unwrap();
        proof.verify(&chunk, &header.merkle_root).unwrap();
        let rules = s.fetch_rules("folder", "doctor").unwrap();
        assert!(!rules.is_empty());
        let stats = s.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.chunks_served, 1);
        assert!(stats.bytes_served > chunk.len());
        s.reset_stats();
        assert_eq!(s.stats().requests, 0);
    }

    #[test]
    fn rule_blob_bytes_are_counted_exactly_once() {
        let mut s = server();
        let blob = s.fetch_rules("folder", "doctor").unwrap();
        let stats = s.stats();
        assert_eq!(stats.rule_blobs_served, 1);
        assert_eq!(stats.rule_bytes_served, blob.len());
        // Rule bytes are a subset of bytes_served, not an addition to it.
        assert_eq!(stats.bytes_served, blob.len());
        let (chunk, proof) = s.fetch_chunk("folder", 0).unwrap();
        assert_eq!(
            s.stats().bytes_served,
            blob.len() + chunk.len() + proof.encode().len()
        );
        assert_eq!(s.stats().rule_bytes_served, blob.len());
    }

    #[test]
    fn stats_merge_counts_every_class_once() {
        // Two "shards" serving disjoint traffic must merge to the same totals
        // a single server accumulating both streams would report.
        let mut a = ServerStats::default();
        let mut b = ServerStats::default();
        let mut whole = ServerStats::default();
        for (stats, bytes) in [(&mut a, 100), (&mut b, 200)] {
            stats.record_header(10);
            stats.record_chunk(bytes);
            stats.record_rules(30);
            whole.record_header(10);
            whole.record_chunk(bytes);
            whole.record_rules(30);
        }
        let mut merged = ServerStats::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, whole);
        assert_eq!(merged.requests, 6);
        assert_eq!(merged.bytes_served, 10 + 100 + 30 + 10 + 200 + 30);
        assert_eq!(merged.chunks_served, 2);
        assert_eq!(merged.rule_blobs_served, 2);
        assert_eq!(merged.rule_bytes_served, 60);
        // Merging an empty shard is the identity.
        let before = merged;
        merged.merge(&ServerStats::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn unknown_objects_are_reported() {
        let mut s = server();
        assert!(s.fetch_header("nope").is_err());
        assert!(s.fetch_chunk("folder", 9999).is_err());
        assert!(s.fetch_rules("folder", "stranger").is_err());
        assert!(s.store().get("folder").is_some());
    }
}
