//! Minimal, dependency-free stand-in for the parts of the `criterion` crate
//! this workspace's `benches/e*.rs` targets use. The build environment has no
//! network access to crates.io, so the workspace vendors this stub instead of
//! the real crate.
//!
//! It actually measures: each `Bencher::iter` call runs a short warm-up, then
//! `sample_size` timed samples, and reports min/median/max per-iteration time
//! to stdout. That is enough for the benches to compile (`cargo bench
//! --no-run`), run, and produce comparable numbers, without criterion's
//! statistics, plotting, or CLI machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to the closure of `bench_function`/`bench_with_input`.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            results: Vec::with_capacity(samples),
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed run.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }

    fn report(&mut self, group: &str, id: &str) {
        if self.results.is_empty() {
            println!("{group}/{id}: no samples recorded");
            return;
        }
        self.results.sort();
        let min = self.results[0];
        let med = self.results[self.results.len() / 2];
        let max = self.results[self.results.len() - 1];
        println!(
            "{group}/{id}: min {:>12.3?}  median {:>12.3?}  max {:>12.3?}  ({} samples)",
            min,
            med,
            max,
            self.results.len()
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, mut routine: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher);
        bencher.report(&self.name, &id.id);
        self
    }

    pub fn bench_with_input<I, F, T>(&mut self, id: I, input: &T, mut routine: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
        T: ?Sized,
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher, input);
        bencher.report(&self.name, &id.id);
        self
    }

    pub fn finish(self) {}
}

/// Stub of criterion's top-level driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the stub has no CLI.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.default_sample_size);
        routine(&mut bencher);
        bencher.report("bench", id);
        self
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}
