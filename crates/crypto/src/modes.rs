//! Block-cipher modes of operation used by the secure document format.
//!
//! Documents are encrypted **chunk by chunk** so that the SOE can skip whole
//! chunks guided by the skip index: each chunk is an independent ciphertext
//! with its own IV (CBC) or counter base (CTR). PKCS#7 padding is used for
//! CBC; CTR is length-preserving.

use crate::aes::{Aes128, BLOCK_SIZE};
use crate::error::CryptoError;

/// Encrypts `plaintext` with AES-128-CBC and PKCS#7 padding.
// taint: sink — cleartext enters, PKCS#7-padded CBC ciphertext leaves.
pub fn cbc_encrypt(cipher: &Aes128, iv: &[u8; BLOCK_SIZE], plaintext: &[u8]) -> Vec<u8> {
    let padded = pkcs7_pad(plaintext);
    let mut out = Vec::with_capacity(padded.len());
    let mut prev = *iv;
    for chunk in padded.chunks(BLOCK_SIZE) {
        let mut block = [0u8; BLOCK_SIZE];
        block.copy_from_slice(chunk);
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= *p;
        }
        cipher.encrypt_block(&mut block);
        out.extend_from_slice(&block);
        prev = block;
    }
    out
}

/// Decrypts an AES-128-CBC ciphertext and strips PKCS#7 padding.
// taint: source — ciphertext in, cleartext out; SOE-side only.
pub fn cbc_decrypt(
    cipher: &Aes128,
    iv: &[u8; BLOCK_SIZE],
    ciphertext: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK_SIZE) {
        return Err(CryptoError::BadCiphertextLength {
            len: ciphertext.len(),
        });
    }
    // alloc: startup — CBC runs for key unwrap at provisioning only.
    let mut out = Vec::with_capacity(ciphertext.len());
    let mut prev = *iv;
    for chunk in ciphertext.chunks(BLOCK_SIZE) {
        let mut block = [0u8; BLOCK_SIZE];
        block.copy_from_slice(chunk);
        let saved = block;
        cipher.decrypt_block(&mut block);
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= *p;
        }
        out.extend_from_slice(&block);
        prev = saved;
    }
    pkcs7_unpad(&mut out)?;
    Ok(out)
}

/// Encrypts or decrypts `data` with AES-128-CTR (the operation is symmetric).
/// The 16-byte `nonce` is the initial counter block; the counter occupies the
/// last 8 bytes (big-endian) and is incremented per block.
pub fn ctr_apply(cipher: &Aes128, nonce: &[u8; BLOCK_SIZE], data: &[u8]) -> Vec<u8> {
    // alloc: amortized — one chunk-sized buffer per decrypted chunk; the SOE working set stays one chunk.
    let mut out = Vec::with_capacity(data.len());
    let mut counter_block = *nonce;
    // lint: infallible — an 8-byte slice of a `[u8; BLOCK_SIZE]` block.
    let mut counter = u64::from_be_bytes(counter_block[8..16].try_into().expect("8 bytes"));
    for chunk in data.chunks(BLOCK_SIZE) {
        counter_block[8..16].copy_from_slice(&counter.to_be_bytes());
        let mut keystream = counter_block;
        cipher.encrypt_block(&mut keystream);
        for (i, &b) in chunk.iter().enumerate() {
            out.push(b ^ keystream[i]);
        }
        counter = counter.wrapping_add(1);
    }
    out
}

/// Applies PKCS#7 padding to a full multiple of the block size. An empty input
/// becomes one full block of padding, so every plaintext is recoverable.
pub fn pkcs7_pad(data: &[u8]) -> Vec<u8> {
    let pad = BLOCK_SIZE - (data.len() % BLOCK_SIZE);
    let mut out = Vec::with_capacity(data.len() + pad);
    out.extend_from_slice(data);
    out.extend(std::iter::repeat_n(pad as u8, pad));
    out
}

/// Strips PKCS#7 padding in place.
pub fn pkcs7_unpad(data: &mut Vec<u8>) -> Result<(), CryptoError> {
    let &last = data.last().ok_or(CryptoError::BadPadding)?;
    let pad = last as usize;
    if pad == 0 || pad > BLOCK_SIZE || pad > data.len() {
        return Err(CryptoError::BadPadding);
    }
    if !data[data.len() - pad..].iter().all(|&b| b == last) {
        return Err(CryptoError::BadPadding);
    }
    data.truncate(data.len() - pad);
    Ok(())
}

/// Derives a deterministic per-chunk IV/nonce from a document nonce and a chunk
/// index. Deterministic IVs keep the secure-document format self-describing
/// (the SOE can decrypt any chunk knowing only the document key, the document
/// nonce and the chunk index found in the skip index).
pub fn chunk_iv(document_nonce: &[u8; 8], chunk_index: u64) -> [u8; BLOCK_SIZE] {
    let mut iv = [0u8; BLOCK_SIZE];
    iv[..8].copy_from_slice(document_nonce);
    iv[8..].copy_from_slice(&chunk_index.to_be_bytes());
    iv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher() -> Aes128 {
        Aes128::new(&[0x42; 16])
    }

    #[test]
    fn cbc_roundtrip_various_lengths() {
        let c = cipher();
        let iv = [9u8; 16];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 100, 1000] {
            let plain: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let ct = cbc_encrypt(&c, &iv, &plain);
            assert_eq!(ct.len() % BLOCK_SIZE, 0);
            assert!(ct.len() > plain.len().saturating_sub(1));
            let back = cbc_decrypt(&c, &iv, &ct).unwrap();
            assert_eq!(back, plain, "roundtrip failed for length {len}");
        }
    }

    #[test]
    fn cbc_detects_truncated_ciphertext() {
        let c = cipher();
        let iv = [0u8; 16];
        let ct = cbc_encrypt(&c, &iv, b"hello world, this is a test");
        assert!(matches!(
            cbc_decrypt(&c, &iv, &ct[..ct.len() - 1]),
            Err(CryptoError::BadCiphertextLength { .. })
        ));
        assert!(matches!(
            cbc_decrypt(&c, &iv, &[]),
            Err(CryptoError::BadCiphertextLength { .. })
        ));
    }

    #[test]
    fn cbc_wrong_key_or_iv_fails_or_garbles() {
        let c = cipher();
        let other = Aes128::new(&[0x43; 16]);
        let iv = [1u8; 16];
        let plain = b"sensitive medical record".to_vec();
        let ct = cbc_encrypt(&c, &iv, &plain);
        // Wrong key: padding check almost certainly fails; if it does not, the
        // plaintext must still differ.
        match cbc_decrypt(&other, &iv, &ct) {
            Err(CryptoError::BadPadding) => {}
            Ok(garbled) => assert_ne!(garbled, plain),
            Err(e) => panic!("unexpected error {e}"),
        }
        // Wrong IV only garbles the first block.
        let wrong_iv = [2u8; 16];
        if let Ok(garbled) = cbc_decrypt(&c, &wrong_iv, &ct) {
            assert_ne!(garbled, plain);
        }
    }

    #[test]
    fn ctr_roundtrip_and_symmetry() {
        let c = cipher();
        let nonce = chunk_iv(&[1, 2, 3, 4, 5, 6, 7, 8], 3);
        let plain: Vec<u8> = (0..100).collect();
        let ct = ctr_apply(&c, &nonce, &plain);
        assert_eq!(ct.len(), plain.len());
        assert_ne!(ct, plain);
        let back = ctr_apply(&c, &nonce, &ct);
        assert_eq!(back, plain);
    }

    #[test]
    fn ctr_different_chunks_use_different_keystreams() {
        let c = cipher();
        let plain = vec![0u8; 64];
        let ct0 = ctr_apply(&c, &chunk_iv(&[0; 8], 0), &plain);
        let ct1 = ctr_apply(&c, &chunk_iv(&[0; 8], 1), &plain);
        assert_ne!(ct0, ct1);
    }

    #[test]
    fn pkcs7_pad_unpad_edge_cases() {
        assert_eq!(pkcs7_pad(b"").len(), 16);
        assert_eq!(pkcs7_pad(&[0u8; 16]).len(), 32);
        let mut v = pkcs7_pad(b"abc");
        pkcs7_unpad(&mut v).unwrap();
        assert_eq!(v, b"abc");

        let mut bad = vec![1u8, 2, 3, 0];
        assert_eq!(pkcs7_unpad(&mut bad), Err(CryptoError::BadPadding));
        let mut bad = vec![5u8, 5, 5, 5]; // claims 5 bytes of padding in a 4-byte buffer
        assert_eq!(pkcs7_unpad(&mut bad), Err(CryptoError::BadPadding));
        let mut bad: Vec<u8> = vec![];
        assert_eq!(pkcs7_unpad(&mut bad), Err(CryptoError::BadPadding));
        let mut bad = vec![2u8, 3u8, 2u8, 3u8]; // inconsistent padding bytes
        assert_eq!(pkcs7_unpad(&mut bad), Err(CryptoError::BadPadding));
    }

    #[test]
    fn chunk_iv_is_unique_per_chunk() {
        let a = chunk_iv(&[7; 8], 0);
        let b = chunk_iv(&[7; 8], 1);
        let c = chunk_iv(&[8; 8], 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a[..8], [7; 8]);
    }
}
