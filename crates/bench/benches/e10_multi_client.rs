//! E10 — multi-client DSP service: K cards round-robined over the sharded
//! store. The wall time measured here is the *functional* cost of running the
//! scheduler and the card emulations; the scaling claims of E10 live on the
//! deterministic simulated clock and are reported by the harness
//! (`e10.clients_*.shards_*` keys) and pinned by
//! `tests/multi_client_service.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use sdds_bench::workloads::{hot_document, multi_client, HotDocumentConfig, MultiClientConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_multi_client");
    group.sample_size(10);
    for shards in [1usize, 16] {
        group.bench_function(format!("clients_8_shards_{shards}"), |b| {
            b.iter(|| {
                let outcome = multi_client(MultiClientConfig::new(8, shards));
                outcome.total_events
            })
        });
    }
    group.bench_function("clients_64_shards_16", |b| {
        b.iter(|| {
            let outcome = multi_client(MultiClientConfig::new(64, 16));
            outcome.events_per_s()
        })
    });
    // The hot-document scenario: one folder, every client hammers it. The
    // harness reports the gated simulated metrics (`e10.hot.*`); this bench
    // only tracks the functional (wall clock) cost of the replicated run.
    group.bench_function("hot_clients_64_replicas_16", |b| {
        b.iter(|| {
            let outcome = hot_document(HotDocumentConfig::new(64, 16, 16));
            outcome.events_per_s()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
