//! XPath fragment **XP{[],*,//}** used by SDDS access-control rules and queries.
//!
//! The paper (§2.2) restricts rule objects and queries to "a rather robust
//! subset of XPath [...] consist\[ing\] of node tests, the child axis (/), the
//! descendant axis (//), wildcards (*) and predicates or branches [...]".
//! This crate provides:
//!
//! * [`ast`] — the abstract syntax tree of that fragment (plus text / attribute
//!   comparison predicates, which the underlying access-control models of
//!   Bertino and Samarati both use),
//! * [`lexer`] / [`parser`] — a hand-written recursive-descent parser,
//! * [`eval`] — a reference evaluator over the in-memory [`sdds_xml::Document`]
//!   tree, used as the oracle for the streaming engine and by the baselines,
//! * [`tagset`] — static analysis of a path against a tag vocabulary, used by
//!   the skip index to discard rules that cannot apply inside a subtree.

#![forbid(unsafe_code)]

pub mod ast;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod tagset;

pub use ast::{Axis, Comparison, NodeTest, Path, Predicate, PredicateTarget, Step};
pub use error::ParseError;
pub use eval::evaluate;
pub use parser::parse;
