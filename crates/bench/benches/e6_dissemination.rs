//! E6 — push-mode selective dissemination (parental control filtering).
use criterion::{criterion_group, criterion_main, Criterion};
use sdds::apps::dissem::DisseminationApp;
use sdds_bench::workloads;
use sdds_card::CardProfile;

fn bench(c: &mut Criterion) {
    let stream = workloads::stream(10);
    let (rules, policy) = workloads::parental_rules();
    let app = DisseminationApp::new(
        b"bench",
        &stream,
        rules,
        CardProfile::modern_secure_element(),
    );
    let mut group = c.benchmark_group("e6_dissemination");
    group.sample_size(10);
    group.bench_function("filter_10_items", |b| {
        b.iter(|| {
            app.consume_in_process("child", policy)
                .unwrap()
                .items_delivered
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
