//! Terminal ↔ card communication channel model.
//!
//! The e-gate card of the demo exchanges data at roughly **2 KB/s** over the
//! APDU link, which together with on-card decryption is one of "the two
//! limiting factors of the target architecture" (§2.3). The channel model
//! converts transferred bytes and APDU round-trips into simulated time and
//! keeps byte counters in both directions, so that every experiment can report
//! "bytes shipped to the card" and "time spent on the wire" exactly.

use std::time::Duration;

/// Static parameters of a channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelModel {
    /// Sustained throughput, bytes per second.
    pub bytes_per_second: f64,
    /// Fixed latency charged per APDU exchange (command + response pair).
    pub per_apdu_latency: Duration,
    /// Maximum data payload per APDU.
    pub max_apdu_data: usize,
}

impl ChannelModel {
    /// The e-gate profile of the demo: 2 KB/s, 2 ms per exchange, short APDUs.
    pub fn egate() -> Self {
        ChannelModel {
            bytes_per_second: 2048.0,
            per_apdu_latency: Duration::from_millis(2),
            max_apdu_data: 255,
        }
    }

    /// A contact-less / USB-class channel (two orders of magnitude faster),
    /// used in the ablation that asks how much of the skip-index benefit
    /// remains when the channel stops being the bottleneck.
    pub fn usb() -> Self {
        ChannelModel {
            bytes_per_second: 1_000_000.0,
            per_apdu_latency: Duration::from_micros(100),
            max_apdu_data: 255,
        }
    }

    /// An idealised infinite channel (costs nothing), isolating on-card costs.
    pub fn infinite() -> Self {
        ChannelModel {
            bytes_per_second: f64::INFINITY,
            per_apdu_latency: Duration::ZERO,
            max_apdu_data: 255,
        }
    }

    /// Time needed to push `bytes` through the channel in `apdus` exchanges.
    pub fn transfer_time(&self, bytes: usize, apdus: usize) -> Duration {
        let wire = if self.bytes_per_second.is_finite() && self.bytes_per_second > 0.0 {
            Duration::from_secs_f64(bytes as f64 / self.bytes_per_second)
        } else {
            Duration::ZERO
        };
        wire + self.per_apdu_latency * apdus as u32
    }

    /// Number of APDUs needed to move `bytes` of payload in one direction.
    pub fn apdus_for(&self, bytes: usize) -> usize {
        if bytes == 0 {
            1
        } else {
            bytes.div_ceil(self.max_apdu_data)
        }
    }
}

/// Byte and APDU counters of a session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelMeter {
    /// Payload bytes sent from the terminal to the card.
    pub bytes_to_card: usize,
    /// Payload bytes sent from the card to the terminal.
    pub bytes_from_card: usize,
    /// Number of APDU exchanges.
    pub apdu_exchanges: usize,
}

impl ChannelMeter {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        ChannelMeter::default()
    }

    /// Records one exchange of `to_card` payload bytes and `from_card`
    /// response bytes.
    pub fn record_exchange(&mut self, to_card: usize, from_card: usize) {
        self.bytes_to_card += to_card;
        self.bytes_from_card += from_card;
        self.apdu_exchanges += 1;
    }

    /// Total payload bytes in both directions.
    pub fn total_bytes(&self) -> usize {
        self.bytes_to_card + self.bytes_from_card
    }

    /// Simulated time spent on the wire under `model`.
    pub fn elapsed(&self, model: &ChannelModel) -> Duration {
        model.transfer_time(self.total_bytes(), self.apdu_exchanges)
    }

    /// Merges another meter into this one (used when aggregating sessions).
    pub fn merge(&mut self, other: &ChannelMeter) {
        self.bytes_to_card += other.bytes_to_card;
        self.bytes_from_card += other.bytes_from_card;
        self.apdu_exchanges += other.apdu_exchanges;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn egate_is_two_kilobytes_per_second() {
        let m = ChannelModel::egate();
        let t = m.transfer_time(2048, 0);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
        // 10 APDUs add 20 ms.
        let t = m.transfer_time(0, 10);
        assert_eq!(t, Duration::from_millis(20));
    }

    #[test]
    fn infinite_channel_costs_nothing() {
        let m = ChannelModel::infinite();
        assert_eq!(m.transfer_time(1 << 20, 1000), Duration::ZERO);
    }

    #[test]
    fn apdu_count_rounds_up() {
        let m = ChannelModel::egate();
        assert_eq!(m.apdus_for(0), 1);
        assert_eq!(m.apdus_for(1), 1);
        assert_eq!(m.apdus_for(255), 1);
        assert_eq!(m.apdus_for(256), 2);
        assert_eq!(m.apdus_for(1000), 4);
    }

    #[test]
    fn meter_accumulates_and_merges() {
        let mut a = ChannelMeter::new();
        a.record_exchange(100, 20);
        a.record_exchange(255, 0);
        assert_eq!(a.bytes_to_card, 355);
        assert_eq!(a.bytes_from_card, 20);
        assert_eq!(a.apdu_exchanges, 2);
        assert_eq!(a.total_bytes(), 375);

        let mut b = ChannelMeter::new();
        b.record_exchange(5, 5);
        a.merge(&b);
        assert_eq!(a.total_bytes(), 385);
        assert_eq!(a.apdu_exchanges, 3);

        let elapsed = a.elapsed(&ChannelModel::egate());
        assert!(elapsed > Duration::from_millis(6));
    }

    #[test]
    fn usb_is_faster_than_egate() {
        let bytes = 100_000;
        let egate = ChannelModel::egate();
        let usb = ChannelModel::usb();
        assert!(usb.transfer_time(bytes, 10) < egate.transfer_time(bytes, 10));
    }
}
