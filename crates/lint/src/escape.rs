//! The hot-path escape analyzer: proves the per-event serving path stays
//! allocation-free.
//!
//! The paper's performance argument is that the card evaluates access rules
//! *streaming*, in near-constant RAM, while the DSP serves chunks at wire
//! speed — so the per-event/per-chunk code paths must do constant work, and
//! in particular must not allocate or copy per event. This module turns that
//! property into a statically checked invariant:
//!
//! 1. `crates/lint/hotpath.toml` names the **hot roots** (serve entry
//!    points, the rule-engine step path, actor dispatch, stream `next`) and
//!    an **allocation vocabulary** (cloning methods, owning constructors,
//!    allocating macros).
//! 2. Reachability runs from the roots over the call graph built by
//!    [`crate::calls`] (conservative: a method call reaches every workspace
//!    method of that name).
//! 3. Every vocabulary construct inside a hot-reachable fn is reported with
//!    full call-chain provenance (`root → f → g → clone @ file:line`),
//!    unless the line carries a justified annotation:
//!
//!    ```text
//!    // alloc: amortized — reuses the buffer's spare capacity
//!    // alloc: startup — runs once per session, not per event
//!    // alloc: cold — error path, never taken on the steady state
//!    ```
//!
//! Two rules come out of this: **hot-alloc** (an allocating construct on a
//! hot path) and **hot-annotation** (a malformed `// alloc:` justification,
//! a stale one in a fn no hot root reaches, or a root pattern matching no
//! workspace fn).

use std::collections::VecDeque;
use std::path::Path;

use crate::calls::{CallGraph, CallKind, FnNode};
use crate::taint::SourceFile;
use crate::{blank_noncode_keep_markers, Rule, Violation};

/// Where the hot-path configuration lives, as reported in violations about
/// the configuration itself (unmatched root patterns).
pub const CONFIG_PATH: &str = "crates/lint/hotpath.toml";

/// The declarative half of the analyzer, loaded from
/// `crates/lint/hotpath.toml`: hot-root patterns, the allocation
/// vocabulary, and the suppression keywords.
#[derive(Debug, Default)]
pub struct HotConfig {
    /// Hot-root patterns: `Type::name`, `Type::prefix*`, or a bare fn name
    /// (with optional trailing `*`).
    pub roots: Vec<String>,
    /// Allocating/copying method names (`clone`, `to_vec`, `collect`, …).
    pub methods: Vec<String>,
    /// Owning constructors in `Type::fn` form (`Vec::with_capacity`,
    /// `Box::new`, `String::from`, …).
    pub constructors: Vec<String>,
    /// Allocating macros (`format`, `vec`).
    pub macros: Vec<String>,
    /// Qualified calls exempt from the vocabulary: `Arc::clone` /
    /// `Rc::clone` are refcount bumps, not allocations.
    pub exempt: Vec<String>,
    /// Accepted `// alloc:` justification keywords.
    pub keywords: Vec<String>,
}

impl HotConfig {
    /// Parses the same hand-rolled TOML subset as `trust.toml`: `[section]`
    /// headers, `key = ["a", "b"]` string arrays (single- or multi-line),
    /// `#` comments.
    pub fn parse(text: &str) -> Result<HotConfig, String> {
        let mut config = HotConfig::default();
        let mut section = String::new();
        let mut pending: Option<(String, String, usize)> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_toml_comment(raw).trim().to_owned();
            if let Some((key, mut acc, at)) = pending.take() {
                let done = line.contains(']');
                acc.push(' ');
                acc.push_str(&line);
                if done {
                    config.assign(&section, &key, &acc, at)?;
                } else {
                    pending = Some((key, acc, at));
                }
                continue;
            }
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
                section = name.trim().to_owned();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("hotpath.toml:{lineno}: expected `key = [..]`"))?;
            let (key, value) = (key.trim().to_owned(), value.trim().to_owned());
            if value.starts_with('[') && !value.contains(']') {
                pending = Some((key, value, lineno));
            } else {
                config.assign(&section, &key, &value, lineno)?;
            }
        }
        if let Some((key, _, at)) = pending {
            return Err(format!("hotpath.toml:{at}: unterminated array for `{key}`"));
        }
        for (field, values) in [
            ("roots", &config.roots),
            ("vocabulary methods", &config.methods),
            ("annotation keywords", &config.keywords),
        ] {
            if values.is_empty() {
                return Err(format!("hotpath.toml: `{field}` must not be empty"));
            }
        }
        Ok(config)
    }

    fn assign(&mut self, section: &str, key: &str, value: &str, line: usize) -> Result<(), String> {
        let items = parse_string_array(value)
            .ok_or_else(|| format!("hotpath.toml:{line}: `{key}` must be a [\"…\"] array"))?;
        match (section, key) {
            ("roots", "hot") => self.roots = items,
            ("vocabulary", "methods") => self.methods = items,
            ("vocabulary", "constructors") => self.constructors = items,
            ("vocabulary", "macros") => self.macros = items,
            ("vocabulary", "exempt") => self.exempt = items,
            ("annotations", "keywords") => self.keywords = items,
            _ => {
                return Err(format!(
                    "hotpath.toml:{line}: unknown entry `[{section}] {key}`"
                ))
            }
        }
        Ok(())
    }
}

fn strip_toml_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let inner = value.trim().strip_prefix('[')?.trim().strip_suffix(']')?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let unquoted = part.strip_prefix('"')?.strip_suffix('"')?;
        out.push(unquoted.to_owned());
    }
    Some(out)
}

/// True when `reason` is a well-formed justification: a `—`/`-` separator
/// followed by nonempty text (same grammar as the taint annotations).
fn reason_ok(reason: &str) -> bool {
    let stripped = reason
        .strip_prefix('—')
        .or_else(|| reason.strip_prefix('-'))
        .map(str::trim_start);
    stripped.is_some_and(|r| !r.is_empty())
}

/// Matches `name` against a root-pattern segment (`serve_*` or exact).
fn glob(pattern: &str, name: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => pattern == name,
    }
}

/// Matches one fn node against a root pattern: `Type::seg` requires the
/// impl self-type base to equal `Type`; a bare segment matches any fn of
/// that name.
fn root_matches(pattern: &str, node: &FnNode) -> bool {
    match pattern.split_once("::") {
        Some((ty, seg)) => node.self_type.as_deref() == Some(ty) && glob(seg, &node.name),
        None => glob(pattern, &node.name),
    }
}

/// One parsed `// alloc:` annotation found in a file.
#[derive(Debug)]
struct AllocNote {
    /// 1-based line the annotation is on.
    line: usize,
    /// The keyword after `alloc:` (first word, may be unknown).
    keyword: String,
    /// True when the keyword is configured and the reason is well-formed.
    ok: bool,
}

/// Per-file annotation index plus the raw lines the suppression walk needs.
struct FileNotes {
    raw_lines: Vec<String>,
    notes: Vec<AllocNote>,
}

impl FileNotes {
    /// Scans one file for `// alloc:` annotations. Three guards keep prose
    /// from registering as suppressions: the `//` must be a *real* comment
    /// start (located via [`blank_noncode_keep_markers`], so a `//` inside a
    /// string literal — e.g. this module's own messages — never counts); it
    /// must be a plain line comment, not a `///`/`//!` doc comment; and the
    /// comment's content must *begin* with `alloc:`, so a comment merely
    /// mentioning the grammar is not an annotation.
    fn scan(contents: &str, keywords: &[String]) -> FileNotes {
        let marked = blank_noncode_keep_markers(contents);
        let mut notes = Vec::new();
        for (idx, (raw, marked)) in contents.lines().zip(marked.lines()).enumerate() {
            let Some(slash) = marked.find("//") else {
                continue;
            };
            let body = &raw[slash + 2..];
            if body.starts_with('/') || body.starts_with('!') {
                continue; // doc comment — documentation, not a suppression
            }
            let Some(rest) = body.trim_start().strip_prefix("alloc:") else {
                continue;
            };
            let text = rest.trim();
            let word_end = text
                .find(|c: char| !c.is_ascii_alphanumeric())
                .unwrap_or(text.len());
            let keyword = text[..word_end].to_owned();
            let ok = keywords.iter().any(|k| k == &keyword) && reason_ok(text[word_end..].trim());
            notes.push(AllocNote {
                line: idx + 1,
                keyword,
                ok,
            });
        }
        FileNotes {
            raw_lines: contents.lines().map(str::to_owned).collect(),
            notes,
        }
    }

    fn note_at(&self, line: usize) -> Option<&AllocNote> {
        self.notes.iter().find(|n| n.line == line)
    }

    /// The annotation covering `line`: on the line itself, or in the
    /// contiguous `//` comment block directly above it.
    fn suppression_for(&self, line: usize) -> Option<&AllocNote> {
        if let Some(note) = self.note_at(line) {
            return Some(note);
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            let above = self.raw_lines.get(l - 1).map_or("", |s| s.trim_start());
            if !above.starts_with("//") {
                break;
            }
            if let Some(note) = self.note_at(l) {
                return Some(note);
            }
        }
        None
    }
}

/// Renders the call chain from a root down to `node` (`Root → f → g`).
fn chain(graph: &CallGraph, pred: &[usize], node: usize) -> String {
    let mut names = Vec::new();
    let mut cur = node;
    loop {
        names.push(graph.fns[cur].qualified_name());
        if pred[cur] == usize::MAX {
            break;
        }
        cur = pred[cur];
    }
    names.reverse();
    names.join(" → ")
}

/// Runs the hot-path escape analysis over the workspace files.
pub fn analyze(config: &HotConfig, files: &[SourceFile]) -> Vec<Violation> {
    let graph = CallGraph::build(files);
    let notes: Vec<FileNotes> = files
        .iter()
        .map(|f| FileNotes::scan(&f.contents, &config.keywords))
        .collect();
    let mut violations = Vec::new();
    let mut push = |path: &str, line: usize, rule: Rule, message: String| {
        violations.push(Violation {
            file: Path::new(path).to_path_buf(),
            line,
            rule,
            message,
        });
    };

    // Seed the reachability from the root patterns.
    let n = graph.fns.len();
    let mut hot = vec![false; n];
    let mut pred = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    for (pi, pattern) in config.roots.iter().enumerate() {
        let mut matched = false;
        for (ni, node) in graph.fns.iter().enumerate() {
            if node.in_test || !root_matches(pattern, node) {
                continue;
            }
            matched = true;
            if !hot[ni] {
                hot[ni] = true;
                queue.push_back(ni);
            }
        }
        if !matched {
            push(
                CONFIG_PATH,
                pi + 1,
                Rule::HotAnnotation,
                format!(
                    "hot root pattern `{pattern}` matches no workspace fn; fix the \
                     pattern or remove it from hotpath.toml"
                ),
            );
        }
    }

    // BFS over the call graph, keeping the predecessor that first reached
    // each fn so every finding carries a concrete root→…→fn chain.
    while let Some(ni) = queue.pop_front() {
        for site in &graph.fns[ni].calls {
            for &ci in graph.callees(ni, site) {
                if !hot[ci] {
                    hot[ci] = true;
                    pred[ci] = ni;
                    queue.push_back(ci);
                }
            }
        }
    }

    // hot-alloc: vocabulary constructs inside hot-reachable fns.
    for (ni, &is_hot) in hot.iter().enumerate() {
        if !is_hot {
            continue;
        }
        let node = &graph.fns[ni];
        let path = &files[node.file].path;
        for site in &node.calls {
            let construct = match site.kind {
                CallKind::Method => config
                    .methods
                    .iter()
                    .any(|m| m == &site.callee)
                    .then(|| format!(".{}()", site.callee)),
                CallKind::Ufcs => {
                    let full = site.qualified_name();
                    if config.exempt.iter().any(|e| e == &full) {
                        None
                    } else if config.constructors.iter().any(|c| c == &full) {
                        Some(full)
                    } else {
                        None
                    }
                }
                CallKind::Free => config
                    .constructors
                    .iter()
                    .any(|c| c == &site.callee)
                    .then(|| site.callee.clone()),
                CallKind::Macro => config
                    .macros
                    .iter()
                    .any(|m| m == &site.callee)
                    .then(|| format!("{}!", site.callee)),
            };
            let Some(construct) = construct else { continue };
            if notes[node.file]
                .suppression_for(site.line)
                .is_some_and(|note| note.ok)
            {
                continue;
            }
            push(
                path,
                site.line,
                Rule::HotAlloc,
                format!(
                    "{} → {construct} @ {path}:{}: allocating construct on a hot \
                     path — serve borrowed slices / share via Arc, or justify with \
                     `// alloc: amortized|startup|cold — <reason>`",
                    chain(&graph, &pred, ni),
                    site.line
                ),
            );
        }
    }

    // hot-annotation: malformed justifications anywhere, and stale ones in
    // fns no hot root reaches.
    for (fi, file_notes) in notes.iter().enumerate() {
        let path = &files[fi].path;
        for note in &file_notes.notes {
            let enclosing = graph.fns.iter().enumerate().find(|(_, f)| {
                f.file == fi
                    && f.body
                        .as_ref()
                        .is_some_and(|b| f.line <= note.line && note.line <= b.end_line())
            });
            if enclosing.is_some_and(|(_, f)| f.in_test) {
                continue;
            }
            if !note.ok {
                push(
                    path,
                    note.line,
                    Rule::HotAnnotation,
                    format!(
                        "malformed `// alloc: {}` annotation: expected `// alloc: \
                         amortized|startup|cold — <reason>`",
                        note.keyword
                    ),
                );
                continue;
            }
            match enclosing {
                Some((ni, node)) if !hot[ni] => {
                    push(
                        path,
                        note.line,
                        Rule::HotAnnotation,
                        format!(
                            "stale `// alloc: {}` annotation: `{}` is not reachable \
                             from any hot root — remove the annotation, or add the \
                             root to hotpath.toml",
                            note.keyword,
                            node.qualified_name()
                        ),
                    );
                }
                Some(_) => {}
                None => {
                    push(
                        path,
                        note.line,
                        Rule::HotAnnotation,
                        format!(
                            "stray `// alloc: {}` annotation outside any fn body: it \
                             suppresses nothing",
                            note.keyword
                        ),
                    );
                }
            }
        }
    }
    violations
}

/// The hot half of the doc-sync contract: every root pattern in
/// `hotpath.toml` must appear verbatim in the architecture book's hot-root
/// table, so the book's hot-path chapter cannot fall behind the config.
pub fn check_hotpath_sync(book_path: &Path, book: &str, config: &HotConfig) -> Vec<Violation> {
    config
        .roots
        .iter()
        .filter(|pattern| !book.contains(pattern.as_str()))
        .map(|pattern| Violation {
            file: book_path.to_path_buf(),
            line: 1,
            rule: Rule::DocSync,
            message: format!(
                "hotpath.toml names hot root `{pattern}` but ARCHITECTURE.md's \
                 hot-root table does not mention it; add a row"
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> HotConfig {
        HotConfig::parse(
            r#"
[roots]
hot = ["Store::serve*", "next_event"]

[vocabulary]
methods = ["clone", "to_vec", "to_owned", "to_string", "collect"]
constructors = ["Vec::new", "Vec::with_capacity", "Box::new", "String::from"]
macros = ["format", "vec"]
exempt = ["Arc::clone", "Rc::clone"]

[annotations]
keywords = ["amortized", "startup", "cold"]
"#,
        )
        .unwrap_or_else(|e| panic!("{e}"))
    }

    fn run(path: &str, src: &str) -> Vec<Violation> {
        analyze(
            &config(),
            &[SourceFile {
                path: path.to_owned(),
                contents: src.to_owned(),
            }],
        )
    }

    #[test]
    fn parses_hotpath_toml_subset() {
        let cfg = config();
        assert_eq!(cfg.roots, ["Store::serve*", "next_event"]);
        assert_eq!(cfg.methods.len(), 5);
        assert!(cfg.exempt.contains(&"Arc::clone".to_owned()));
        assert!(HotConfig::parse("[roots]\nhot = [\"a\"").is_err());
        assert!(
            HotConfig::parse("[roots]\nhot = [\"a\"]").is_err(),
            "methods required"
        );
        assert!(HotConfig::parse("[mystery]\nx = [\"a\"]").is_err());
    }

    #[test]
    fn direct_allocation_in_root_is_flagged_with_chain() {
        let v = run(
            "a.rs",
            "struct Store;\nimpl Store {\n    fn serve_chunk(&self, x: &[u8]) -> Vec<u8> {\n        x.to_vec()\n    }\n}\n",
        );
        let hit = v
            .iter()
            .find(|v| v.rule == Rule::HotAlloc)
            .unwrap_or_else(|| panic!("{v:?}"));
        assert_eq!(hit.line, 4);
        assert!(
            hit.message
                .contains("Store::serve_chunk → .to_vec() @ a.rs:4"),
            "{hit:?}"
        );
    }

    #[test]
    fn transitive_allocation_carries_full_provenance() {
        let v = run(
            "a.rs",
            "struct Store;\nimpl Store {\n    fn serve(&self) { helper(); }\n}\nfn helper() { deeper(); }\nfn deeper() { let s = format!(\"x\"); }\n",
        );
        let hit = v
            .iter()
            .find(|v| v.rule == Rule::HotAlloc)
            .unwrap_or_else(|| panic!("{v:?}"));
        assert!(
            hit.message
                .contains("Store::serve → helper → deeper → format!"),
            "{hit:?}"
        );
        assert_eq!(hit.line, 6);
    }

    #[test]
    fn cold_fns_are_not_flagged() {
        let v = run(
            "a.rs",
            "fn startup_only() { let v: Vec<u8> = Vec::with_capacity(64); }\nfn next_event() {}\n",
        );
        assert!(v.iter().all(|v| v.rule != Rule::HotAlloc), "{v:?}");
    }

    #[test]
    fn justified_annotation_suppresses_and_arc_clone_is_exempt() {
        let v = run(
            "a.rs",
            "struct Store;\nimpl Store {\n    fn serve(&self, a: &Arc<u8>) {\n        // alloc: amortized — buffer reuses spare capacity\n        let v: Vec<u8> = Vec::with_capacity(8);\n        let b = Arc::clone(a);\n    }\n}\nfn next_event() {}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn malformed_annotation_is_flagged_and_does_not_suppress() {
        let v = run(
            "a.rs",
            "struct Store;\nimpl Store {\n    fn serve(&self) {\n        // alloc: amortized\n        let v: Vec<u8> = Vec::new();\n    }\n}\nfn next_event() {}\n",
        );
        assert!(
            v.iter()
                .any(|v| v.rule == Rule::HotAnnotation && v.message.contains("malformed")),
            "{v:?}"
        );
        assert!(v.iter().any(|v| v.rule == Rule::HotAlloc), "{v:?}");
    }

    #[test]
    fn stale_annotation_in_cold_fn_is_flagged() {
        let v = run(
            "a.rs",
            "struct Store;\nimpl Store {\n    fn serve(&self) {}\n}\nfn cold() {\n    // alloc: startup — built once\n    let v: Vec<u8> = Vec::new();\n}\nfn next_event() {}\n",
        );
        let hit = v
            .iter()
            .find(|v| v.rule == Rule::HotAnnotation)
            .unwrap_or_else(|| panic!("{v:?}"));
        assert!(hit.message.contains("stale"), "{hit:?}");
        assert!(hit.message.contains("cold"), "{hit:?}");
        assert_eq!(hit.line, 6);
    }

    #[test]
    fn unmatched_root_pattern_is_reported_against_the_config() {
        let v = run("a.rs", "fn next_event() {}\n");
        let hit = v
            .iter()
            .find(|v| v.rule == Rule::HotAnnotation)
            .unwrap_or_else(|| panic!("{v:?}"));
        assert!(hit.message.contains("Store::serve*"), "{hit:?}");
        assert_eq!(hit.file.to_string_lossy(), CONFIG_PATH);
    }

    #[test]
    fn alloc_text_inside_string_literals_is_ignored() {
        let v = run(
            "a.rs",
            "struct Store;\nimpl Store {\n    fn serve(&self) {}\n}\nfn cold() {\n    let s = \"justify with `// alloc: amortized — <reason>`\";\n}\nfn next_event() {}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn test_code_is_exempt_from_both_rules() {
        let v = run(
            "a.rs",
            "fn next_event() {}\n#[cfg(test)]\nmod tests {\n    fn serve(s: &Store) { let v = vec![1]; }\n    fn helper() {\n        // alloc: cold — test only\n        let v: Vec<u8> = Vec::new();\n    }\n}\nstruct Store;\nimpl Store {\n    fn serve_live(&self) {}\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn hotpath_sync_flags_missing_book_rows() {
        let cfg = config();
        let book = "| `Store::serve*` | sharded serving |\n";
        let v = check_hotpath_sync(Path::new("ARCHITECTURE.md"), book, &cfg);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::DocSync);
        assert!(v[0].message.contains("next_event"));
    }
}
