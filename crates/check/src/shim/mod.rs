//! Drop-in stand-ins for the `std::sync` / `std::thread` surface the
//! workspace's concurrent code uses.
//!
//! Each shim wraps the real `std` primitive and adds a *scheduling point*
//! before every visible operation. Inside a [`crate::Model`] run the point
//! hands control to the cooperative scheduler, which explores interleavings;
//! outside a model run the shims degrade to the plain `std` behaviour, so
//! code compiled against them stays correct (just un-instrumented) wherever
//! it executes.
//!
//! The `sdds-sync` facade re-exports these under `--cfg sdds_check` and the
//! real `std` types otherwise — library code imports `sdds_sync::sync` /
//! `sdds_sync::thread` and never sees the difference.

pub mod atomic;
pub mod sync;
pub mod thread;
