//! Demonstration application 1: collaborative work within a community.
//!
//! "The first application deals with collaborative works among a community of
//! users" (§3). A community (family, friends, research team) shares documents
//! through an untrusted DSP; every member holds a smart card personalised for
//! them; the sharing policy is user-specific and changes over time — which is
//! exactly what static encryption schemes handle poorly (§1) and what the SOE
//! approach makes cheap: a policy change is just a new protected rule set.
//!
//! The workspace is a thin scenario layer over the facade: one
//! [`Publisher`] for the community, one [`Client`] per member access, and the
//! shared sharded service underneath — the very same serving path the
//! multi-client scheduler of E10 exercises.

use sdds_card::{CardProfile, CostModel, LatencyBreakdown};
use sdds_core::rule::{RuleSet, Sign, Subject};
use sdds_xml::Document;

use crate::client::{Client, Publisher};
use crate::error::SddsError;

/// Per-member outcome of one access to the shared document.
#[derive(Debug, Clone)]
pub struct MemberAccess {
    /// Member name.
    pub member: String,
    /// Authorized view delivered by the member's card.
    pub view: String,
    /// Bytes served by the DSP for this access (header, chunks, rule blob).
    pub bytes_from_dsp: usize,
    /// Simulated latency of the access on the e-gate cost model.
    pub latency: LatencyBreakdown,
}

/// A collaborative workspace: one community document, one trusted rule
/// issuer, one shared DSP service, one card per member.
pub struct CollaborativeWorkspace {
    publisher: Publisher,
    doc_id: String,
    card_profile: CardProfile,
}

impl CollaborativeWorkspace {
    /// Creates a workspace: publishes `document` (encrypted) on a fresh
    /// service under the community's document key and installs the initial
    /// policy.
    pub fn new(
        community_secret: &[u8],
        doc_id: &str,
        document: &Document,
        initial_rules: RuleSet,
        card_profile: CardProfile,
    ) -> Result<Self, SddsError> {
        let publisher = Publisher::builder(community_secret)
            .rules(initial_rules)
            .build()?;
        publisher.publish(doc_id, document)?;
        Ok(CollaborativeWorkspace {
            publisher,
            doc_id: doc_id.to_owned(),
            card_profile,
        })
    }

    /// The community's publisher (policy, service handle, statistics).
    pub fn publisher(&self) -> &Publisher {
        &self.publisher
    }

    /// Members named in the current policy.
    pub fn members(&self) -> Vec<Subject> {
        self.publisher.subjects()
    }

    /// Changes the policy: adds a rule for `member` and re-syncs the
    /// protected blobs at the DSP. Nothing happens to the stored document —
    /// no re-encryption, no key redistribution.
    pub fn grant(&mut self, member: &str, sign: Sign, object: &str) -> Result<(), SddsError> {
        self.publisher.grant(member, sign, object)
    }

    /// Provisions a facade client for `member`.
    pub fn client_for(&self, member: &str) -> Result<Client, SddsError> {
        Client::builder(member)
            .card_profile(self.card_profile)
            .provision(&self.publisher)
    }

    /// One member accesses the shared document (optionally through a query).
    pub fn access(&self, member: &str, query: Option<&str>) -> Result<MemberAccess, SddsError> {
        let mut builder = Client::builder(member).card_profile(self.card_profile);
        if let Some(q) = query {
            builder = builder.query(q);
        }
        let client = builder.provision(&self.publisher)?;
        self.publisher.service().reset_stats();
        let mut session = client.connect(&self.doc_id)?;
        let view = session.run()?.to_owned();
        Ok(MemberAccess {
            member: member.to_owned(),
            view,
            bytes_from_dsp: self.publisher.stats().bytes_served,
            latency: session.terminal().latency(&CostModel::egate()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_xml::generator::{self, CommunityProfile, GeneratorConfig};

    fn workspace() -> CollaborativeWorkspace {
        let doc = generator::community(
            &CommunityProfile {
                members: 3,
                ..CommunityProfile::default()
            },
            &GeneratorConfig::default(),
        );
        let rules = RuleSet::parse(
            "+, alice, /community\n\
             -, alice, //budget\n\
             +, bob, //member/name\n\
             +, bob, //project/title",
        )
        .unwrap();
        CollaborativeWorkspace::new(
            b"research-team",
            "team-doc",
            &doc,
            rules,
            CardProfile::modern_secure_element(),
        )
        .unwrap()
    }

    #[test]
    fn members_see_their_own_views() {
        let ws = workspace();
        assert_eq!(ws.members().len(), 2);
        let alice = ws.access("alice", None).unwrap();
        assert!(alice.view.contains("<project"));
        assert!(!alice.view.contains("<budget>"));
        assert!(alice.bytes_from_dsp > 0);
        assert!(alice.latency.total().as_secs_f64() > 0.0);

        let bob = ws.access("bob", None).unwrap();
        assert!(bob.view.contains("<title>"));
        assert!(!bob.view.contains("<note>"));
        assert!(bob.view.len() < alice.view.len());

        // An outsider gets an empty view.
        let eve = ws.access("eve", None).unwrap();
        assert!(eve.view.is_empty());
    }

    #[test]
    fn policy_changes_take_effect_without_touching_the_document() {
        let mut ws = workspace();
        let stored_before = ws.publisher().service().store().stored_bytes();
        let before = ws.access("bob", None).unwrap();
        assert!(!before.view.contains("<budget>"));

        ws.grant("bob", Sign::Permit, "//project/budget").unwrap();
        let after = ws.access("bob", None).unwrap();
        assert!(after.view.contains("<budget>"));
        // The encrypted document at the DSP did not change at all.
        assert_eq!(
            ws.publisher().service().store().stored_bytes(),
            stored_before
        );
        assert_eq!(ws.publisher().service().revision("team-doc"), Some(0));
    }

    #[test]
    fn queries_restrict_member_views() {
        let ws = workspace();
        let access = ws.access("alice", Some("//member/name")).unwrap();
        assert!(access.view.contains("<name>"));
        assert!(!access.view.contains("<project"));
    }
}
