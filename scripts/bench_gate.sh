#!/usr/bin/env bash
# Bench-regression gate for the SDDS workspace.
#
# Runs the E1–E11 harness in JSON mode and compares the gated metrics against
# the committed BENCH_baseline.json:
#
#   * throughput metrics (E1 events/s per rule count, E9 SOE events/s and
#     zero-copy serve events/s, E10
#     aggregate simulated events/s, shard-scaling ratio and hot-document
#     replication gain, E11 per-engine events/s and actor-vs-thread speedup)
#     must not drop more than TOLERANCE_PCT below the baseline,
#   * peak-RAM metrics (E1 and E9 peak secure RAM) must not rise more than
#     TOLERANCE_PCT above the baseline.
#
# Wall-clock throughput is noisy on shared CI runners, so a failing run is
# retried once and the best value per metric across attempts is compared; the
# gate fails only if a metric regressed in every attempt.
#
# The committed baseline's E1/E9 throughput was measured on one machine and is
# only comparable on similar hardware — on foreign hardware (e.g. shared
# GitHub-hosted runners) set SDDS_BENCH_GATE=ram to gate only the
# deterministic, machine-independent keys: the peak-RAM metrics AND the
# E10/E11 keys (both run on the simulated cost-model clock — counters times
# model rates — so they are identical on any hardware). Regenerate the
# baseline with
# `harness --json BENCH_baseline.json`, or widen the tolerance via
# SDDS_BENCH_TOLERANCE_PCT.
#
# Usage: scripts/bench_gate.sh [current.json]
#   With an argument, compares that metrics file instead of running the
#   harness (useful for inspecting a previous run).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="BENCH_baseline.json"
TOLERANCE_PCT="${SDDS_BENCH_TOLERANCE_PCT:-15}"
ATTEMPTS="${SDDS_BENCH_ATTEMPTS:-2}"
GATE_MODE="${SDDS_BENCH_GATE:-all}" # all | ram

if [[ ! -f "$BASELINE" ]]; then
    echo "bench gate: missing $BASELINE (run: cargo run -p sdds-bench --bin harness --release -- --json $BASELINE)" >&2
    exit 1
fi

metric() { # metric <file> <key> -> value (empty if absent)
    # `|| true`: a missing key must yield an empty value, not abort the gate
    # through set -e/pipefail before the MISSING diagnostic can fire.
    { grep -F "\"$2\":" "$1" || true; } | head -1 | sed 's/.*: *//; s/,$//'
}

gated_keys() { # the E1/E9/E10/E11 throughput and peak-RAM keys in the baseline
    grep -oE '"(e1\.rules_[0-9]+\.(events_per_s|peak_ram_bytes)|e9\.n[0-9]+\.(soe_events_per_s|soe_peak_ram_bytes)|e9\.zero_copy\.serve_events_per_s|e10\.clients_[0-9]+\.(shards_[0-9]+\.events_per_s|scaling_16v1)|e10\.hot\.clients_[0-9]+\.(replicas_[0-9]+\.events_per_s|replication_gain)|e11\.sessions_[0-9]+\.((thread|actor)\.events_per_s|speedup_actor_v_thread))"' \
        "$BASELINE" | tr -d '"' |
        # "ram" keeps only the machine-independent keys: peak RAM and the
        # simulated-clock E10/E11 metrics.
        if [[ "$GATE_MODE" == "ram" ]]; then grep -E 'peak_ram_bytes|^e1[01]\.'; else cat; fi
}

# Per-key best value observed across harness attempts (throughput: max,
# peak RAM: min) — a key only fails if it regressed in *every* attempt.
declare -A BEST

update_best() { # update_best <current.json>
    local key cur
    for key in $(gated_keys); do
        cur=$(metric "$1" "$key")
        [[ -z "$cur" ]] && continue
        if [[ -z "${BEST[$key]:-}" ]]; then
            BEST[$key]="$cur"
        else
            case "$key" in
            *events_per_s | *scaling_16v1 | *replication_gain | *speedup_actor_v_thread)
                if awk -v c="$cur" -v b="${BEST[$key]}" 'BEGIN { exit !(c > b) }'; then
                    BEST[$key]="$cur"
                fi
                ;;
            *peak_ram_bytes)
                if awk -v c="$cur" -v b="${BEST[$key]}" 'BEGIN { exit !(c < b) }'; then
                    BEST[$key]="$cur"
                fi
                ;;
            esac
        fi
    done
}

# check_best — compares the per-key bests against the baseline; prints every
# regression and returns non-zero if any.
check_best() {
    local failures=0 key base cur
    for key in $(gated_keys); do
        base=$(metric "$BASELINE" "$key")
        cur="${BEST[$key]:-}"
        if [[ -z "$cur" ]]; then
            echo "  MISSING  $key (baseline $base, absent from current run)"
            failures=$((failures + 1))
            continue
        fi
        case "$key" in
        *events_per_s | *scaling_16v1 | *replication_gain | *speedup_actor_v_thread)
            # Higher is better: fail when current < base * (1 - tol).
            if awk -v c="$cur" -v b="$base" -v t="$TOLERANCE_PCT" \
                'BEGIN { exit !(c < b * (1 - t / 100)) }'; then
                echo "  REGRESSED  $key: $cur < $base -${TOLERANCE_PCT}%"
                failures=$((failures + 1))
            fi
            ;;
        *peak_ram_bytes)
            # Lower is better: fail when current > base * (1 + tol).
            if awk -v c="$cur" -v b="$base" -v t="$TOLERANCE_PCT" \
                'BEGIN { exit !(c > b * (1 + t / 100)) }'; then
                echo "  REGRESSED  $key: $cur > $base +${TOLERANCE_PCT}%"
                failures=$((failures + 1))
            fi
            ;;
        esac
    done
    return "$failures"
}

if [[ $# -ge 1 ]]; then
    echo "==> bench gate: comparing $1 against $BASELINE (±${TOLERANCE_PCT}%)"
    update_best "$1"
    if check_best; then
        echo "bench gate passed."
        exit 0
    fi
    echo "bench gate FAILED." >&2
    exit 1
fi

current="$(mktemp -t sdds-bench-XXXXXX.json)"
trap 'rm -f "$current"' EXIT
for attempt in $(seq 1 "$ATTEMPTS"); do
    echo "==> bench gate: harness run $attempt/$ATTEMPTS (JSON -> $current)"
    cargo run -p sdds-bench --bin harness --release -- --json "$current" >/dev/null
    update_best "$current"
    if check_best; then
        echo "bench gate passed (attempt $attempt, ±${TOLERANCE_PCT}% vs $BASELINE)."
        exit 0
    fi
    echo "==> attempt $attempt regressed (best-so-far kept per metric)" >&2
done
echo "bench gate FAILED: metrics regressed vs $BASELINE on all $ATTEMPTS attempts." >&2
exit 1
