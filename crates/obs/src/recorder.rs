//! Scoped spans and the per-lane flight recorder.
//!
//! The recorder is the post-mortem tool: a fixed set of lanes (one per
//! worker, shard group, or whatever the caller keys on), each a
//! fixed-capacity ring that overwrites its oldest record. Slots are
//! pre-allocated and labels are `&'static str`, so recording never
//! allocates; each push takes only that lane's mutex, which under
//! `--cfg sdds_check` is the shim mutex the model checker instruments.

use std::fmt;
use std::fmt::Write as _;

use sdds_sync::sync::atomic::{AtomicU64, Ordering};
use sdds_sync::sync::{Arc, Mutex, MutexExt};

use crate::metrics::json_escape;

/// A time source for spans: nanoseconds since an arbitrary epoch.
pub trait Clock: Send + Sync {
    /// Current time in nanoseconds.
    fn now_nanos(&self) -> u64;
}

/// Real wall-clock time, measured from the clock's construction.
#[derive(Debug)]
pub struct WallClock {
    epoch: std::time::Instant,
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock {
            epoch: std::time::Instant::now(),
        }
    }
}

impl WallClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        WallClock::default()
    }
}

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// A deterministic clock the caller advances by hand — the simulated-time
/// counterpart of [`WallClock`] for tests and model-checked runs.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Jumps to an absolute time.
    pub fn set(&self, nanos: u64) {
        self.now.store(nanos, Ordering::Relaxed);
    }

    /// Advances by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.now.fetch_add(nanos, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// One recorded span: what ran, where, when, and for how long.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightRecord {
    /// Global admission order (monotone across all lanes).
    pub seq: u64,
    /// Lane the record was written to.
    pub lane: usize,
    /// Static span label, e.g. `"dsp.serve"`.
    pub label: &'static str,
    /// Span start, clock nanoseconds.
    pub start_nanos: u64,
    /// Span duration, nanoseconds.
    pub duration_nanos: u64,
}

const EMPTY_RECORD: FlightRecord = FlightRecord {
    seq: 0,
    lane: 0,
    label: "",
    start_nanos: 0,
    duration_nanos: 0,
};

/// One lane's ring: pre-allocated slots, overwrite-oldest.
#[derive(Debug)]
struct Ring {
    slots: Vec<FlightRecord>,
    next: usize,
    filled: usize,
}

impl Ring {
    fn with_capacity(capacity: usize) -> Self {
        Ring {
            slots: vec![EMPTY_RECORD; capacity],
            next: 0,
            filled: 0,
        }
    }

    fn push(&mut self, record: FlightRecord) {
        if let Some(slot) = self.slots.get_mut(self.next) {
            *slot = record;
        }
        self.next = (self.next + 1) % self.slots.len().max(1);
        self.filled = (self.filled + 1).min(self.slots.len());
    }

    /// Records oldest-first.
    fn records(&self) -> Vec<FlightRecord> {
        let start = if self.filled < self.slots.len() {
            0
        } else {
            self.next
        };
        (0..self.filled)
            .filter_map(|i| self.slots.get((start + i) % self.slots.len().max(1)))
            .copied()
            .collect()
    }
}

struct RecorderInner {
    lanes: Vec<Mutex<Ring>>,
    seq: AtomicU64,
    clock: Arc<dyn Clock>,
    capacity: usize,
}

/// The flight recorder: bounded per-lane rings of recent spans, dumpable as
/// JSON on demand or on failure. Cloning shares the rings.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("lanes", &self.inner.lanes.len())
            .field("capacity", &self.inner.capacity)
            .field("recorded", &self.inner.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder with `lanes` rings of `capacity` slots each, on the real
    /// wall clock. Both arguments are clamped to at least 1.
    pub fn new(lanes: usize, capacity: usize) -> Self {
        FlightRecorder::with_clock(lanes, capacity, Arc::new(WallClock::new()))
    }

    /// Same, on a caller-supplied clock (e.g. a shared [`ManualClock`]).
    pub fn with_clock(lanes: usize, capacity: usize, clock: Arc<dyn Clock>) -> Self {
        let lanes = lanes.max(1);
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Arc::new(RecorderInner {
                lanes: (0..lanes)
                    .map(|_| Mutex::new(Ring::with_capacity(capacity)))
                    .collect(),
                seq: AtomicU64::new(0),
                clock,
                capacity,
            }),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.inner.lanes.len()
    }

    /// Slots per lane.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Current clock reading.
    pub fn now_nanos(&self) -> u64 {
        self.inner.clock.now_nanos()
    }

    /// Opens a span on `lane` (wrapped into range); the span records itself
    /// when dropped or [`Span::finish`]ed.
    pub fn span(&self, lane: usize, label: &'static str) -> Span<'_> {
        Span {
            recorder: self,
            lane,
            label,
            start_nanos: self.now_nanos(),
            armed: true,
        }
    }

    /// Writes one record directly (spans call this on close).
    pub fn record(&self, lane: usize, label: &'static str, start_nanos: u64, duration_nanos: u64) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let record = FlightRecord {
            seq,
            lane: lane % self.inner.lanes.len().max(1),
            label,
            start_nanos,
            duration_nanos,
        };
        if let Some(ring) = self.inner.lanes.get(record.lane) {
            ring.lock_np().push(record);
        }
    }

    /// Spans admitted since construction (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Every surviving record across all lanes, in admission order.
    pub fn records(&self) -> Vec<FlightRecord> {
        let mut all: Vec<FlightRecord> = self
            .inner
            .lanes
            .iter()
            .flat_map(|lane| lane.lock_np().records())
            .collect();
        all.sort_by_key(|r| r.seq);
        all
    }

    /// Dumps the surviving records as a JSON object — the on-demand /
    /// on-failure post-mortem artifact.
    pub fn dump_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"sdds-obs-flight-v1\",");
        let _ = write!(
            out,
            "\n  \"lanes\": {},\n  \"capacity\": {},\n  \"recorded\": {},\n  \"records\": [",
            self.lanes(),
            self.capacity(),
            self.recorded()
        );
        for (i, r) in self.records().iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"seq\": {}, \"lane\": {}, \"label\": \"{}\", \
                 \"start_nanos\": {}, \"duration_nanos\": {}}}",
                r.seq,
                r.lane,
                json_escape(r.label),
                r.start_nanos,
                r.duration_nanos
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// A scoped span: measures from creation to drop (or explicit
/// [`finish`](Span::finish)) and writes one [`FlightRecord`].
#[derive(Debug)]
pub struct Span<'a> {
    recorder: &'a FlightRecorder,
    lane: usize,
    label: &'static str,
    start_nanos: u64,
    armed: bool,
}

impl Span<'_> {
    /// Closes the span now and returns its duration in nanoseconds.
    pub fn finish(mut self) -> u64 {
        self.close()
    }

    fn close(&mut self) -> u64 {
        self.armed = false;
        let duration = self.recorder.now_nanos().saturating_sub(self.start_nanos);
        self.recorder
            .record(self.lane, self.label, self.start_nanos, duration);
        duration
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.close();
        }
    }
}
