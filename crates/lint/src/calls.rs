//! Call-site extraction over the fn bodies captured by [`crate::items`],
//! and the workspace-wide call graph the hot-path escape analyzer walks.
//!
//! The extractor runs over `blank_noncode`-blanked body text, so string and
//! char literals can never fake a call. It recognizes three call shapes plus
//! macro invocations:
//!
//! - **free calls** — `helper(x)`, including module-qualified paths like
//!   `secdoc::decrypt_chunk(…)` (a lowercase qualifier is a module, and the
//!   final segment names the workspace fn);
//! - **method calls** — `record.clone()`, `iter.collect::<Vec<_>>()`
//!   (turbofish is skipped before the argument list);
//! - **UFCS calls** — `Arc::clone(&x)`, `Vec::with_capacity(n)`,
//!   `Self::helper(…)` (the uppercase qualifier is kept so the resolver can
//!   match it against impl self types, and the exemption list can whitelist
//!   refcount bumps like `Arc::clone`);
//! - **macros** — `format!(…)`, `vec![…]`.
//!
//! Resolution is deliberately conservative, in the same certain-answer
//! spirit as the taint pass: a method call `x.f(…)` falls back to *every*
//! workspace method named `f`, because the linter has no type inference.
//! Over-approximation can only create false hot paths, never hide one; the
//! `// alloc:` annotation grammar is the reviewed escape hatch for the
//! spurious ones. Shapes where the syntax pins the type *are* resolved
//! precisely, because by-name fallback on names like `push`/`encode`/`finish`
//! would otherwise drag half the workspace onto every hot path:
//!
//! - `self.f(…)` resolves against the caller's own impl type;
//! - `Type::<Args>::assoc(…)` recovers `Type` over the balanced angles;
//! - `x.f(…)` resolves against `x`'s *declared* type when the fn binds one —
//!   a typed param (`outputs: &mut Vec<…>`), an annotated `let`, a
//!   `let x = Type::ctor(…)` initializer, or a `vec![…]` literal — and a
//!   declared std container (`EXTERNAL_TYPES`) resolves to no workspace fn
//!   at all;
//! - `self.field.f(…)` (and longer ident-only chains) walks the declared
//!   struct field types, so `self.frames.push(…)` on a `Vec` field stops
//!   resolving to every workspace `push`.

use std::collections::BTreeMap;

use crate::graph::type_idents;
use crate::items::{parse_items, FnBody, ItemKind};
use crate::taint::SourceFile;

/// The syntactic shape of one call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(…)` — a free (or module-qualified) fn call.
    Free,
    /// `recv.method(…)` — a method call through a receiver.
    Method,
    /// `Type::assoc(…)` / `Self::assoc(…)` — a qualified call.
    Ufcs,
    /// `name!(…)` / `name![…]` — a macro invocation.
    Macro,
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based file line of the callee identifier.
    pub line: usize,
    /// The called fn/macro name (the last path segment).
    pub callee: String,
    /// For [`CallKind::Ufcs`]: the path qualifier directly before `::`
    /// (`Arc` in `Arc::clone`, `Self` in `Self::helper`, `Vec` in
    /// `Vec::<Attribute>::new`). `None` for `<T as Trait>::method(…)`
    /// qualified paths. For [`CallKind::Method`]: the receiver text when it
    /// is a `.`-joined chain of plain identifiers (`self` in `self.f(…)`,
    /// `self.frames` in `self.frames.push(…)`), `None` for receivers built
    /// from calls or indexing like `g().f(…)` and `v[i].f(…)`.
    pub qualifier: Option<String>,
    /// The syntactic shape.
    pub kind: CallKind,
}

impl CallSite {
    /// The site rendered the way vocabulary lists spell it: `Arc::clone`
    /// for UFCS, the bare name otherwise.
    pub fn qualified_name(&self) -> String {
        match (&self.qualifier, self.kind) {
            (Some(q), CallKind::Ufcs) => format!("{q}::{}", self.callee),
            _ => self.callee.clone(),
        }
    }
}

/// Keywords that can precede `(` without being calls (`if (x)`, `match (…)`)
/// or name pseudo-callees the graph must ignore.
const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "let", "mut",
    "ref", "move", "in", "as", "fn", "impl", "dyn", "where", "unsafe", "async", "await", "true",
    "false",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Extracts every call site from a captured (blanked) fn body.
pub fn call_sites(body: &FnBody) -> Vec<CallSite> {
    let text = body.text.as_str();
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if !is_ident_start(bytes[i]) || (i > 0 && is_ident_byte(bytes[i - 1])) {
            i += 1;
            continue;
        }
        let start = i;
        let mut end = i;
        while end < bytes.len() && is_ident_byte(bytes[end]) {
            end += 1;
        }
        let ident = &text[start..end];
        i = end;
        if KEYWORDS.contains(&ident) {
            continue;
        }
        // Macro invocation: `name!` followed by an open delimiter (`!=` is a
        // comparison, not a macro).
        if bytes.get(end) == Some(&b'!') && bytes.get(end + 1) != Some(&b'=') {
            let after = bytes[end + 1..]
                .iter()
                .find(|b| !b.is_ascii_whitespace())
                .copied();
            if matches!(after, Some(b'(') | Some(b'[') | Some(b'{')) {
                out.push(CallSite {
                    line: body.line_at(start),
                    callee: ident.to_owned(),
                    qualifier: None,
                    kind: CallKind::Macro,
                });
            }
            continue;
        }
        // Turbofish: `collect::<Vec<_>>(…)` — skip `::<…>` before the
        // argument list. A plain `::ident` path is left alone; the *next*
        // identifier will be classified with this one as its qualifier.
        let mut j = end;
        if bytes.get(j) == Some(&b':') && bytes.get(j + 1) == Some(&b':') {
            let k = j + 2;
            if bytes.get(k) == Some(&b'<') {
                let mut depth = 0i32;
                let mut m = k;
                while m < bytes.len() {
                    match bytes[m] {
                        b'<' => depth += 1,
                        b'>' if m > 0 && bytes[m - 1] != b'-' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    m += 1;
                }
                j = (m + 1).min(bytes.len());
            } else {
                continue;
            }
        }
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if bytes.get(j) != Some(&b'(') {
            continue;
        }
        // Classify by what directly precedes the identifier.
        let mut p = start;
        while p > 0 && bytes[p - 1].is_ascii_whitespace() {
            p -= 1;
        }
        let (kind, qualifier) = if p >= 1 && bytes[p - 1] == b'.' {
            // Receiver look-back: walk back over a `.`-joined chain of plain
            // identifiers (`buf.f(…)` → `buf`, `self.frames.push(…)` →
            // `self.frames`), which the resolver can type through declared
            // bindings and struct fields. Any other link — a call `g().f(…)`,
            // an index `v[i].f(…)` — makes the receiver unknowable, so the
            // site stays unqualified and resolves by name.
            let chain_end = p - 1;
            let mut q = chain_end;
            let mut plain = true;
            loop {
                let seg_end = q;
                while q > 0 && is_ident_byte(bytes[q - 1]) {
                    q -= 1;
                }
                if q == seg_end || bytes[q].is_ascii_digit() {
                    plain = false;
                    break;
                }
                if q > 0 && bytes[q - 1] == b'.' {
                    q -= 1;
                    continue;
                }
                break;
            }
            let receiver = &text[q..chain_end];
            let plain = plain && !receiver.is_empty();
            (CallKind::Method, plain.then(|| receiver.to_owned()))
        } else if p >= 2 && bytes[p - 1] == b':' && bytes[p - 2] == b':' {
            let mut q = p - 2;
            while q > 0 && bytes[q - 1].is_ascii_whitespace() {
                q -= 1;
            }
            if q >= 1 && bytes[q - 1] == b'>' {
                // Either a turbofished type path — `Vec::<Attribute>::new(…)`
                // — or a qualified path — `<T as Trait>::method(…)`. Scan
                // back over the balanced `<…>`: a `::` directly before the
                // `<` means turbofish, and the identifier before it is the
                // real qualifier; anything else is unknowable here.
                let mut depth = 0i32;
                let mut m = q;
                while m > 0 {
                    m -= 1;
                    match bytes[m] {
                        b'>' if m == 0 || bytes[m - 1] != b'-' => depth += 1,
                        b'<' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                if depth == 0 && m >= 2 && bytes[m - 1] == b':' && bytes[m - 2] == b':' {
                    let qend = m - 2;
                    let mut qstart = qend;
                    while qstart > 0 && is_ident_byte(bytes[qstart - 1]) {
                        qstart -= 1;
                    }
                    let qualifier = &text[qstart..qend];
                    if qualifier.is_empty() {
                        (CallKind::Ufcs, None)
                    } else {
                        (CallKind::Ufcs, Some(qualifier.to_owned()))
                    }
                } else {
                    (CallKind::Ufcs, None)
                }
            } else {
                let qend = q;
                while q > 0 && is_ident_byte(bytes[q - 1]) {
                    q -= 1;
                }
                let qualifier = &text[q..qend];
                if qualifier.is_empty() {
                    (CallKind::Ufcs, None)
                } else {
                    (CallKind::Ufcs, Some(qualifier.to_owned()))
                }
            }
        } else {
            // A nested `fn helper(…)` *definition* is not a call site of
            // `helper`; its own body text still scans as part of this one,
            // which conservatively attributes its calls to the outer fn.
            let mut q = p;
            while q > 0 && is_ident_byte(bytes[q - 1]) {
                q -= 1;
            }
            if &text[q..p] == "fn" {
                continue;
            }
            (CallKind::Free, None)
        };
        out.push(CallSite {
            line: body.line_at(start),
            callee: ident.to_owned(),
            qualifier,
            kind,
        });
    }
    out
}

/// Std container/pointer types whose methods live outside the workspace: a
/// receiver *declared* with one of these resolves to no workspace fn at all
/// (`outputs.push(…)` on a `Vec` must not reach every workspace `push`).
/// Their allocating methods are still caught site-wise by the escape pass's
/// vocabulary, which matches names without resolving them.
const EXTERNAL_TYPES: &[&str] = &[
    "Vec", "VecDeque", "String", "BTreeMap", "BTreeSet", "HashMap", "HashSet", "Box", "Rc",
    "Option", "Result", "Path", "PathBuf", "Duration", "Instant", "Range",
];

/// Skips one lifetime at the front of `rest`: either a raw `'a`, or the
/// form `blank_noncode` leaves behind — the apostrophe blanked to a space,
/// so `&'a mut T` scans as `& a mut T` and the lifetime reads as a lone
/// lowercase word. Two space-separated words never occur in a type except
/// after `mut`/`dyn`/`impl` (which the callers strip the same way), so a
/// lowercase word with more text after it is such a remnant.
fn skip_lifetime(rest: &str) -> &str {
    if let Some(r) = rest.strip_prefix('\'') {
        let end = r
            .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
            .unwrap_or(r.len());
        return r[end..].trim_start();
    }
    let end = rest
        .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    if end > 0
        && rest.starts_with(|c: char| c.is_ascii_lowercase())
        && &rest[..end] != "self"
        && rest[end..].starts_with(|c: char| c.is_ascii_whitespace())
        && !rest[end..].trim_start().is_empty()
    {
        return rest[end..].trim_start();
    }
    rest
}

/// The base identifier of a declared type: `&mut Vec<EngineOutput>` → `Vec`,
/// `sdds_xml::Event` → `Event`, `&'a str` → `None` (primitives and generics
/// stay untyped). Only an uppercase-initial final segment counts.
fn base_type(text: &str) -> Option<String> {
    let mut rest = text.trim_start();
    loop {
        let before = rest;
        rest = rest.strip_prefix('&').unwrap_or(rest).trim_start();
        for kw in ["mut ", "dyn ", "impl "] {
            rest = rest.strip_prefix(kw).unwrap_or(rest).trim_start();
        }
        rest = skip_lifetime(rest);
        if rest == before {
            break;
        }
    }
    loop {
        let end = rest
            .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
            .unwrap_or(rest.len());
        let (ident, tail) = rest.split_at(end);
        if ident.is_empty() {
            return None;
        }
        // A lowercase segment followed by `::` is a module path — keep going.
        if tail.starts_with("::") && ident.starts_with(|c: char| c.is_ascii_lowercase()) {
            rest = &tail[2..];
            continue;
        }
        return ident
            .starts_with(|c: char| c.is_ascii_uppercase())
            .then(|| ident.to_owned());
    }
}

/// Splits `text` at commas that sit outside every `<…>`, `(…)`, `[…]` group.
fn split_top_commas(text: &str) -> Vec<&str> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'<' | b'(' | b'[' => depth += 1,
            b'>' if i > 0 && bytes[i - 1] == b'-' => {}
            b'>' | b')' | b']' => depth -= 1,
            b',' if depth == 0 => {
                out.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&text[start..]);
    out
}

/// Typed bindings declared by the signature: each `name: Type` parameter
/// whose pattern is a plain identifier, mapped to the type's base ident.
fn param_bindings(signature: &str, out: &mut BTreeMap<String, String>) {
    // The parameter list is the first paren group at angle-depth zero (a
    // `Fn(…)` bound inside the generics must not fool the scan).
    let bytes = signature.as_bytes();
    let mut depth = 0i32;
    let mut open = None;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'<' => depth += 1,
            b'>' if i > 0 && bytes[i - 1] != b'-' => depth -= 1,
            b'(' if depth == 0 => {
                open = Some(i);
                break;
            }
            _ => {}
        }
    }
    let Some(open) = open else { return };
    let mut pdepth = 0i32;
    let mut close = None;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => pdepth += 1,
            b')' => {
                pdepth -= 1;
                if pdepth == 0 {
                    close = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(close) = close else { return };
    for param in split_top_commas(&signature[open + 1..close]) {
        let Some((pat, ty)) = param.split_once(':') else {
            continue;
        };
        let name = pat.trim().trim_start_matches("mut ").trim();
        if name == "self" || name.is_empty() || !name.bytes().all(is_ident_byte) {
            continue;
        }
        if let Some(base) = base_type(ty) {
            out.insert(name.to_owned(), base);
        }
    }
}

/// Typed bindings declared in the body: `let [mut] name: Type = …` uses the
/// annotation; `let [mut] name = Type::ctor(…)` trusts the constructor path
/// (the usual `Fnv1a::default()` / `Parser::new(…)` idiom — a constructor
/// returning some *other* type simply yields a binding no resolution will
/// match, which falls back to by-name).
fn let_bindings(body: &FnBody, out: &mut BTreeMap<String, String>) {
    let text = body.text.as_str();
    let bytes = text.as_bytes();
    for (at, _) in text.match_indices("let") {
        if (at > 0 && is_ident_byte(bytes[at - 1]))
            || bytes.get(at + 3).copied().is_some_and(is_ident_byte)
        {
            continue;
        }
        let mut i = at + 3;
        let word = |i: &mut usize| {
            while *i < bytes.len() && bytes[*i].is_ascii_whitespace() {
                *i += 1;
            }
            let start = *i;
            while *i < bytes.len() && is_ident_byte(bytes[*i]) {
                *i += 1;
            }
            start..*i
        };
        let mut name = word(&mut i);
        if &text[name.clone()] == "mut" {
            name = word(&mut i);
        }
        if name.is_empty() {
            continue;
        }
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let base = match bytes.get(i) {
            Some(b':') if bytes.get(i + 1) != Some(&b':') => {
                // Annotated: the type text runs to the `=` or `;` outside
                // every bracket group.
                let mut depth = 0i32;
                let mut j = i + 1;
                while j < bytes.len() {
                    match bytes[j] {
                        b'<' | b'(' | b'[' => depth += 1,
                        b'>' if bytes[j - 1] == b'-' => {}
                        b'>' | b')' | b']' => depth -= 1,
                        b'=' | b';' if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                base_type(&text[i + 1..j])
            }
            Some(b'=') if bytes.get(i + 1) != Some(&b'=') => {
                // Initializer: `Type::ctor(…)` and the struct literal
                // `Type { … }` pin the type; a `vec![…]` literal pins `Vec`.
                let path = word(&mut { i + 1 });
                let ident = &text[path.clone()];
                let tail = text[path.end..].trim_start();
                if ident == "vec" && text[path.end..].starts_with('!') {
                    Some("Vec".to_owned())
                } else if text[path.end..].starts_with("::") || tail.starts_with('{') {
                    ident
                        .starts_with(|c: char| c.is_ascii_uppercase())
                        .then(|| ident.to_owned())
                } else {
                    // `let x = deps.to_vec();` — the slice-copy tail always
                    // yields a `Vec`, whatever the receiver was.
                    let mut depth = 0i32;
                    let mut j = i + 1;
                    while j < bytes.len() {
                        match bytes[j] {
                            b'(' | b'[' | b'{' => depth += 1,
                            b')' | b']' | b'}' => depth -= 1,
                            b';' if depth == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    text[i + 1..j]
                        .trim_end()
                        .ends_with(".to_vec()")
                        .then(|| "Vec".to_owned())
                }
            }
            _ => None,
        };
        if let Some(base) = base {
            out.insert(text[name].to_owned(), base);
        }
    }
}

/// True when the fn signature declares a `self` receiver (`&self`,
/// `&'a mut self`, `mut self`, `self`, `self: Pin<…>`). Associated functions
/// without one can never be the target of a `recv.method(…)` call, so the
/// graph keeps them out of the by-name method index.
fn takes_self(signature: &str) -> bool {
    // The receiver paren is the first `(` at angle-depth zero — a `Fn(…)`
    // bound inside the generic parameter list must not fool the scan.
    let bytes = signature.as_bytes();
    let mut depth = 0i32;
    let mut params = None;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'<' => depth += 1,
            b'>' if i > 0 && bytes[i - 1] != b'-' => depth -= 1,
            b'(' if depth == 0 => {
                params = Some(i + 1);
                break;
            }
            _ => {}
        }
    }
    let Some(params) = params else { return false };
    let mut rest = signature[params..].trim_start();
    if let Some(r) = rest.strip_prefix('&') {
        rest = skip_lifetime(r.trim_start());
    }
    if let Some(r) = rest.strip_prefix("mut ") {
        rest = r.trim_start();
    }
    rest.strip_prefix("self").is_some_and(|r| {
        r.starts_with([',', ')', ':']) || r.trim_start().starts_with([',', ')', ':'])
    })
}

/// One fn in the workspace call graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index of the declaring file in the `files` slice the graph was built
    /// from.
    pub file: usize,
    /// The fn name.
    pub name: String,
    /// Base name of the impl/trait self type (`ShardedStore` for a method
    /// of `impl ShardedStore`), `None` for free fns.
    pub self_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the fn sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// The captured body span, if the fn has a body.
    pub body: Option<FnBody>,
    /// Extracted call sites, in source order.
    pub calls: Vec<CallSite>,
    /// Receiver ident → declared base type, from typed params and `let`s.
    pub bindings: BTreeMap<String, String>,
}

impl FnNode {
    /// `Type::name` for methods, the bare name for free fns.
    pub fn qualified_name(&self) -> String {
        match &self.self_type {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace call graph: every fn item across the given files, indexed
/// for the three resolution shapes.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All fn nodes, in file order.
    pub fns: Vec<FnNode>,
    by_free_name: BTreeMap<String, Vec<usize>>,
    by_method_name: BTreeMap<String, Vec<usize>>,
    by_qualified: BTreeMap<(String, String), Vec<usize>>,
    /// `(struct base, field name)` → field type base, from braced struct
    /// declarations — types `self.field.m(…)` receiver chains.
    field_types: BTreeMap<(String, String), String>,
}

impl CallGraph {
    /// Parses every file and builds the graph. Test-gated fns are kept as
    /// nodes (so annotations inside them can be located) but are never
    /// resolution targets — test code cannot put a fn on a hot path.
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut graph = CallGraph::default();
        for (fi, file) in files.iter().enumerate() {
            for item in parse_items(&file.contents) {
                if item.kind == ItemKind::Struct && !item.in_test {
                    for (fname, ftext) in &item.fields {
                        if let Some(base) = base_type(ftext) {
                            graph
                                .field_types
                                .insert((item.name.clone(), fname.clone()), base);
                        }
                    }
                }
                if item.kind != ItemKind::Fn {
                    continue;
                }
                let self_type = item
                    .self_type
                    .as_deref()
                    .and_then(|ty| type_idents(ty).into_iter().next());
                let calls = item.body.as_ref().map(call_sites).unwrap_or_default();
                let mut bindings = BTreeMap::new();
                param_bindings(&item.signature, &mut bindings);
                if let Some(body) = &item.body {
                    let_bindings(body, &mut bindings);
                }
                if let Some(ty) = &self_type {
                    // `let x = Self::ctor(…)` binds to the impl type.
                    for v in bindings.values_mut() {
                        if v == "Self" {
                            v.clone_from(ty);
                        }
                    }
                }
                let index = graph.fns.len();
                if !item.in_test {
                    match &self_type {
                        Some(ty) => {
                            graph
                                .by_qualified
                                .entry((ty.clone(), item.name.clone()))
                                .or_default()
                                .push(index);
                            // Only real methods — fns with a `self` receiver —
                            // are candidates for `recv.method(…)` dispatch;
                            // associated fns are reachable solely through
                            // their `Type::assoc(…)` qualified form.
                            if takes_self(&item.signature) {
                                graph
                                    .by_method_name
                                    .entry(item.name.clone())
                                    .or_default()
                                    .push(index);
                            }
                        }
                        None => {
                            graph
                                .by_free_name
                                .entry(item.name.clone())
                                .or_default()
                                .push(index);
                        }
                    }
                }
                graph.fns.push(FnNode {
                    file: fi,
                    name: item.name,
                    self_type,
                    line: item.line,
                    in_test: item.in_test,
                    body: item.body,
                    calls,
                    bindings,
                });
            }
        }
        graph
    }

    /// Resolves one call site of `caller` to the workspace fns it may reach.
    ///
    /// - free calls → free fns of that name;
    /// - `Type::assoc(…)` → methods of impls whose self-type base matches
    ///   (`Self::` resolves against the caller's own self type); a lowercase
    ///   qualifier is a module path, so the call resolves like a free call;
    /// - `recv.m(…)` → when the receiver's type is pinned (`self` → the
    ///   impl type; a plain ident → its declared binding), the type's own
    ///   `m` if it defines one, or *nothing* if the type is a declared std
    ///   container (`EXTERNAL_TYPES`); otherwise — and for
    ///   `<T as Trait>::m(…)` — every workspace method of that name,
    ///   conservative, see the module docs;
    /// - macros → nothing (vocabulary macros are matched directly by the
    ///   escape pass).
    pub fn callees(&self, caller: usize, site: &CallSite) -> &[usize] {
        static EMPTY: [usize; 0] = [];
        match site.kind {
            CallKind::Macro => &EMPTY,
            CallKind::Free => self
                .by_free_name
                .get(&site.callee)
                .map_or(&EMPTY[..], Vec::as_slice),
            CallKind::Method => {
                let node = &self.fns[caller];
                // Type the receiver chain head (`self` → the impl type, a
                // plain ident → its declared binding), then walk any `.field`
                // links through declared struct fields. A link that fails to
                // type drops to the by-name fallback.
                let ty = site.qualifier.as_deref().and_then(|recv| {
                    let mut segments = recv.split('.');
                    let head = segments.next()?;
                    let mut ty = match head {
                        "self" => node.self_type.clone()?,
                        _ => node.bindings.get(head)?.clone(),
                    };
                    for field in segments {
                        ty = self.field_types.get(&(ty, field.to_owned()))?.clone();
                    }
                    Some(ty)
                });
                if let Some(ty) = ty {
                    if let Some(hit) = self.by_qualified.get(&(ty.clone(), site.callee.clone())) {
                        return hit;
                    }
                    if EXTERNAL_TYPES.contains(&ty.as_str()) {
                        return &EMPTY;
                    }
                }
                self.by_method_name
                    .get(&site.callee)
                    .map_or(&EMPTY[..], Vec::as_slice)
            }
            CallKind::Ufcs => match &site.qualifier {
                Some(q) if q == "Self" => match &self.fns[caller].self_type {
                    Some(ty) => self
                        .by_qualified
                        .get(&(ty.clone(), site.callee.clone()))
                        .map_or(&EMPTY[..], Vec::as_slice),
                    None => &EMPTY,
                },
                Some(q) if q.starts_with(|c: char| c.is_ascii_uppercase()) => self
                    .by_qualified
                    .get(&(q.clone(), site.callee.clone()))
                    .map_or(&EMPTY[..], Vec::as_slice),
                // Lowercase qualifier: a module path — resolve the final
                // segment as a free fn.
                Some(_) => self
                    .by_free_name
                    .get(&site.callee)
                    .map_or(&EMPTY[..], Vec::as_slice),
                None => self
                    .by_method_name
                    .get(&site.callee)
                    .map_or(&EMPTY[..], Vec::as_slice),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, contents: &str) -> SourceFile {
        SourceFile {
            path: path.to_owned(),
            contents: contents.to_owned(),
        }
    }

    fn sites(src: &str) -> Vec<CallSite> {
        let graph = CallGraph::build(&[file("a.rs", src)]);
        let node = graph
            .fns
            .iter()
            .find(|f| f.name == "subject")
            .unwrap_or_else(|| panic!("no subject fn in {src}"));
        node.calls.clone()
    }

    #[test]
    fn extracts_free_method_ufcs_and_macro_calls() {
        let got = sites(
            "fn subject(x: &[u8]) {\n    helper(x);\n    x.to_vec();\n    Arc::clone(&a);\n    format!(\"{x:?}\");\n}\n",
        );
        let shapes: Vec<(CallKind, &str, Option<&str>)> = got
            .iter()
            .map(|s| (s.kind, s.callee.as_str(), s.qualifier.as_deref()))
            .collect();
        assert_eq!(
            shapes,
            vec![
                (CallKind::Free, "helper", None),
                (CallKind::Method, "to_vec", Some("x")),
                (CallKind::Ufcs, "clone", Some("Arc")),
                (CallKind::Macro, "format", None),
            ],
            "{got:?}"
        );
        assert_eq!(got[0].line, 2);
        assert_eq!(got[3].line, 5);
    }

    #[test]
    fn turbofish_and_chains_are_calls() {
        let got =
            sites("fn subject(v: Vec<u8>) {\n    v.iter().map(double).collect::<Vec<_>>();\n}\n");
        let names: Vec<&str> = got.iter().map(|s| s.callee.as_str()).collect();
        assert_eq!(names, ["iter", "map", "collect"], "{got:?}");
        assert!(got.iter().all(|s| s.kind == CallKind::Method));
    }

    #[test]
    fn literals_keywords_and_comparisons_are_not_calls() {
        let got = sites(
            "fn subject(x: u8) {\n    let s = \"fake(\";\n    if x != 0 { return; }\n    match (x, 0) { _ => {} }\n}\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn nested_fn_definitions_are_not_call_sites() {
        let got =
            sites("fn subject() {\n    fn local(x: u8) -> u8 { double(x) }\n    local(3);\n}\n");
        let names: Vec<&str> = got.iter().map(|s| s.callee.as_str()).collect();
        // `double` inside the nested body is attributed to `subject`
        // (conservative); the `fn local(…)` head itself is not a call.
        assert_eq!(names, ["double", "local"], "{got:?}");
    }

    #[test]
    fn graph_resolves_free_method_and_self_calls() {
        let src = "\
struct Store;
impl Store {
    fn serve(&self) { helper(); self.account(1); Self::check(); }
    fn account(&self, n: usize) {}
    fn check() {}
}
fn helper() {}
";
        let graph = CallGraph::build(&[file("a.rs", src)]);
        let serve = graph.fns.iter().position(|f| f.name == "serve").unwrap();
        let by_name = |n: &str| graph.fns.iter().position(|f| f.name == n).unwrap();
        let mut reached = Vec::new();
        for site in &graph.fns[serve].calls {
            reached.extend_from_slice(graph.callees(serve, site));
        }
        assert!(reached.contains(&by_name("helper")), "{reached:?}");
        assert!(reached.contains(&by_name("account")), "{reached:?}");
        assert!(reached.contains(&by_name("check")), "{reached:?}");
    }

    #[test]
    fn module_qualified_calls_resolve_as_free_fns() {
        let src = "\
fn subject() { secdoc::decrypt_chunk(); }
fn decrypt_chunk() {}
";
        let graph = CallGraph::build(&[file("a.rs", src)]);
        let subject = graph.fns.iter().position(|f| f.name == "subject").unwrap();
        let site = &graph.fns[subject].calls[0];
        assert_eq!(site.kind, CallKind::Ufcs);
        assert_eq!(site.qualifier.as_deref(), Some("secdoc"));
        let reached = graph.callees(subject, site);
        assert_eq!(reached.len(), 1);
        assert_eq!(graph.fns[reached[0]].name, "decrypt_chunk");
    }

    #[test]
    fn test_gated_fns_are_never_resolution_targets() {
        let src = "\
fn subject() { helper(); }
#[cfg(test)]
mod tests {
    fn helper() {}
}
";
        let graph = CallGraph::build(&[file("a.rs", src)]);
        let subject = graph.fns.iter().position(|f| f.name == "subject").unwrap();
        let site = &graph.fns[subject].calls[0];
        assert!(graph.callees(subject, site).is_empty());
    }

    #[test]
    fn declared_receiver_types_resolve_precisely() {
        let src = "\
struct Rules;
impl Rules {
    fn push(&mut self, x: u8) { helper(); }
}
struct Hasher2;
impl Hasher2 {
    fn default() -> Hasher2 { Hasher2 }
    fn finish(&self) -> u64 { 0 }
}
struct Engine;
impl Engine {
    fn step(&mut self, outputs: &mut Vec<u8>, rules: &mut Rules) {
        outputs.push(1);
        rules.push(2);
        let mut hasher = Hasher2::default();
        hasher.finish();
        let scratch: Vec<u8> = Vec::with_capacity(4);
        scratch.push(3);
    }
}
fn helper() {}
";
        let graph = CallGraph::build(&[file("a.rs", src)]);
        let step = graph.fns.iter().position(|f| f.name == "step").unwrap();
        let resolved: Vec<Vec<String>> = graph.fns[step]
            .calls
            .iter()
            .map(|s| {
                graph
                    .callees(step, s)
                    .iter()
                    .map(|&i| graph.fns[i].qualified_name())
                    .collect()
            })
            .collect();
        // outputs: Vec → std, nothing; rules: Rules → Rules::push;
        // hasher = Hasher2::default() → Hasher2::finish;
        // Hasher2::default + Vec::with_capacity are UFCS sites;
        // scratch: Vec (annotated let) → std, nothing.
        let flat: Vec<String> = resolved.into_iter().flatten().collect();
        assert_eq!(
            flat,
            ["Rules::push", "Hasher2::default", "Hasher2::finish"],
            "{:?}",
            graph.fns[step].calls
        );
    }

    #[test]
    fn associated_fns_are_not_method_call_targets() {
        let src = "\
struct Config;
impl Config {
    fn parse(text: &str) -> Config { Config }
    fn len(&self) -> usize { 0 }
}
fn subject(s: &str) {
    s.parse();
    s.len();
    Config::parse(s);
}
";
        let graph = CallGraph::build(&[file("a.rs", src)]);
        let subject = graph.fns.iter().position(|f| f.name == "subject").unwrap();
        let calls = &graph.fns[subject].calls;
        assert!(
            graph.callees(subject, &calls[0]).is_empty(),
            "`.parse()` must not dispatch to the associated fn Config::parse"
        );
        assert_eq!(graph.callees(subject, &calls[1]).len(), 1);
        assert_eq!(
            graph.callees(subject, &calls[2]).len(),
            1,
            "UFCS still resolves"
        );
    }

    #[test]
    fn receivers_with_generic_fn_bounds_still_take_self() {
        assert!(takes_self("fn serve<T, F: Fn(u8) -> T>(&self, f: F) -> T"));
        assert!(takes_self("fn run(mut self) -> u8"));
        assert!(takes_self("fn poll(self: Pin<&mut Self>)"));
        assert!(takes_self("fn borrow<'a>(&'a mut self)"));
        assert!(!takes_self("fn parse(text: &str) -> Config"));
        assert!(!takes_self("fn selfish(selfy: u8)"));
    }

    #[test]
    fn self_method_calls_resolve_against_the_callers_impl() {
        let src = "\
struct Card;
impl Card {
    fn run(&self) { self.step(); }
    fn step(&self) {}
}
struct Baseline;
impl Baseline {
    fn step(&self) {}
}
";
        let graph = CallGraph::build(&[file("a.rs", src)]);
        let run = graph.fns.iter().position(|f| f.name == "run").unwrap();
        let site = &graph.fns[run].calls[0];
        assert_eq!(site.qualifier.as_deref(), Some("self"));
        let reached = graph.callees(run, site);
        assert_eq!(
            reached.len(),
            1,
            "self.step() must not reach Baseline::step"
        );
        assert_eq!(graph.fns[reached[0]].qualified_name(), "Card::step");
        // An undeclared field receiver still falls back to by-name.
        let graph = CallGraph::build(&[file(
            "b.rs",
            "struct A; impl A { fn go(&self) { self.inner.step(); } }\n",
        )]);
        let go = graph.fns.iter().position(|f| f.name == "go").unwrap();
        assert_eq!(
            graph.fns[go].calls[0].qualifier.as_deref(),
            Some("self.inner")
        );
    }

    #[test]
    fn field_receivers_resolve_through_declared_struct_fields() {
        let src = "\
struct Frames { names: Vec<u8> }
struct Rules;
impl Rules {
    fn push(&mut self, x: u8) {}
}
struct Engine { frames: Vec<u8>, rules: Rules, nested: Frames }
impl Engine {
    fn step(&mut self) {
        self.frames.push(1);
        self.rules.push(2);
        self.nested.names.push(3);
        self.unknown.push(4);
        let grown = vec![0u8];
        grown.push(5);
    }
}
";
        let graph = CallGraph::build(&[file("a.rs", src)]);
        let step = graph.fns.iter().position(|f| f.name == "step").unwrap();
        let resolved: Vec<Vec<String>> = graph.fns[step]
            .calls
            .iter()
            .map(|s| {
                graph
                    .callees(step, s)
                    .iter()
                    .map(|&i| graph.fns[i].qualified_name())
                    .collect()
            })
            .collect();
        // self.frames: Vec → nothing; self.rules: Rules → Rules::push;
        // self.nested.names: Frames → Vec → nothing; self.unknown is
        // undeclared → by-name fallback → Rules::push; `vec![…]` let → Vec
        // → nothing (the `vec!` macro site itself is matched by vocabulary).
        let flat: Vec<String> = resolved.into_iter().flatten().collect();
        assert_eq!(
            flat,
            ["Rules::push", "Rules::push"],
            "{:?}",
            graph.fns[step].calls
        );
    }

    #[test]
    fn turbofished_type_paths_keep_their_qualifier() {
        let src = "\
struct Pool;
impl Pool {
    fn new() -> Pool { Pool }
}
fn subject() {
    Pool::<u8>::new();
    Vec::<u8>::new();
    <Pool as Default>::default();
}
";
        let graph = CallGraph::build(&[file("a.rs", src)]);
        let subject = graph.fns.iter().position(|f| f.name == "subject").unwrap();
        let calls = &graph.fns[subject].calls;
        assert_eq!(calls[0].qualifier.as_deref(), Some("Pool"), "{calls:?}");
        assert_eq!(calls[1].qualifier.as_deref(), Some("Vec"));
        assert_eq!(
            calls[2].qualifier, None,
            "trait-qualified path is unknowable"
        );
        // `Pool::<u8>::new` reaches exactly Pool::new; `Vec::<u8>::new`
        // reaches nothing (no workspace Vec) instead of every `new`.
        let reached = graph.callees(subject, &calls[0]);
        assert_eq!(reached.len(), 1);
        assert_eq!(graph.fns[reached[0]].qualified_name(), "Pool::new");
        assert!(graph.callees(subject, &calls[1]).is_empty());
    }

    #[test]
    fn method_resolution_spans_files() {
        let graph = CallGraph::build(&[
            file("a.rs", "fn subject(s: &Store) { s.serve_chunk(0); }\n"),
            file(
                "b.rs",
                "struct Store;\nimpl Store {\n    fn serve_chunk(&self, i: u32) {}\n}\n",
            ),
        ]);
        let subject = graph.fns.iter().position(|f| f.name == "subject").unwrap();
        let reached = graph.callees(subject, &graph.fns[subject].calls[0]);
        assert_eq!(reached.len(), 1);
        assert_eq!(graph.fns[reached[0]].qualified_name(), "Store::serve_chunk");
    }
}
