#![forbid(unsafe_code)]
//! Workspace driver for the `sdds-lint` rules: walks the first-party crates,
//! applies the token rules that match each file's path, runs the item-level
//! trust-boundary analysis over the whole workspace, prints violations in
//! `file:line: [rule] message` form, and exits non-zero if any were found.
//!
//! Usage (from anywhere in the workspace):
//!
//! ```text
//! cargo run -p sdds-lint                      # scan, human-readable report
//! cargo run -p sdds-lint -- --json out.json   # also write machine-readable JSON
//! cargo run -p sdds-lint -- --explain taint-dsp
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use sdds_lint::escape::{self, check_hotpath_sync, HotConfig};
use sdds_lint::taint::{analyze, check_trust_sync, SourceFile, TrustConfig};
use sdds_lint::{
    check_doc_sync, check_metric_sync, metric_families, scan_file, violations_to_json, FileRules,
    Rule, Violation,
};

/// First-party crate directories, relative to the workspace root. Vendored
/// crates (`vendor/`) are deliberately out of scope.
const CRATES: &[&str] = &[
    "crates/core",
    "crates/card",
    "crates/crypto",
    "crates/xml",
    "crates/xpath",
    "crates/dsp",
    "crates/proxy",
    "crates/bench",
    "crates/sync",
    "crates/check",
    "crates/lint",
    "crates/obs",
    ".",
];

/// Crates whose library code must route synchronization through `sdds-sync`
/// and never sleep: the serving core the model checker instruments, plus the
/// facade crate that drives it and the telemetry layer they embed.
const FACADE_CRATES: &[&str] = &["crates/dsp", "crates/proxy", "crates/obs", "."];

fn workspace_root() -> PathBuf {
    // crates/lint/ -> crates/ -> workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_sources(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rules_for(crate_dir: &str, path: &Path) -> FileRules {
    let is_facade_scope = FACADE_CRATES.contains(&crate_dir);
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    // The no-panic rule covers *library* code; binaries under src/bin may
    // abort on startup or I/O errors like any CLI tool.
    let is_bin = path
        .components()
        .any(|c| c.as_os_str().to_str() == Some("bin"));
    FileRules {
        facade: is_facade_scope,
        no_sleep: is_facade_scope,
        no_panic: !is_bin,
        ordering: true,
        // lib.rs is always a crate root; main.rs is the root of a bin crate.
        forbid_unsafe: name == "lib.rs" || name == "main.rs",
        // sdds-obs is where the metric cells live; everywhere else in the
        // facade-routed service code, a fresh AtomicU64 is a shadow metric.
        adhoc_atomic: is_facade_scope && crate_dir != "crates/obs",
    }
}

fn run() -> Result<Vec<Violation>, String> {
    let root = workspace_root();
    let mut violations = Vec::new();
    let mut sources: Vec<SourceFile> = Vec::new();
    for crate_dir in CRATES {
        let src = root.join(crate_dir).join("src");
        if !src.is_dir() {
            return Err(format!("missing source directory: {}", src.display()));
        }
        let mut files = Vec::new();
        rust_sources(&src, &mut files).map_err(|e| format!("walking {}: {e}", src.display()))?;
        for file in files {
            let contents = std::fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            let shown = file.strip_prefix(&root).unwrap_or(&file);
            violations.extend(scan_file(shown, &contents, rules_for(crate_dir, &file)));
            sources.push(SourceFile {
                path: shown.to_string_lossy().replace('\\', "/"),
                contents,
            });
        }
    }

    let config_path = root.join("crates/lint/trust.toml");
    let config_text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("reading {}: {e}", config_path.display()))?;
    let config = TrustConfig::parse(&config_text)?;
    violations.extend(analyze(&config, &sources));

    let hot_path = root.join(escape::CONFIG_PATH);
    let hot_text = std::fs::read_to_string(&hot_path)
        .map_err(|e| format!("reading {}: {e}", hot_path.display()))?;
    let hot_config = HotConfig::parse(&hot_text)?;
    violations.extend(escape::analyze(&hot_config, &sources));

    violations.extend(doc_sync(&root, &config, &hot_config)?);
    eprintln!(
        "sdds-lint: scanned {} files across {} crates, {} violation(s)",
        sources.len(),
        CRATES.len(),
        violations.len()
    );
    Ok(violations)
}

/// The doc-sync rule: every `crates/bench/benches/e*.rs` experiment bench
/// must be named in ARCHITECTURE.md's experiment table, every metric family
/// declared in `crates/obs/src/families.rs` must appear in the book's metric
/// table, every type tiered in `trust.toml` must appear in the book's
/// trust-boundary table, and every hot root in `hotpath.toml` must appear in
/// the book's hot-root table.
fn doc_sync(
    root: &Path,
    config: &TrustConfig,
    hot_config: &HotConfig,
) -> Result<Vec<Violation>, String> {
    let benches_dir = root.join("crates/bench/benches");
    let mut files = Vec::new();
    rust_sources(&benches_dir, &mut files)
        .map_err(|e| format!("walking {}: {e}", benches_dir.display()))?;
    let bench_files: Vec<String> = files
        .iter()
        .filter_map(|p| p.file_name().and_then(|n| n.to_str()))
        .filter(|n| n.starts_with('e') && n[1..].starts_with(|c: char| c.is_ascii_digit()))
        .map(str::to_owned)
        .collect();
    let book_path = Path::new("ARCHITECTURE.md");
    let book = std::fs::read_to_string(root.join(book_path))
        .map_err(|e| format!("reading {}: {e}", book_path.display()))?;
    let mut violations = check_doc_sync(book_path, &book, &bench_files);

    let families_path = root.join("crates/obs/src/families.rs");
    let families_src = std::fs::read_to_string(&families_path)
        .map_err(|e| format!("reading {}: {e}", families_path.display()))?;
    violations.extend(check_metric_sync(
        book_path,
        &book,
        &metric_families(&families_src),
    ));
    violations.extend(check_trust_sync(book_path, &book, config));
    violations.extend(check_hotpath_sync(book_path, &book, hot_config));
    Ok(violations)
}

enum Mode {
    Scan { json: Option<PathBuf> },
    Explain(String),
}

fn parse_args() -> Result<Mode, String> {
    let mut args = std::env::args().skip(1);
    let mut json = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                json = Some(PathBuf::from(
                    args.next().ok_or("--json needs a file path")?,
                ));
            }
            "--explain" => {
                return Ok(Mode::Explain(
                    args.next().ok_or("--explain needs a rule name")?,
                ));
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}` \
                     (usage: sdds-lint [--json <path>] [--explain <rule>])"
                ));
            }
        }
    }
    Ok(Mode::Scan { json })
}

fn explain(rule_name: &str) -> ExitCode {
    match Rule::by_name(rule_name) {
        Some(rule) => {
            println!("{}\n\n{}", rule.name(), rule.explain());
            ExitCode::SUCCESS
        }
        None => {
            let known: Vec<&str> = Rule::ALL.iter().map(|r| r.name()).collect();
            eprintln!(
                "sdds-lint: unknown rule `{rule_name}`; known rules: {}",
                known.join(", ")
            );
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let mode = match parse_args() {
        Ok(mode) => mode,
        Err(error) => {
            eprintln!("sdds-lint: error: {error}");
            return ExitCode::from(2);
        }
    };
    let json = match mode {
        Mode::Explain(rule) => return explain(&rule),
        Mode::Scan { json } => json,
    };
    match run() {
        Err(error) => {
            eprintln!("sdds-lint: error: {error}");
            ExitCode::from(2)
        }
        Ok(violations) => {
            if let Some(path) = json {
                if let Err(error) = std::fs::write(&path, violations_to_json(&violations)) {
                    eprintln!("sdds-lint: error: writing {}: {error}", path.display());
                    return ExitCode::from(2);
                }
            }
            if violations.is_empty() {
                return ExitCode::SUCCESS;
            }
            for v in &violations {
                println!("{v}");
            }
            ExitCode::FAILURE
        }
    }
}
