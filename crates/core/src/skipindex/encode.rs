//! Publisher-side encoding: compact binary tokens with embedded subtree
//! summaries.
//!
//! The encoder runs on the publisher's (trusted) terminal when a document is
//! prepared for the DSP; it is the only stage that sees the document as a
//! whole. Its output is the plaintext that [`crate::secdoc`] chunks and
//! encrypts. Element and attribute names are replaced by dictionary ids, text
//! is stored verbatim, and — where the indexing policy decides it is worth it —
//! an element's opening token is followed by a *subtree summary* carrying the
//! byte length of its content and the (recursively compressed) set of tags
//! occurring below it.

use sdds_xml::{Document, NodeData, NodeId, TagDict, TagSet};

use super::compress::{varint_len, write_varint, TagReference};

/// Token type markers of the binary stream.
pub mod token {
    /// Opening tag.
    pub const OPEN: u8 = 0x01;
    /// Text node.
    pub const TEXT: u8 = 0x02;
    /// Closing tag.
    pub const CLOSE: u8 = 0x03;
    /// Subtree summary (skip-index entry).
    pub const SUMMARY: u8 = 0x04;
}

/// Indexing policy of the encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderConfig {
    /// Emit subtree summaries at all. Disabling them produces the *no-index*
    /// baseline of experiment E2.
    pub index_enabled: bool,
    /// Only summarise elements whose encoded content is at least this long —
    /// skipping a smaller subtree saves less than the summary costs.
    pub min_index_bytes: usize,
    /// Encode nested bitmaps against the enclosing summary's tag set
    /// (the paper's recursive compression). Disabling it is the E3 ablation.
    pub recursive_bitmaps: bool,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            index_enabled: true,
            min_index_bytes: 64,
            recursive_bitmaps: true,
        }
    }
}

impl EncoderConfig {
    /// Configuration with the skip index disabled.
    pub fn without_index() -> Self {
        EncoderConfig {
            index_enabled: false,
            ..EncoderConfig::default()
        }
    }
}

/// A decoded subtree summary (also used by the reader).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubtreeSummary {
    /// Byte length of the element's encoded content (children tokens only,
    /// excluding the closing token).
    pub content_len: u64,
    /// Set of element tags occurring strictly below the element.
    pub tags: TagSet,
}

/// Statistics of one encoding run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EncodeStats {
    /// Number of subtree summaries emitted.
    pub summaries: usize,
    /// Bytes spent on summaries (the index overhead).
    pub index_bytes: usize,
    /// Bytes of the token stream (including summaries).
    pub token_bytes: usize,
    /// Bytes of the serialised tag dictionary.
    pub dict_bytes: usize,
}

/// The result of encoding a document.
#[derive(Debug, Clone)]
pub struct EncodedDocument {
    /// Tag dictionary (element and attribute names).
    pub dict: TagDict,
    /// Binary token stream with embedded summaries.
    pub tokens: Vec<u8>,
    /// Encoding statistics.
    pub stats: EncodeStats,
}

impl EncodedDocument {
    /// Full plaintext as chunked by the secure document layer: serialised
    /// dictionary followed by the token stream.
    pub fn plaintext(&self) -> Vec<u8> {
        let mut out = self.dict.encode();
        out.extend_from_slice(&self.tokens);
        out
    }

    /// Fraction of the token stream spent on the index, in `[0, 1]`.
    pub fn index_overhead(&self) -> f64 {
        if self.stats.token_bytes == 0 {
            0.0
        } else {
            self.stats.index_bytes as f64 / self.stats.token_bytes as f64
        }
    }
}

/// Per-element information computed by the bottom-up analysis pass.
struct ElementInfo {
    /// Tags strictly below the element.
    descendant_tags: TagSet,
    /// Approximate content size (without summaries), used by the policy.
    base_content_len: usize,
    /// Whether a summary will be emitted for this element.
    indexed: bool,
}

/// The document encoder.
#[derive(Debug)]
pub struct DocumentEncoder {
    config: EncoderConfig,
}

impl DocumentEncoder {
    /// Creates an encoder.
    pub fn new(config: EncoderConfig) -> Self {
        DocumentEncoder { config }
    }

    /// Encodes `doc`.
    pub fn encode(&self, doc: &Document) -> EncodedDocument {
        let mut dict = TagDict::new();
        // Deterministic id assignment: document order, elements then their
        // attribute names.
        for node in doc.all_nodes() {
            if let NodeData::Element { name, attrs } = doc.data(node) {
                dict.intern(name);
                for a in attrs {
                    dict.intern(&a.name);
                }
            }
        }

        let mut stats = EncodeStats {
            dict_bytes: dict.encoded_len(),
            ..EncodeStats::default()
        };
        let mut tokens = Vec::new();
        if let Some(root) = doc.root() {
            let mut infos = std::collections::HashMap::new();
            self.analyse(doc, root, &dict, &mut infos);
            let root_ref = TagReference::full(dict.len());
            self.encode_node(doc, root, &dict, &infos, &root_ref, &mut tokens, &mut stats);
        }
        stats.token_bytes = tokens.len();
        EncodedDocument {
            dict,
            tokens,
            stats,
        }
    }

    /// Bottom-up pass: descendant tag sets and base content sizes.
    fn analyse(
        &self,
        doc: &Document,
        node: NodeId,
        dict: &TagDict,
        infos: &mut std::collections::HashMap<NodeId, ElementInfo>,
    ) -> (TagSet, usize) {
        let NodeData::Element { name, attrs } = doc.data(node) else {
            // Text node: its encoded length.
            let len = match doc.data(node) {
                NodeData::Text(t) => 1 + varint_len(t.len() as u64) + t.len(),
                // lint: infallible — the let-else above only falls through
                // for non-element nodes.
                NodeData::Element { .. } => unreachable!(),
            };
            return (TagSet::new(), len);
        };
        let mut descendant_tags = TagSet::with_capacity(dict.len());
        let mut content_len = 0usize;
        for child in doc.children(node) {
            let (child_tags, child_len) = self.analyse(doc, *child, dict, infos);
            content_len += child_len;
            descendant_tags.union_with(&child_tags);
            if let Some(child_name) = doc.element_name(*child) {
                if let Some(id) = dict.get(child_name) {
                    descendant_tags.insert(id);
                }
            }
        }
        // Encoded length of this element's own open/close tokens.
        let open_len = 1
            + varint_len(dict.get(name).map(|t| t.0 as u64).unwrap_or(0))
            + varint_len(attrs.len() as u64)
            + attrs
                .iter()
                .map(|a| {
                    varint_len(dict.get(&a.name).map(|t| t.0 as u64).unwrap_or(0))
                        + varint_len(a.value.len() as u64)
                        + a.value.len()
                })
                .sum::<usize>();
        let close_len = 1;
        let indexed = self.config.index_enabled && content_len >= self.config.min_index_bytes;
        infos.insert(
            node,
            ElementInfo {
                descendant_tags: descendant_tags.clone(),
                base_content_len: content_len,
                indexed,
            },
        );
        (descendant_tags, open_len + content_len + close_len)
    }

    /// Top-down pass: emit tokens, computing exact content lengths (with
    /// nested summaries included) by encoding children into a scratch buffer.
    #[allow(clippy::too_many_arguments)]
    fn encode_node(
        &self,
        doc: &Document,
        node: NodeId,
        dict: &TagDict,
        infos: &std::collections::HashMap<NodeId, ElementInfo>,
        enclosing_ref: &TagReference,
        out: &mut Vec<u8>,
        stats: &mut EncodeStats,
    ) {
        match doc.data(node) {
            NodeData::Text(t) => {
                out.push(token::TEXT);
                write_varint(out, t.len() as u64);
                out.extend_from_slice(t.as_bytes());
            }
            NodeData::Element { name, attrs } => {
                // OPEN token.
                out.push(token::OPEN);
                // lint: infallible — the dictionary pass interned every
                // element and attribute name before encoding starts.
                write_varint(out, dict.get(name).expect("interned").0 as u64);
                write_varint(out, attrs.len() as u64);
                for a in attrs {
                    // lint: infallible — interned by the dictionary pass.
                    write_varint(out, dict.get(&a.name).expect("interned").0 as u64);
                    write_varint(out, a.value.len() as u64);
                    out.extend_from_slice(a.value.as_bytes());
                }

                // lint: infallible — the analysis pass visited every node.
                let info = infos.get(&node).expect("analysed");
                // Encode children into a scratch buffer so that the exact
                // content length is known before the summary is written.
                let child_ref = if info.indexed && self.config.recursive_bitmaps {
                    TagReference::from_set(&info.descendant_tags)
                } else if info.indexed {
                    TagReference::full(dict.len())
                } else {
                    enclosing_ref.clone()
                };
                let mut content = Vec::with_capacity(info.base_content_len);
                for child in doc.children(node) {
                    self.encode_node(doc, *child, dict, infos, &child_ref, &mut content, stats);
                }

                if info.indexed {
                    let bitmap = enclosing_ref.encode_subset(&info.descendant_tags);
                    out.push(token::SUMMARY);
                    let before = out.len();
                    write_varint(out, content.len() as u64);
                    write_varint(out, bitmap.len() as u64);
                    out.extend_from_slice(&bitmap);
                    stats.summaries += 1;
                    stats.index_bytes += 1 + (out.len() - before);
                }
                out.extend_from_slice(&content);
                out.push(token::CLOSE);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};
    use sdds_xml::Document;

    fn encode(doc: &Document, config: EncoderConfig) -> EncodedDocument {
        DocumentEncoder::new(config).encode(doc)
    }

    #[test]
    fn small_document_produces_tokens_and_dictionary() {
        let doc = Document::parse("<a x=\"1\"><b>hello</b><c/></a>").unwrap();
        let enc = encode(&doc, EncoderConfig::default());
        assert!(enc.dict.len() >= 4); // a, x, b, c
        assert!(!enc.tokens.is_empty());
        assert_eq!(enc.stats.token_bytes, enc.tokens.len());
        assert_eq!(enc.stats.dict_bytes, enc.dict.encoded_len());
        // Too small for any summary under the default policy.
        assert_eq!(enc.stats.summaries, 0);
        assert_eq!(enc.index_overhead(), 0.0);
        let plaintext = enc.plaintext();
        assert_eq!(plaintext.len(), enc.stats.dict_bytes + enc.tokens.len());
    }

    #[test]
    fn summaries_appear_on_large_subtrees_only() {
        let doc = generator::hospital(&HospitalProfile::default(), &GeneratorConfig::default());
        let enc = encode(&doc, EncoderConfig::default());
        assert!(
            enc.stats.summaries > 0,
            "hospital patients should be summarised"
        );
        // Overhead stays modest (the paper's index is "very compact").
        assert!(
            enc.index_overhead() < 0.1,
            "index overhead {} should stay below 10%",
            enc.index_overhead()
        );

        let no_index = encode(&doc, EncoderConfig::without_index());
        assert_eq!(no_index.stats.summaries, 0);
        assert!(no_index.tokens.len() < enc.tokens.len());
    }

    #[test]
    fn binary_encoding_is_smaller_than_textual_xml() {
        let doc = generator::hospital(&HospitalProfile::default(), &GeneratorConfig::default());
        let enc = encode(&doc, EncoderConfig::default());
        let xml_len = doc.to_xml().len();
        assert!(
            enc.plaintext().len() < xml_len,
            "binary form ({}) should be more compact than XML text ({xml_len})",
            enc.plaintext().len()
        );
    }

    #[test]
    fn recursive_bitmaps_reduce_index_size() {
        let doc = generator::hospital(
            &HospitalProfile {
                patients: 50,
                ..HospitalProfile::default()
            },
            &GeneratorConfig::default(),
        );
        let recursive = encode(&doc, EncoderConfig::default());
        let flat = encode(
            &doc,
            EncoderConfig {
                recursive_bitmaps: false,
                ..EncoderConfig::default()
            },
        );
        assert_eq!(recursive.stats.summaries, flat.stats.summaries);
        assert!(
            recursive.stats.index_bytes <= flat.stats.index_bytes,
            "recursive compression ({}) should not exceed flat bitmaps ({})",
            recursive.stats.index_bytes,
            flat.stats.index_bytes
        );
    }

    #[test]
    fn lowering_the_threshold_adds_summaries() {
        let doc = generator::hospital(&HospitalProfile::default(), &GeneratorConfig::default());
        let coarse = encode(
            &doc,
            EncoderConfig {
                min_index_bytes: 512,
                ..EncoderConfig::default()
            },
        );
        let fine = encode(
            &doc,
            EncoderConfig {
                min_index_bytes: 16,
                ..EncoderConfig::default()
            },
        );
        assert!(fine.stats.summaries > coarse.stats.summaries);
        assert!(fine.stats.index_bytes > coarse.stats.index_bytes);
    }

    #[test]
    fn empty_document_encodes_to_nothing() {
        let doc = Document::new();
        let enc = encode(&doc, EncoderConfig::default());
        assert!(enc.tokens.is_empty());
        assert_eq!(enc.stats.summaries, 0);
    }
}
