//! Construction of the authorized view (sign stack + pending-decision buffer).
//!
//! The [`ViewAssembler`] consumes the annotated event stream produced by
//! [`crate::runtime::RuleEngine`] and builds the authorized view delivered to
//! the terminal:
//!
//! * conflict resolution per node (Denial / Most-Specific-Object precedence)
//!   using the sign-stack semantics of §2.3,
//! * intersection with the user query (§2.1: "delivers the authorized subpart
//!   matching the query"),
//! * structural scaffolding: an element that is itself denied but has an
//!   authorized descendant appears as a bare tag (no attributes, no text) so
//!   that the delivered fragment stays well-formed,
//! * **pending decisions**: when a node's decision depends on predicate
//!   instances that are not resolved yet (the paper's *pending rules*), the
//!   node and everything after it are buffered; the buffer is drained — in
//!   document order — as soon as the blocking instances resolve. The peak size
//!   of that buffer is the price of pendency and is charged to the secure-RAM
//!   accounting.

use std::collections::VecDeque;

use sdds_xml::{Attribute, Event};

use crate::conflict::{resolve, AccessPolicy, Decision, DirectRule};
use crate::error::CoreError;
use crate::rule::Sign;
use crate::runtime::{EngineOutput, InstanceId, NodeAnnotation};

/// One element currently open in the rendered view.
#[derive(Debug, Clone)]
struct RenderFrame {
    name: String,
    decision: Decision,
    in_scope: bool,
    delivered: bool,
    emitted: bool,
}

/// A queued annotated event awaiting rendering.
#[derive(Debug, Clone)]
struct QueuedEvent {
    event: Event,
    annotation: Option<NodeAnnotation>,
}

/// Counters exposed by the assembler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AssemblerStats {
    /// Elements whose effective decision was Permit (and in query scope).
    pub nodes_delivered: usize,
    /// Elements denied (or out of query scope).
    pub nodes_withheld: usize,
    /// Elements emitted as bare structural scaffolding.
    pub scaffolding_nodes: usize,
    /// Peak number of events buffered while waiting for pending predicates.
    pub peak_pending_events: usize,
    /// Peak secure-RAM footprint of the assembler structures, in bytes.
    pub peak_ram_bytes: usize,
    /// Nodes whose decision was forced conservatively because the pending
    /// buffer hit its high-water mark (see
    /// [`ViewAssembler::with_pending_high_water`]).
    pub forced_resolutions: usize,
}

/// Builds the authorized view from engine outputs.
#[derive(Debug)]
pub struct ViewAssembler {
    policy: AccessPolicy,
    has_query: bool,
    truths: Vec<Option<bool>>,
    queue: VecDeque<QueuedEvent>,
    stack: Vec<RenderFrame>,
    ready: Vec<Event>,
    stats: AssemblerStats,
    pending_high_water: Option<usize>,
}

impl ViewAssembler {
    /// Creates an assembler. `has_query` must reflect whether the engine was
    /// given a query automaton (it changes the default scope of nodes).
    pub fn new(policy: AccessPolicy, has_query: bool) -> Self {
        ViewAssembler {
            policy,
            has_query,
            truths: Vec::new(),
            queue: VecDeque::new(),
            stack: Vec::new(),
            ready: Vec::new(),
            stats: AssemblerStats::default(),
            pending_high_water: None,
        }
    }

    /// Caps the pending-decision buffer at `events` queued events.
    ///
    /// Pendency is the one component of the secure-RAM footprint that scales
    /// with the *data* rather than with depth or rule count: a predicate rule
    /// whose condition arrives late buffers the whole intervening subtree
    /// (the E1 cost step at 8+ rules). With a high-water mark set, a node
    /// whose decision is still blocked once the buffer exceeds the mark is
    /// resolved **eagerly and conservatively**: unresolved instances count as
    /// *not satisfied* for permits and as *satisfied* for denials, and an
    /// unresolved query match counts as out of scope. The forced view is
    /// therefore always a subset of the exact one — content may be withheld,
    /// but nothing is ever delivered that exact evaluation would deny — and
    /// the buffer (hence the assembler's secure RAM) stays bounded. Forced
    /// nodes are counted in [`AssemblerStats::forced_resolutions`].
    pub fn with_pending_high_water(mut self, events: Option<usize>) -> Self {
        self.pending_high_water = events;
        self
    }

    /// Counters.
    pub fn stats(&self) -> AssemblerStats {
        self.stats
    }

    /// Number of events currently buffered behind an undecided node.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// True when no decision is currently blocked on a pending predicate.
    pub fn is_drained(&self) -> bool {
        self.queue.is_empty()
    }

    /// Effective decision and query scope of the innermost open element, when
    /// the assembler is fully drained (used by the skip-index logic; `None`
    /// while a pending decision blocks the stream or before the root opens).
    pub fn current_context(&self) -> Option<(Decision, bool)> {
        if !self.is_drained() {
            return None;
        }
        self.stack.last().map(|f| (f.decision, f.in_scope))
    }

    /// Current secure-RAM footprint, in bytes.
    pub fn ram_bytes(&self) -> usize {
        let queued: usize = self
            .queue
            .iter()
            .map(|q| q.event.serialized_len() + 16)
            .sum();
        let stack: usize = self.stack.iter().map(|f| f.name.len() + 4).sum();
        queued + stack + self.truths.len() / 8
    }

    fn truth(&self, id: InstanceId) -> Option<bool> {
        self.truths.get(id.0 as usize).copied().flatten()
    }

    /// Feeds one engine output; any newly renderable events become available
    /// through [`ViewAssembler::take_ready`].
    pub fn push(&mut self, output: EngineOutput) {
        match output {
            EngineOutput::Resolved {
                instance,
                satisfied,
            } => {
                let idx = instance.0 as usize;
                if idx >= self.truths.len() {
                    self.truths.resize(idx + 1, None);
                }
                if self.truths[idx].is_none() {
                    self.truths[idx] = Some(satisfied);
                }
            }
            EngineOutput::Annotated { event, annotation } => {
                self.queue.push_back(QueuedEvent { event, annotation });
                self.stats.peak_pending_events =
                    self.stats.peak_pending_events.max(self.queue.len());
            }
        }
        self.drain();
        self.stats.peak_ram_bytes = self.stats.peak_ram_bytes.max(self.ram_bytes());
    }

    /// Takes the events rendered so far.
    pub fn take_ready(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.ready)
    }

    /// Finishes the stream; fails if a decision is still blocked (which means
    /// the input stream was truncated, since every pending instance resolves
    /// at the latest when its context element closes).
    pub fn finish(mut self) -> Result<(Vec<Event>, AssemblerStats), CoreError> {
        self.drain();
        if !self.queue.is_empty() {
            return Err(CoreError::BadState {
                // alloc: cold — truncated-input error path at end of stream.
                message: format!(
                    "{} events are still pending at end of stream (truncated input?)",
                    self.queue.len()
                ),
            });
        }
        Ok((std::mem::take(&mut self.ready), self.stats))
    }

    /// Renders queued events in order until one blocks on an unresolved
    /// decision or the queue empties. With a pending high-water mark set, a
    /// blocked node is forced once the buffer exceeds the mark.
    fn drain(&mut self) {
        while let Some(front) = self.queue.front() {
            match &front.event {
                Event::Open { .. } => {
                    let mut decided = self.decide(front.annotation.as_ref(), false);
                    if decided.is_none()
                        && self
                            .pending_high_water
                            .is_some_and(|mark| self.queue.len() > mark)
                    {
                        self.stats.forced_resolutions += 1;
                        decided = self.decide(front.annotation.as_ref(), true);
                        debug_assert!(decided.is_some(), "forced decisions always resolve");
                    }
                    match decided {
                        Some((decision, in_scope)) => {
                            let QueuedEvent { event, .. } =
                                // lint: infallible — the surrounding match is
                                // on `self.queue.front()`, so the queue is
                                // non-empty here.
                                self.queue.pop_front().expect("front checked above");
                            self.render_open(event, decision, in_scope);
                        }
                        None => break, // blocked on a pending predicate
                    }
                }
                Event::Text(_) => {
                    let QueuedEvent { event, .. } =
                        // lint: infallible — same `front()` match as above.
                        self.queue.pop_front().expect("front checked above");
                    self.render_text(event);
                }
                Event::Close(_) => {
                    self.queue.pop_front();
                    self.render_close();
                }
            }
        }
    }

    /// Computes the decision and query scope of a node, or `None` when an
    /// instance it depends on is unresolved. The annotation is borrowed from
    /// the queue front (cloning it per node dominated the per-event cost for
    /// large rule sets).
    ///
    /// With `force` set, unresolved instances are completed conservatively
    /// instead of blocking: a permit that might apply is dropped, a denial
    /// that might apply is applied, a query that might match is treated as
    /// not matching — the node's subtree can only shrink, never leak.
    fn decide(&self, annotation: Option<&NodeAnnotation>, force: bool) -> Option<(Decision, bool)> {
        let truth = |id: InstanceId| self.truth(id);

        // Query scope: a node is in scope if an ancestor is, or if the query
        // matches the node itself.
        let parent_scope = self
            .stack
            .last()
            .map(|f| f.in_scope)
            .unwrap_or(!self.has_query);
        let in_scope = if parent_scope {
            true
        } else {
            match annotation.and_then(|a| a.query.as_ref()) {
                Some(matches) => match matches.evaluate(&truth) {
                    Some(matched) => matched,
                    None if force => false,
                    None => return None,
                },
                None => false,
            }
        };

        // Rules applying directly to the node.
        let annotated_direct = annotation.map(|a| a.direct.as_slice()).unwrap_or(&[]);
        // alloc: amortized — scratch bounded by the rules annotated on this one node.
        let mut direct = Vec::with_capacity(annotated_direct.len());
        for m in annotated_direct {
            let applies = match m.matches.evaluate(&truth) {
                Some(applies) => applies,
                None if force => m.sign == Sign::Deny,
                None => return None,
            };
            if applies {
                direct.push(DirectRule {
                    rule: m.rule,
                    sign: m.sign,
                });
            }
        }
        let inherited = self.stack.last().map(|f| f.decision);
        let decision = resolve(&self.policy, &direct, inherited);
        Some((decision, in_scope))
    }

    fn render_open(&mut self, event: Event, decision: Decision, in_scope: bool) {
        let Event::Open { name, attrs } = event else {
            // lint: infallible — the only caller matched `Event::Open` first.
            unreachable!("render_open called with a non-open event")
        };
        let delivered = decision.is_permit() && in_scope;
        if delivered {
            self.stats.nodes_delivered += 1;
            self.emit_scaffolding();
            self.ready.push(Event::Open {
                // alloc: amortized — one owned tag name per delivered element; the frame keeps the original for the closing tag.
                name: name.clone(),
                attrs,
            });
        } else {
            self.stats.nodes_withheld += 1;
        }
        self.stack.push(RenderFrame {
            name,
            decision,
            in_scope,
            delivered,
            emitted: delivered,
        });
    }

    fn render_text(&mut self, event: Event) {
        if self.stack.last().is_some_and(|f| f.delivered) {
            self.ready.push(event);
        }
    }

    fn render_close(&mut self) {
        if let Some(frame) = self.stack.pop() {
            if frame.emitted {
                self.ready.push(Event::Close(frame.name));
            }
        }
    }

    /// Emits the opening tags of ancestors that are needed for well-formedness
    /// but were not authorized themselves. Scaffolding tags carry no attribute.
    fn emit_scaffolding(&mut self) {
        for i in 0..self.stack.len() {
            if self.stack[i].emitted {
                continue;
            }
            self.ready.push(Event::Open {
                // alloc: amortized — each ancestor is emitted at most once;
                // the frame keeps its own copy for the closing tag.
                name: self.stack[i].name.clone(),
                attrs: Vec::<Attribute>::new(),
            });
            self.stack[i].emitted = true;
            self.stats.scaffolding_nodes += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::compile_str;
    use crate::rule::{RuleId, Sign};
    use crate::runtime::{EngineRule, RuleEngine};
    use sdds_xml::{writer, Parser};

    fn evaluate(
        rules: &[(&str, Sign)],
        query: Option<&str>,
        policy: AccessPolicy,
        doc: &str,
    ) -> (String, AssemblerStats) {
        evaluate_capped(rules, query, policy, doc, None)
    }

    fn evaluate_capped(
        rules: &[(&str, Sign)],
        query: Option<&str>,
        policy: AccessPolicy,
        doc: &str,
        pending_high_water: Option<usize>,
    ) -> (String, AssemblerStats) {
        let compiled: Vec<EngineRule> = rules
            .iter()
            .enumerate()
            .map(|(i, (expr, sign))| EngineRule {
                id: RuleId(i as u32),
                sign: *sign,
                path: compile_str(expr).unwrap(),
            })
            .collect();
        let mut engine = RuleEngine::new(compiled, query.map(|q| compile_str(q).unwrap()));
        let mut assembler =
            ViewAssembler::new(policy, query.is_some()).with_pending_high_water(pending_high_water);
        for event in Parser::parse_all(doc).unwrap() {
            for out in engine.process(&event) {
                assembler.push(out);
            }
        }
        let (events, stats) = assembler.finish().unwrap();
        (writer::to_string(&events), stats)
    }

    #[test]
    fn closed_world_denies_everything_without_rules() {
        let (view, stats) = evaluate(&[], None, AccessPolicy::paper(), "<a><b>x</b></a>");
        assert_eq!(view, "");
        assert_eq!(stats.nodes_delivered, 0);
        assert_eq!(stats.nodes_withheld, 2);
    }

    #[test]
    fn open_world_delivers_everything_without_rules() {
        let doc = "<a><b>x</b><c attr=\"1\"/></a>";
        let (view, stats) = evaluate(&[], None, AccessPolicy::open(), doc);
        // The writer expands self-closing tags; the content is identical.
        assert_eq!(view, "<a><b>x</b><c attr=\"1\"></c></a>");
        assert_eq!(stats.nodes_delivered, 3);
        assert_eq!(stats.scaffolding_nodes, 0);
    }

    #[test]
    fn positive_rule_with_scaffolding_ancestors() {
        let (view, stats) = evaluate(
            &[("//b", Sign::Permit)],
            None,
            AccessPolicy::paper(),
            "<a x=\"secret\"><b>keep</b><c>drop</c></a>",
        );
        // The a ancestor appears as scaffolding (no attribute), c disappears.
        assert_eq!(view, "<a><b>keep</b></a>");
        assert_eq!(stats.scaffolding_nodes, 1);
        assert_eq!(stats.nodes_delivered, 1);
        assert_eq!(stats.nodes_withheld, 2);
    }

    #[test]
    fn denial_takes_precedence_on_same_node() {
        let (view, _) = evaluate(
            &[("//b", Sign::Permit), ("//b", Sign::Deny)],
            None,
            AccessPolicy::paper(),
            "<a><b>x</b></a>",
        );
        assert_eq!(view, "");
    }

    #[test]
    fn most_specific_object_overrides_propagation() {
        // Everything under a is permitted, except ssn, except that ssn/last4
        // is permitted again.
        let (view, _) = evaluate(
            &[
                ("/a", Sign::Permit),
                ("//ssn", Sign::Deny),
                ("//ssn/last4", Sign::Permit),
            ],
            None,
            AccessPolicy::paper(),
            "<a><name>Bob</name><ssn>123456789<last4>6789</last4></ssn></a>",
        );
        assert_eq!(
            view,
            "<a><name>Bob</name><ssn><last4>6789</last4></ssn></a>"
        );
    }

    #[test]
    fn figure2_rule_delivers_d_only_when_c_present() {
        let rules: &[(&str, Sign)] = &[("//b[c]/d", Sign::Permit)];
        // c occurs after d: the d subtree is pending, then delivered.
        let (view, stats) = evaluate(
            rules,
            None,
            AccessPolicy::paper(),
            "<r><b><d>keep</d><c/></b><b><d>drop</d></b></r>",
        );
        assert_eq!(view, "<r><b><d>keep</d></b></r>");
        assert!(stats.peak_pending_events > 0);

        // c occurs before d: no pendency at all.
        let (view, stats) = evaluate(
            rules,
            None,
            AccessPolicy::paper(),
            "<r><b><c/><d>keep</d></b></r>",
        );
        assert_eq!(view, "<r><b><d>keep</d></b></r>");
        assert_eq!(stats.peak_pending_events, 1);
    }

    #[test]
    fn negative_pending_rule_blocks_until_resolution() {
        // Everything permitted, but b subtrees containing a c are denied.
        let rules: &[(&str, Sign)] = &[("/r", Sign::Permit), ("//b[c]", Sign::Deny)];
        let (view, _) = evaluate(
            rules,
            None,
            AccessPolicy::paper(),
            "<r><b><d>visible</d></b><b><d>hidden</d><c/></b></r>",
        );
        assert_eq!(view, "<r><b><d>visible</d></b></r>");
    }

    #[test]
    fn query_restricts_the_delivered_view() {
        let rules: &[(&str, Sign)] = &[("/hospital", Sign::Permit), ("//ssn", Sign::Deny)];
        let doc = "<hospital><patient><name>Alice</name><ssn>1</ssn></patient>\
                   <patient><name>Bob</name><ssn>2</ssn></patient></hospital>";
        // Query //name: only the name elements (and scaffolding) are delivered.
        let (view, stats) = evaluate(rules, Some("//name"), AccessPolicy::paper(), doc);
        assert_eq!(
            view,
            "<hospital><patient><name>Alice</name></patient><patient><name>Bob</name></patient></hospital>"
        );
        assert_eq!(stats.scaffolding_nodes, 3);
        // Query //ssn: the access control forbids ssn, so nothing is delivered.
        let (view, _) = evaluate(rules, Some("//ssn"), AccessPolicy::paper(), doc);
        assert_eq!(view, "");
    }

    #[test]
    fn query_scope_includes_descendants_of_matching_nodes() {
        let rules: &[(&str, Sign)] = &[("/a", Sign::Permit)];
        let (view, _) = evaluate(
            rules,
            Some("//b"),
            AccessPolicy::paper(),
            "<a><b><x>1</x></b><c><x>2</x></c></a>",
        );
        assert_eq!(view, "<a><b><x>1</x></b></a>");
    }

    #[test]
    fn attributes_of_scaffolding_are_hidden_but_delivered_nodes_keep_theirs() {
        let (view, _) = evaluate(
            &[("//b", Sign::Permit)],
            None,
            AccessPolicy::paper(),
            "<a secret=\"yes\"><b id=\"1\">x</b></a>",
        );
        assert_eq!(view, "<a><b id=\"1\">x</b></a>");
    }

    #[test]
    fn pending_peak_reflects_buffering() {
        // A pending deny on a large subtree forces buffering of that subtree.
        let rules: &[(&str, Sign)] = &[("/r", Sign::Permit), ("//b[flag]", Sign::Deny)];
        let doc = "<r><b><x>1</x><x>2</x><x>3</x><x>4</x><flag/></b></r>";
        let (view, stats) = evaluate(rules, None, AccessPolicy::paper(), doc);
        assert_eq!(view, "<r></r>");
        assert!(stats.peak_pending_events >= 8);
    }

    #[test]
    fn pending_high_water_bounds_the_buffer_conservatively() {
        // A pending *permit* on a large subtree: exact evaluation buffers the
        // subtree and delivers it once the flag arrives.
        let rules: &[(&str, Sign)] = &[("//b[flag]/d", Sign::Permit)];
        let doc = "<r><b><d><x>1</x><x>2</x><x>3</x><x>4</x></d><flag/></b></r>";
        let (exact, exact_stats) = evaluate(rules, None, AccessPolicy::paper(), doc);
        assert_eq!(
            exact,
            "<r><b><d><x>1</x><x>2</x><x>3</x><x>4</x></d></b></r>"
        );
        assert_eq!(exact_stats.forced_resolutions, 0);
        assert!(exact_stats.peak_pending_events >= 10);

        // Capped at 3 queued events: the d decision is forced (permit with an
        // unresolved instance drops), the buffer stays bounded, nothing is
        // delivered that the exact view would deny.
        let (capped, capped_stats) =
            evaluate_capped(rules, None, AccessPolicy::paper(), doc, Some(3));
        assert_eq!(capped, "");
        assert!(capped_stats.forced_resolutions >= 1);
        assert!(
            capped_stats.peak_pending_events <= 4,
            "peak {} should respect the mark",
            capped_stats.peak_pending_events
        );

        // A pending *denial* forces to "denied": still conservative.
        let deny_rules: &[(&str, Sign)] = &[("/r", Sign::Permit), ("//b[flag]", Sign::Deny)];
        let (capped_deny, s) =
            evaluate_capped(deny_rules, None, AccessPolicy::paper(), doc, Some(3));
        assert_eq!(capped_deny, "<r></r>");
        assert!(s.forced_resolutions >= 1);

        // A generous mark never triggers: the exact view is preserved.
        let (roomy, roomy_stats) =
            evaluate_capped(rules, None, AccessPolicy::paper(), doc, Some(100));
        assert_eq!(roomy, exact);
        assert_eq!(roomy_stats.forced_resolutions, 0);
    }

    #[test]
    fn pending_high_water_forces_unresolved_query_matches_out_of_scope() {
        // The query //b[flag] cannot be decided for b until flag arrives; the
        // cap forces b out of scope, so nothing is delivered.
        let rules: &[(&str, Sign)] = &[("/r", Sign::Permit)];
        let doc = "<r><b><x>1</x><x>2</x><x>3</x><flag/></b></r>";
        let (exact, _) = evaluate(rules, Some("//b[flag]"), AccessPolicy::paper(), doc);
        assert_eq!(exact, "<r><b><x>1</x><x>2</x><x>3</x><flag></flag></b></r>");
        let (capped, stats) = evaluate_capped(
            rules,
            Some("//b[flag]"),
            AccessPolicy::paper(),
            doc,
            Some(2),
        );
        assert_eq!(capped, "");
        assert!(stats.forced_resolutions >= 1);
    }

    #[test]
    fn finish_fails_on_truncated_stream() {
        let compiled = vec![EngineRule {
            id: RuleId(0),
            sign: Sign::Permit,
            path: compile_str("//b[c]/d").unwrap(),
        }];
        let mut engine = RuleEngine::new(compiled, None);
        let mut assembler = ViewAssembler::new(AccessPolicy::paper(), false);
        // Open <r><b><d> but never close: the d decision stays pending.
        for event in [Event::open("r"), Event::open("b"), Event::open("d")] {
            for out in engine.process(&event) {
                assembler.push(out);
            }
        }
        assert!(!assembler.is_drained());
        assert!(assembler.current_context().is_none());
        assert!(assembler.finish().is_err());
    }

    #[test]
    fn current_context_reports_propagated_decision() {
        let compiled = vec![EngineRule {
            id: RuleId(0),
            sign: Sign::Permit,
            path: compile_str("//b").unwrap(),
        }];
        let mut engine = RuleEngine::new(compiled, None);
        let mut assembler = ViewAssembler::new(AccessPolicy::paper(), false);
        for event in [Event::open("a"), Event::open("b")] {
            for out in engine.process(&event) {
                assembler.push(out);
            }
        }
        let (decision, in_scope) = assembler.current_context().unwrap();
        assert_eq!(decision, Decision::Permit);
        assert!(in_scope);
        assert!(assembler.ram_bytes() > 0);
        let _ = assembler.take_ready();
    }
}
