//! E11 engine-equivalence contract: the actor engine is a *scheduling*
//! change, never a *serving* change. The same facade-built card sessions,
//! run once on the thread scheduler and once on the actor engine, must
//! produce **byte-identical per-session views** — and the readiness-driven
//! engine must not starve idle sessions behind a chatty one.
//!
//! Like the other property suites, the equivalence property runs over
//! `SDDS_PROP_CASES` seeded deterministic cases (default 64; CI 256), each
//! randomizing the deployment shape (shards, replicas, clients, workers,
//! quantum) so the contract is pinned across layouts, not at one point.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use sdds::dsp::{ActorEngine, ActorSession, ActorStatus};
use sdds::{Client, Publisher, RuleSet, SchedulerEngine, SessionScheduler};
use sdds_xml::generator::{Corpus, GeneratorConfig};

/// Cases per property: `SDDS_PROP_CASES` when set and parseable, else 64.
fn cases() -> u64 {
    std::env::var("SDDS_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

fn rules() -> RuleSet {
    RuleSet::parse(
        "+, doctor, //patient\n\
         -, doctor, //patient/ssn\n\
         +, secretary, //patient/name\n\
         +, researcher, //diagnosis",
    )
    .unwrap()
}

/// Byte-identical per-session views whichever engine multiplexes the cards.
///
/// Each case publishes a small hospital corpus onto a randomly shaped
/// service (1–5 shards, optionally replicated), provisions 2–10 clients of
/// mixed subjects, and pulls every document twice: once through
/// `SchedulerEngine::Threads`, once through `SchedulerEngine::Actors`, with
/// a random worker count and quantum. The views, the per-session step
/// counts and the failure sets must match exactly.
#[test]
fn actor_and_thread_engines_serve_byte_identical_views() {
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0xE11_0001 + case);
        let shards = rng.gen_range(1..=5usize);
        let copies = if rng.gen_bool(0.5) {
            rng.gen_range(1..=shards)
        } else {
            1
        };
        let clients_n = rng.gen_range(2..=10usize);
        let workers = rng.gen_range(1..=4usize);
        let quantum = rng.gen_range(1..=6usize);
        let docs = rng.gen_range(1..=3usize);
        let shape = format!(
            "case {case}: shards={shards} copies={copies} clients={clients_n} \
             workers={workers} quantum={quantum} docs={docs}"
        );

        let publisher = Publisher::builder(b"hospital-2005")
            .rules(rules())
            .shards(shards)
            .replicate(copies)
            .build()
            .unwrap();
        let doc = Corpus::Hospital.generate(400, &GeneratorConfig::default());
        for i in 0..docs {
            publisher.publish(&format!("folder-{i}"), &doc).unwrap();
        }

        let clients: Vec<Client> = (0..clients_n)
            .map(|i| {
                let subject = ["doctor", "secretary", "researcher"][i % 3];
                Client::builder(subject).provision(&publisher).unwrap()
            })
            .collect();
        let connect_all = || {
            clients
                .iter()
                .enumerate()
                .map(|(i, c)| c.connect(format!("folder-{}", i % docs)).unwrap())
                .collect::<Vec<_>>()
        };

        let threads = SessionScheduler::new(workers, quantum).run(connect_all());
        let actors = SessionScheduler::new(workers, quantum)
            .engine(SchedulerEngine::Actors)
            .run(connect_all());

        assert!(
            threads.failures().is_empty(),
            "{shape}: {:?}",
            threads.failures()
        );
        assert!(
            actors.failures().is_empty(),
            "{shape}: {:?}",
            actors.failures()
        );
        assert_eq!(threads.finished.len(), clients_n, "{shape}");
        assert_eq!(actors.finished.len(), clients_n, "{shape}");
        assert_eq!(
            threads.steps_total, actors.steps_total,
            "{shape}: engines granted different total work"
        );

        // Compare per submission index: retirement order may differ between
        // engines, the served bytes and the work per session may not.
        let mut thread_by_index: Vec<_> = threads.finished.iter().collect();
        thread_by_index.sort_by_key(|f| f.index);
        let mut actor_by_index: Vec<_> = actors.finished.iter().collect();
        actor_by_index.sort_by_key(|f| f.index);
        for (t, a) in thread_by_index.iter().zip(&actor_by_index) {
            assert_eq!(t.index, a.index, "{shape}");
            assert_eq!(
                t.session.view(),
                a.session.view(),
                "{shape}: session {} view differs between engines",
                t.index
            );
            assert_eq!(
                t.steps, a.steps,
                "{shape}: session {} took different step counts",
                t.index
            );
        }
    }
}

/// A session that completes after one delivered event.
struct Idle {
    done: bool,
    dispatches: usize,
}

impl ActorSession for Idle {
    type Event = ();

    fn on_event(&mut self, (): ()) -> Result<ActorStatus, String> {
        self.dispatches += 1;
        if self.done {
            return Err("idle session dispatched after completion".into());
        }
        self.done = true;
        Ok(ActorStatus::Complete)
    }

    fn on_step(&mut self) -> Result<ActorStatus, String> {
        Err("idle session stepped without an event".into())
    }
}

/// A session that needs many deliveries before it completes.
struct Chatty {
    remaining: usize,
}

impl ActorSession for Chatty {
    type Event = ();

    fn on_event(&mut self, (): ()) -> Result<ActorStatus, String> {
        self.remaining -= 1;
        Ok(if self.remaining == 0 {
            ActorStatus::Complete
        } else {
            ActorStatus::Parked
        })
    }

    fn on_step(&mut self) -> Result<ActorStatus, String> {
        Err("chatty session stepped without an event".into())
    }
}

/// No starvation: one chatty session receiving 500 event batches must not
/// keep 100 idle sessions (one event each) from completing, and each idle
/// session costs exactly one dispatch — the O(changed work) property that
/// makes the actor engine scale to 100k mostly-idle sessions (E11).
#[test]
fn a_chatty_session_does_not_starve_idle_sessions() {
    enum Either {
        Chatty(Chatty),
        Idle(Idle),
    }
    impl ActorSession for Either {
        type Event = ();
        fn on_event(&mut self, (): ()) -> Result<ActorStatus, String> {
            match self {
                Either::Chatty(c) => c.on_event(()),
                Either::Idle(i) => i.on_event(()),
            }
        }
        fn on_step(&mut self) -> Result<ActorStatus, String> {
            Err("event-driven session stepped without an event".into())
        }
    }

    const CHATTY_EVENTS: usize = 500;
    const IDLE: usize = 100;
    let mut sessions = vec![Either::Chatty(Chatty {
        remaining: CHATTY_EVENTS,
    })];
    sessions.extend((0..IDLE).map(|_| {
        Either::Idle(Idle {
            done: false,
            dispatches: 0,
        })
    }));

    let report = ActorEngine::new(2).run(sessions, |handle| {
        // Flood the chatty session first, then wake each idle session once:
        // a scheduler that keeps servicing the backlog at the head would
        // never get to them.
        for _ in 0..CHATTY_EVENTS {
            // lint: infallible — actor 0 is never retired before its last event.
            handle.send(0, ()).expect("chatty send");
        }
        for id in 1..=IDLE {
            // lint: infallible — idle actors retire only after this send.
            handle.send(id, ()).expect("idle send");
        }
    });

    assert!(
        report.all_complete(),
        "a session was starved or failed: {:?}",
        report.failures()
    );
    assert_eq!(report.events_total, CHATTY_EVENTS + IDLE);
    for finished in &report.actors {
        if finished.index == 0 {
            assert_eq!(
                finished.events, CHATTY_EVENTS,
                "chatty event ledger drifted"
            );
        } else {
            assert_eq!(
                finished.events, 1,
                "idle session {} must cost exactly one dispatch",
                finished.index
            );
        }
    }
}
