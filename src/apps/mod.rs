//! The two demonstration applications of the paper (§3), built entirely on
//! the [`crate::Client`] / [`crate::Publisher`] facade.

pub mod collab;
pub mod dissem;
