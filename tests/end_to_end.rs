//! End-to-end integration tests spanning every crate: publisher → DSP →
//! terminal proxy → smart-card SOE → authorized view, compared against the
//! tree-based oracle.

use sdds_card::{CardProfile, CostModel};
use sdds_core::baseline::{authorized_view_oracle, DomBaseline};
use sdds_core::conflict::AccessPolicy;
use sdds_core::rule::{RuleSet, Sign, Subject};
use sdds_core::secdoc::SecureDocumentBuilder;
use sdds_core::session::TrustedServer;
use sdds_dsp::DspServer;
use sdds_proxy::{SimulatedPki, Terminal};
use sdds_xml::generator::{self, Corpus, GeneratorConfig};
use sdds_xml::{writer, Document, Parser};

fn medical_rules() -> RuleSet {
    RuleSet::parse(
        "+, doctor, //patient\n\
         -, doctor, //patient/ssn\n\
         +, secretary, //patient/name\n\
         +, secretary, //patient/address\n\
         -, secretary, //patient[diagnosis/item/@sensitive = \"true\"]/address\n\
         +, researcher, //diagnosis",
    )
    .unwrap()
}

fn publish(server: &TrustedServer, doc: &Document, doc_id: &str) -> DspServer {
    let secure = SecureDocumentBuilder::new(doc_id, server.document_key()).build(doc);
    let mut dsp = DspServer::new();
    dsp.store_mut().put_document(secure);
    dsp
}

fn terminal_for(server: &TrustedServer, community: &[u8], subject: &str) -> Terminal {
    let pki = SimulatedPki::new(community);
    let mut terminal = Terminal::issue_card(
        subject,
        pki.card_transport_key(&Subject::new(subject)),
        CardProfile::modern_secure_element(),
    );
    terminal
        .provision_from(server)
        .expect("provisioning succeeds");
    terminal
}

#[test]
fn every_subject_gets_exactly_the_oracle_view_through_the_full_stack() {
    let doc = Corpus::Hospital.generate(1_500, &GeneratorConfig::default());
    let server = TrustedServer::new(b"hospital", medical_rules());
    let mut dsp = publish(&server, &doc, "folders");

    for subject in ["doctor", "secretary", "researcher", "outsider"] {
        let mut terminal = terminal_for(&server, b"hospital", subject);
        let view = terminal.evaluate_from_dsp(&mut dsp, "folders").unwrap();
        let oracle = authorized_view_oracle(
            &doc,
            &medical_rules(),
            &Subject::new(subject),
            None,
            &AccessPolicy::paper(),
        );
        assert_eq!(
            view,
            writer::to_string(&oracle),
            "view of `{subject}` differs from the oracle"
        );
        // The delivered view must re-parse as well-formed XML (or be empty).
        if !view.is_empty() {
            Parser::parse_all(&view).expect("authorized view is well-formed XML");
        }
    }
}

#[test]
fn queries_compose_with_access_control_across_the_stack() {
    let doc = Corpus::Hospital.generate(1_000, &GeneratorConfig::default());
    let server = TrustedServer::new(b"hospital", medical_rules());
    let mut dsp = publish(&server, &doc, "folders");

    let mut terminal = terminal_for(&server, b"hospital", "doctor");
    terminal.set_query("//patient/name").unwrap();
    let view = terminal.evaluate_from_dsp(&mut dsp, "folders").unwrap();
    assert!(view.contains("<name>"));
    assert!(!view.contains("<report>"));
    assert!(!view.contains("<ssn>"));

    let oracle = authorized_view_oracle(
        &doc,
        &medical_rules(),
        &Subject::new("doctor"),
        Some(&sdds_core::Query::parse("//patient/name").unwrap()),
        &AccessPolicy::paper(),
    );
    assert_eq!(view, writer::to_string(&oracle));
}

#[test]
fn dynamic_policy_changes_need_no_reencryption_but_static_baseline_does() {
    let doc = Corpus::Hospital.generate(800, &GeneratorConfig::default());
    let mut server = TrustedServer::new(b"hospital", medical_rules());
    let mut dsp = publish(&server, &doc, "folders");
    let stored_before = dsp.store().stored_bytes();

    // Before the change the nurse sees nothing.
    let mut nurse = terminal_for(&server, b"hospital", "nurse");
    assert!(nurse
        .evaluate_from_dsp(&mut dsp, "folders")
        .unwrap()
        .is_empty());

    // Grant the nurse access to names: only a new protected rule set travels.
    server
        .rules_mut()
        .push(Sign::Permit, "nurse", "//patient/name")
        .unwrap();
    let mut nurse = terminal_for(&server, b"hospital", "nurse");
    let view = nurse.evaluate_from_dsp(&mut dsp, "folders").unwrap();
    assert!(view.contains("<name>"));
    assert_eq!(
        dsp.store().stored_bytes(),
        stored_before,
        "no re-encryption happened"
    );

    // The static-encryption baseline pays for the same change.
    let mut scheme = sdds_core::baseline::StaticEncryptionScheme::build(
        &doc,
        &medical_rules(),
        &AccessPolicy::paper(),
    );
    let mut new_rules = medical_rules();
    new_rules
        .push(Sign::Permit, "nurse", "//patient/name")
        .unwrap();
    let cost = scheme.apply_rule_change(&doc, &new_rules, &AccessPolicy::paper());
    assert!(cost.bytes_reencrypted > 0);
    assert!(cost.keys_redistributed > 0);
}

#[test]
fn dom_baseline_agrees_with_the_card_but_fetches_everything() {
    let doc = Corpus::Hospital.generate(1_000, &GeneratorConfig::default());
    let server = TrustedServer::new(b"hospital", medical_rules());
    // 128-byte chunks so that the skip granularity is fine enough for the
    // comparison (see EXPERIMENTS.md, E2 chunk-size ablation).
    let secure = SecureDocumentBuilder::new("folders", server.document_key())
        .chunk_size(128)
        .build(&doc);
    let mut dsp = DspServer::new();
    dsp.store_mut().put_document(secure.clone());

    // The researcher only reads diagnosis subtrees: most chunks are skippable.
    let mut terminal = terminal_for(&server, b"hospital", "researcher");
    dsp.reset_stats();
    let card_view = terminal.evaluate_from_dsp(&mut dsp, "folders").unwrap();
    let card_chunks = dsp.stats().chunks_served;

    let dom = DomBaseline::run(
        &secure,
        &server.document_key(),
        &medical_rules(),
        &Subject::new("researcher"),
        None,
        &AccessPolicy::paper(),
    )
    .unwrap();
    assert_eq!(card_view, writer::to_string(&dom.view));
    // The DOM baseline decrypts the whole document; the card fetched fewer chunks.
    assert!(dom.ledger.bytes_decrypted as u64 >= secure.header.plaintext_len);
    assert!(
        card_chunks < secure.chunk_count(),
        "card fetched {card_chunks} of {} chunks",
        secure.chunk_count()
    );
    // And its working set is far beyond the e-gate's 1 KiB.
    assert!(dom.materialized_bytes > CardProfile::egate().ram_bytes);
}

#[test]
fn simulated_latency_reflects_the_egate_bottlenecks() {
    let doc = Corpus::Hospital.generate(600, &GeneratorConfig::default());
    let server = TrustedServer::new(b"hospital", medical_rules());
    let mut dsp = publish(&server, &doc, "folders");
    let mut terminal = terminal_for(&server, b"hospital", "doctor");
    terminal.evaluate_from_dsp(&mut dsp, "folders").unwrap();

    let egate = terminal.latency(&CostModel::egate());
    let modern = terminal.latency(&CostModel::modern_secure_element());
    assert!(egate.total() > modern.total());
    // On the e-gate, the 2 KB/s channel dominates the breakdown.
    assert!(egate.transfer >= egate.evaluation);
    assert!(egate.transfer_share() > 0.3);
}

#[test]
fn all_generated_corpora_survive_the_full_pipeline() {
    for corpus in Corpus::all() {
        let doc = corpus.generate(600, &GeneratorConfig::default());
        let rules = RuleSet::parse("+, user, /*").unwrap();
        let server = TrustedServer::new(b"generic", rules.clone());
        let mut dsp = publish(&server, &doc, corpus.name());
        let mut terminal = terminal_for(&server, b"generic", "user");
        let view = terminal.evaluate_from_dsp(&mut dsp, corpus.name()).unwrap();
        // Full permission: the view re-parses and contains the same number of
        // elements as the original document.
        let view_events = Parser::parse_all(&view).unwrap();
        let original = doc.to_events();
        assert_eq!(
            view_events.iter().filter(|e| e.name().is_some()).count(),
            original.iter().filter(|e| e.name().is_some()).count(),
            "corpus {} lost or duplicated elements",
            corpus.name()
        );
    }
}

#[test]
fn generated_documents_roundtrip_through_text_serialisation() {
    for corpus in Corpus::all() {
        let doc = corpus.generate(400, &GeneratorConfig::default());
        let text = doc.to_xml();
        let reparsed = Document::parse(&text).unwrap();
        assert_eq!(reparsed.to_xml(), text, "corpus {}", corpus.name());
        let events =
            generator::Corpus::generate(corpus, 400, &GeneratorConfig::default()).to_events();
        assert_eq!(events, doc.to_events());
    }
}
