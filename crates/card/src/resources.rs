//! Secure working-memory (RAM) and stable-storage (EEPROM) budgets.
//!
//! The e-gate card of the demo offers "only 1 KB of RAM available for on-board
//! applications" (§3). The streaming evaluator was designed around that
//! constraint: its working set is bounded by the document depth and the number
//! of active rule states, never by the document size. [`RamBudget`] enforces
//! the constraint at run time — the engine *accounts every structure it keeps*
//! and any overrun is a hard error — and records the peak usage reported by
//! experiment E4.

use crate::error::CardError;

/// A byte budget with high-water-mark tracking.
#[derive(Debug, Clone)]
pub struct RamBudget {
    budget: usize,
    in_use: usize,
    peak: usize,
}

impl RamBudget {
    /// Creates a budget of `budget` bytes.
    pub fn new(budget: usize) -> Self {
        RamBudget {
            budget,
            in_use: 0,
            peak: 0,
        }
    }

    /// Total budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes currently accounted.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Highest number of bytes ever accounted simultaneously.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        self.budget.saturating_sub(self.in_use)
    }

    /// Accounts an allocation of `bytes`.
    pub fn allocate(&mut self, bytes: usize) -> Result<(), CardError> {
        if self.in_use + bytes > self.budget {
            return Err(CardError::RamExceeded {
                requested: bytes,
                in_use: self.in_use,
                budget: self.budget,
            });
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        Ok(())
    }

    /// Releases `bytes` previously allocated.
    pub fn release(&mut self, bytes: usize) {
        debug_assert!(bytes <= self.in_use, "releasing more RAM than allocated");
        self.in_use = self.in_use.saturating_sub(bytes);
    }

    /// Adjusts the accounting of a structure whose size changed from
    /// `old_bytes` to `new_bytes`.
    pub fn resize(&mut self, old_bytes: usize, new_bytes: usize) -> Result<(), CardError> {
        if new_bytes >= old_bytes {
            self.allocate(new_bytes - old_bytes)
        } else {
            self.release(old_bytes - new_bytes);
            Ok(())
        }
    }

    /// Releases everything (end of session) without touching the peak.
    pub fn reset(&mut self) {
        self.in_use = 0;
    }

    /// Resets the peak tracker (start of a new measurement).
    pub fn reset_peak(&mut self) {
        self.peak = self.in_use;
    }
}

/// Secure stable storage budget (keys, persistent rules, applet state).
#[derive(Debug, Clone)]
pub struct EepromBudget {
    budget: usize,
    in_use: usize,
}

impl EepromBudget {
    /// Creates a budget of `budget` bytes.
    pub fn new(budget: usize) -> Self {
        EepromBudget { budget, in_use: 0 }
    }

    /// Total budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes currently stored.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Stores `bytes`.
    pub fn store(&mut self, bytes: usize) -> Result<(), CardError> {
        if self.in_use + bytes > self.budget {
            return Err(CardError::EepromExceeded {
                requested: bytes,
                in_use: self.in_use,
                budget: self.budget,
            });
        }
        self.in_use += bytes;
        Ok(())
    }

    /// Frees `bytes`.
    pub fn free(&mut self, bytes: usize) {
        self.in_use = self.in_use.saturating_sub(bytes);
    }
}

/// Types whose secure-RAM footprint can be accounted against a [`RamBudget`].
///
/// Implementations report the number of bytes the structure would occupy in
/// the card's working memory. The estimate deliberately counts the *logical*
/// payload (stack entries, state sets, buffers), not Rust allocator overhead,
/// mirroring how the C prototype of the paper accounted its static buffers.
pub trait RamFootprint {
    /// Bytes of secure working memory used by `self`.
    fn ram_bytes(&self) -> usize;
}

impl RamFootprint for Vec<u8> {
    fn ram_bytes(&self) -> usize {
        self.len()
    }
}

impl RamFootprint for String {
    fn ram_bytes(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_budget_tracks_allocations_and_peak() {
        let mut ram = RamBudget::new(1024);
        assert_eq!(ram.budget(), 1024);
        ram.allocate(400).unwrap();
        ram.allocate(400).unwrap();
        assert_eq!(ram.in_use(), 800);
        assert_eq!(ram.available(), 224);
        ram.release(300);
        assert_eq!(ram.in_use(), 500);
        assert_eq!(ram.peak(), 800);
        // Exceeding the budget is an error and leaves the accounting unchanged.
        let err = ram.allocate(600).unwrap_err();
        assert!(matches!(err, CardError::RamExceeded { requested: 600, .. }));
        assert_eq!(ram.in_use(), 500);
        ram.reset();
        assert_eq!(ram.in_use(), 0);
        assert_eq!(ram.peak(), 800);
        ram.reset_peak();
        assert_eq!(ram.peak(), 0);
    }

    #[test]
    fn ram_budget_resize_moves_both_ways() {
        let mut ram = RamBudget::new(100);
        ram.allocate(40).unwrap();
        ram.resize(40, 70).unwrap();
        assert_eq!(ram.in_use(), 70);
        ram.resize(70, 10).unwrap();
        assert_eq!(ram.in_use(), 10);
        assert!(ram.resize(10, 200).is_err());
        assert_eq!(ram.in_use(), 10);
    }

    #[test]
    fn eeprom_budget_enforced() {
        let mut rom = EepromBudget::new(64);
        rom.store(32).unwrap();
        rom.store(32).unwrap();
        assert!(rom.store(1).is_err());
        rom.free(10);
        assert_eq!(rom.in_use(), 54);
        rom.store(10).unwrap();
        assert_eq!(rom.budget(), 64);
    }

    #[test]
    fn footprint_of_basic_types() {
        assert_eq!(vec![0u8; 10].ram_bytes(), 10);
        assert_eq!("hello".to_owned().ram_bytes(), 5);
    }
}
