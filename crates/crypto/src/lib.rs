//! Cryptographic substrate for the SDDS Secure Operating Environment.
//!
//! The paper's architecture keeps documents and access rules **encrypted** at
//! the untrusted Document Service Provider and decrypts + integrity-checks them
//! inside the SOE (§2.1). Real smart cards do this with an on-card crypto
//! co-processor; this crate provides functionally equivalent primitives,
//! implemented from scratch so that the byte-level cost accounting of the cost
//! model is exact and so that the SOE emulator has no hidden dependency:
//!
//! * [`aes`] — AES-128 block cipher (FIPS-197),
//! * [`modes`] — CBC and CTR modes over AES, with per-chunk IVs so that the
//!   skip index can jump over encrypted regions without breaking decryption,
//! * [`sha256`] — SHA-256 (FIPS 180-4),
//! * [`hmac`] — HMAC-SHA256 (RFC 2104),
//! * [`merkle`] — a Merkle tree over document chunks, supporting verification
//!   of any subset of chunks (needed because the SOE *skips* chunks and must
//!   still detect tampering of the ones it consumes),
//! * [`keys`] — key material, a deterministic key-derivation helper and the
//!   key ring stored in the SOE's secure stable memory.
//!
//! **Security note.** These implementations favour clarity and portability and
//! are not hardened against side channels; they are a faithful functional
//! substitute for the card's crypto hardware within a research prototype.

#![forbid(unsafe_code)]

pub mod aes;
pub mod error;
pub mod hmac;
pub mod keys;
pub mod merkle;
pub mod modes;
pub mod sha256;

pub use aes::Aes128;
pub use error::CryptoError;
pub use keys::{KeyId, KeyRing, SecretKey};
pub use merkle::MerkleTree;
