//! Workloads of the E1–E9 experiments.

use sdds_card::CostModel;
use sdds_core::conflict::AccessPolicy;
use sdds_core::engine::{evaluate_secure_document, EngineConfig, SessionStats};
use sdds_core::evaluator::{EvaluatorConfig, StreamingEvaluator};
use sdds_core::query::Query;
use sdds_core::rule::{RuleSet, Sign};
use sdds_core::secdoc::{SecureDocument, SecureDocumentBuilder};
use sdds_core::skipindex::encode::EncoderConfig;
use sdds_crypto::SecretKey;
use sdds_xml::generator::{self, Corpus, GeneratorConfig};
use sdds_xml::{Document, Event};

/// The community key used by every benchmark document.
pub fn bench_key() -> SecretKey {
    SecretKey::derive(b"sdds-bench", "documents")
}

/// A hospital document of roughly `elements` element nodes.
pub fn hospital(elements: usize) -> Document {
    Corpus::Hospital.generate(elements, &GeneratorConfig::default())
}

/// Builds the secure form of a document with the given chunk size and skip
/// index granularity.
pub fn secure(doc: &Document, chunk_size: usize, min_index_bytes: usize) -> SecureDocument {
    SecureDocumentBuilder::new("bench-doc", bench_key())
        .chunk_size(chunk_size)
        .encoder_config(EncoderConfig {
            min_index_bytes,
            ..EncoderConfig::default()
        })
        .build(doc)
}

/// The medical rule set used throughout the experiments; the subject picks the
/// restrictiveness profile (doctor ≈ permissive, secretary ≈ restrictive).
pub fn medical_rules() -> RuleSet {
    RuleSet::parse(
        "+, doctor, //patient\n\
         -, doctor, //patient/ssn\n\
         +, secretary, //patient/name\n\
         +, secretary, //patient/address\n\
         +, researcher, //diagnosis\n\
         +, auditor, //acts/act[@type = \"surgery\"]/report",
    )
    // lint: infallible — bench inputs are static and valid by construction;
    // a panic here is a harness bug, not a recoverable condition.
    .expect("static rule set parses")
}

/// A synthetic pool of `n` rules of growing variety for one subject, used by
/// the E1 scaling experiment.
pub fn rule_pool(n: usize) -> RuleSet {
    const OBJECTS: &[&str] = &[
        "//patient/name",
        "//patient/ssn",
        "//patient/address",
        "//diagnosis/item",
        "//acts/act/report",
        "//acts/act[@type = \"surgery\"]",
        "//prescriptions/prescription/drug",
        "//patient[diagnosis/item/@sensitive = \"true\"]/name",
        "//act/physician",
        "//act/date",
        "//patient//report",
        "/hospital/patient",
    ];
    let mut rules = RuleSet::new();
    for i in 0..n {
        let sign = if i % 4 == 3 { Sign::Deny } else { Sign::Permit };
        rules
            .push(sign, "subject", OBJECTS[i % OBJECTS.len()])
            // lint: infallible — bench inputs are static and valid by construction;
            // a panic here is a harness bug, not a recoverable condition.
            .expect("pool rule parses");
    }
    rules
}

/// Evaluates a plaintext event stream for one subject (no crypto): the E1/E9
/// kernel.
pub fn evaluate_plain(events: &[Event], rules: &RuleSet, subject: &str) -> usize {
    let config = EvaluatorConfig::new(rules.clone(), subject);
    // lint: infallible — bench inputs are static and valid by construction;
    // a panic here is a harness bug, not a recoverable condition.
    let (out, _) = StreamingEvaluator::evaluate_all(&config, events).expect("evaluation succeeds");
    out.len()
}

/// Runs the full secure pipeline for one subject and returns its statistics.
pub fn run_secure(
    document: &SecureDocument,
    rules: &RuleSet,
    subject: &str,
    query: Option<&str>,
    use_skip_index: bool,
) -> SessionStats {
    let mut evaluator = EvaluatorConfig::new(rules.clone(), subject);
    if let Some(q) = query {
        // lint: infallible — bench inputs are static and valid by construction;
        // a panic here is a harness bug, not a recoverable condition.
        evaluator = evaluator.with_query(Query::parse(q).expect("query parses"));
    }
    let mut config = EngineConfig::new(evaluator);
    config.use_skip_index = use_skip_index;
    let (_, stats) = evaluate_secure_document(document, &bench_key(), config)
        // lint: infallible — bench inputs are static and valid by construction;
        // a panic here is a harness bug, not a recoverable condition.
        .expect("secure evaluation succeeds");
    stats
}

/// Convenience: simulated e-gate latency (seconds) of a session.
pub fn egate_seconds(stats: &SessionStats) -> f64 {
    stats
        .ledger
        .breakdown(&CostModel::egate())
        .total()
        .as_secs_f64()
}

/// A dissemination stream of `items` items.
pub fn stream(items: usize) -> Document {
    generator::stream(
        &generator::StreamProfile {
            items,
            payload_len: 128,
            ..generator::StreamProfile::default()
        },
        &GeneratorConfig::default(),
    )
}

/// Parental-control rules of the dissemination subscriber.
pub fn parental_rules() -> (RuleSet, AccessPolicy) {
    (
        // lint: infallible — bench inputs are static and valid by construction;
        // a panic here is a harness bug, not a recoverable condition.
        RuleSet::parse("-, child, //item[rating > 12]").expect("parses"),
        AccessPolicy::open(),
    )
}

// ---------------------------------------------------------------------------
// E10 — multi-client service workload
// ---------------------------------------------------------------------------

/// Configuration of one E10 multi-client run.
#[derive(Debug, Clone, Copy)]
pub struct MultiClientConfig {
    /// Concurrent card clients (one document pull each).
    pub clients: usize,
    /// Shards of the DSP service store.
    pub shards: usize,
    /// Scheduler worker threads (keep constant across compared runs).
    pub workers: usize,
    /// Chunk requests served per scheduler step.
    pub quantum: usize,
    /// Elements of each per-client hospital document.
    pub doc_elements: usize,
}

impl MultiClientConfig {
    /// The E10 defaults: 4 workers, quantum 8, small per-client folders.
    pub fn new(clients: usize, shards: usize) -> Self {
        MultiClientConfig {
            clients,
            shards,
            workers: 4,
            quantum: 8,
            doc_elements: 40,
        }
    }
}

/// Deterministic outcome of one E10 run.
///
/// Everything here is computed on the workspace's *simulated* clock (byte and
/// event counters times model rates — see `sdds_card::cost`), so the numbers
/// are machine independent: the service side is paced by the busiest shard
/// (shards serve concurrently, each shard serially), the client side by the
/// slowest card (cards run on their own hardware in parallel).
#[derive(Debug, Clone)]
pub struct MultiClientOutcome {
    /// Events evaluated across every card.
    pub total_events: usize,
    /// Simulated serial service time of the busiest shard.
    pub busiest_shard: std::time::Duration,
    /// Per-session simulated latencies (batched channel + card crypto),
    /// sorted ascending.
    pub session_latencies: Vec<std::time::Duration>,
    /// APDU exchanges saved by batching, across sessions.
    pub apdus_saved: usize,
    /// Wall-clock time of the run (informational; not gated).
    pub wall: std::time::Duration,
}

impl MultiClientOutcome {
    /// Slowest per-session simulated latency (the card-side makespan: cards
    /// run in parallel on their own hardware).
    pub fn slowest_session(&self) -> std::time::Duration {
        self.latency_percentile(1.0)
    }

    /// Simulated makespan: the slower of the service side and the card side.
    pub fn makespan(&self) -> std::time::Duration {
        self.busiest_shard.max(self.slowest_session())
    }

    /// Aggregate simulated throughput, events per second.
    pub fn events_per_s(&self) -> f64 {
        let makespan = self.makespan().as_secs_f64();
        if makespan > 0.0 {
            self.total_events as f64 / makespan
        } else {
            0.0
        }
    }

    /// Latency percentile (`p` in `[0, 1]`) across sessions.
    pub fn latency_percentile(&self, p: f64) -> std::time::Duration {
        if self.session_latencies.is_empty() {
            return std::time::Duration::ZERO;
        }
        let rank = ((self.session_latencies.len() - 1) as f64 * p).round() as usize;
        self.session_latencies[rank]
    }
}

/// Runs prepared facade sessions through the scheduler and folds the
/// deterministic outcome (shared by the per-client-folder and hot-document
/// E10 scenarios). Serving statistics must have been reset beforehand so
/// only the scheduled pulls are measured.
fn run_sessions(
    service: &std::sync::Arc<sdds_dsp::DspService>,
    sessions: Vec<sdds::CardSession>,
    workers: usize,
    quantum: usize,
) -> MultiClientOutcome {
    let start = std::time::Instant::now();
    // The scheduler shares the service's telemetry cells, so one snapshot
    // off the service covers serving, scheduling and session traffic.
    let report = sdds::SessionScheduler::new(workers, quantum)
        .with_obs(service.obs())
        .run(sessions);
    let wall = start.elapsed();
    let failures = report.failures();
    assert!(failures.is_empty(), "E10 sessions failed: {failures:?}");

    let model = sdds_card::CardProfile::modern_secure_element().cost;
    let mut total_events = 0usize;
    let mut apdus_saved = 0usize;
    let mut session_latencies: Vec<std::time::Duration> = report
        .finished
        .iter()
        .map(|f| {
            total_events += f.session.terminal().card_ledger().events_processed;
            apdus_saved += f.session.batched_channel().apdus_saved();
            f.session.simulated_latency(&model)
        })
        .collect();
    session_latencies.sort();

    MultiClientOutcome {
        total_events,
        busiest_shard: service.busiest_shard_time(),
        session_latencies,
        apdus_saved,
        wall,
    }
}

/// Runs the E10 multi-client workload **through the `sdds` facade**:
/// `clients` cards, each pulling its own folder from one shared
/// [`sdds_dsp::DspService`], multiplexed by the fair round-robin session
/// scheduler. Subjects rotate doctor / secretary / researcher so per-session
/// work (and therefore latency) is heterogeneous.
///
/// Sessions are built with [`sdds::Client`] (the same entry point
/// applications use), so the gated `e10.*` keys — including the 1-client /
/// 1-shard sanity point — catch any serving overhead the facade introduces.
pub fn multi_client(config: MultiClientConfig) -> MultiClientOutcome {
    use sdds::{CardSession, Client, Publisher};

    const SUBJECTS: &[&str] = &["doctor", "secretary", "researcher"];
    let publisher = Publisher::builder(b"sdds-bench-e10")
        .rules(medical_rules())
        .shards(config.shards)
        .chunk_size(256)
        .build()
        // lint: infallible — bench inputs are static and valid by construction;
        // a panic here is a harness bug, not a recoverable condition.
        .expect("the E10 publisher configuration is valid");
    let doc = Corpus::Hospital.generate(config.doc_elements, &GeneratorConfig::default());
    for i in 0..config.clients {
        publisher
            .publish(&format!("folder-{i}"), &doc)
            // lint: infallible — bench inputs are static and valid by construction;
            // a panic here is a harness bug, not a recoverable condition.
            .expect("publishing the per-client folder");
    }

    let clients: Vec<Client> = (0..config.clients)
        .map(|i| {
            Client::builder(SUBJECTS[i % SUBJECTS.len()])
                .provision(&publisher)
                // lint: infallible — bench inputs are static and valid by construction;
                // a panic here is a harness bug, not a recoverable condition.
                .expect("provisioning the client")
        })
        .collect();
    // Setup (uploads, provisioning) is not part of the measured serving load.
    publisher.service().reset_stats();

    let sessions: Vec<CardSession> = clients
        .iter()
        .enumerate()
        .map(|(i, client)| {
            client
                .connect(format!("folder-{i}"))
                // lint: infallible — bench inputs are static and valid by construction;
                // a panic here is a harness bug, not a recoverable condition.
                .expect("connecting the session")
        })
        .collect();

    run_sessions(
        publisher.service(),
        sessions,
        config.workers,
        config.quantum,
    )
}

// ---------------------------------------------------------------------------
// E11 — actor-engine scaling workload
// ---------------------------------------------------------------------------

/// Configuration of one E11 actor-scale run: `sessions` simulated card
/// sessions, each waiting for `batches` APDU batches that arrive rarely
/// relative to the scheduler's polling.
#[derive(Debug, Clone, Copy)]
pub struct ActorScaleConfig {
    /// Concurrent simulated card sessions.
    pub sessions: usize,
    /// Worker threads (same count for both engines).
    pub workers: usize,
    /// Thread-engine polls per actually-ready batch: the round-robin FIFO
    /// visits a waiting session `poll_interval` times before its next batch
    /// is there (the O(sessions)-per-lap waste the actor engine removes).
    pub poll_interval: usize,
    /// APDU batches each session processes before completing.
    pub batches: usize,
    /// Simulated cost of one scheduler visit / engine dispatch (queue hop,
    /// readiness check).
    pub step_cost: std::time::Duration,
    /// Simulated cost of processing one APDU batch (the useful work; charged
    /// identically on both engines).
    pub batch_cost: std::time::Duration,
}

impl ActorScaleConfig {
    /// The E11 defaults: 4 workers, 16 polls per ready batch, 2 batches per
    /// session, 500 ns per visit, 2 µs per batch.
    pub fn new(sessions: usize) -> Self {
        ActorScaleConfig {
            sessions,
            workers: 4,
            poll_interval: 16,
            batches: 2,
            step_cost: std::time::Duration::from_nanos(500),
            batch_cost: std::time::Duration::from_micros(2),
        }
    }
}

/// A simulated card session mid-pull: its card channel yields one APDU batch
/// every `poll_interval` scheduler visits (thread engine), or exactly when an
/// event is delivered (actor engine). The same type implements both stepping
/// contracts so E11 compares engines, not session models.
#[derive(Debug)]
pub struct SimCardSession {
    poll_interval: usize,
    batches_left: usize,
    visits: usize,
}

impl SimCardSession {
    fn new(config: &ActorScaleConfig) -> Self {
        SimCardSession {
            poll_interval: config.poll_interval.max(1),
            batches_left: config.batches.max(1),
            visits: 0,
        }
    }

    /// Scheduler visits / engine dispatches this session consumed.
    pub fn visits(&self) -> usize {
        self.visits
    }

    fn process_batch(&mut self) -> bool {
        self.batches_left -= 1;
        self.batches_left == 0
    }
}

impl sdds_dsp::Schedulable for SimCardSession {
    /// Thread-engine contract: every FIFO visit costs a step, but only every
    /// `poll_interval`-th visit finds a batch ready.
    fn step(&mut self, _quantum: usize) -> Result<sdds_dsp::StepOutcome, String> {
        self.visits += 1;
        if self.visits.is_multiple_of(self.poll_interval) && self.process_batch() {
            Ok(sdds_dsp::StepOutcome::Complete)
        } else {
            Ok(sdds_dsp::StepOutcome::Pending)
        }
    }
}

impl sdds_dsp::ActorSession for SimCardSession {
    type Event = ();

    /// Actor-engine contract: a dispatch happens only when a batch arrived,
    /// so every visit does useful work.
    fn on_event(&mut self, (): ()) -> Result<sdds_dsp::ActorStatus, String> {
        self.visits += 1;
        if self.process_batch() {
            Ok(sdds_dsp::ActorStatus::Complete)
        } else {
            Ok(sdds_dsp::ActorStatus::Parked)
        }
    }

    fn on_step(&mut self) -> Result<sdds_dsp::ActorStatus, String> {
        Err("E11 sessions are event-driven; an event-less dispatch is an engine bug".into())
    }
}

/// One engine's side of an E11 run, on the simulated clock.
#[derive(Debug, Clone, Copy)]
pub struct EngineRun {
    /// Scheduler visits / engine dispatches across sessions.
    pub dispatches: usize,
    /// APDU batches processed across sessions (identical for both engines —
    /// the useful work).
    pub batches: usize,
    /// Simulated makespan: all dispatch and batch costs, spread over the
    /// workers.
    pub makespan: std::time::Duration,
    /// Simulated p99 session-completion latency (see [`actor_scale`]).
    pub p99: std::time::Duration,
    /// Wall-clock time of the run (informational; not gated).
    pub wall: std::time::Duration,
}

impl EngineRun {
    /// Aggregate simulated throughput: processed batches per second. The
    /// numerator is the same for both engines, so the thread/actor ratio is
    /// exactly the dispatch-overhead ratio.
    pub fn events_per_s(&self) -> f64 {
        let makespan = self.makespan.as_secs_f64();
        if makespan > 0.0 {
            self.batches as f64 / makespan
        } else {
            0.0
        }
    }
}

/// Deterministic outcome of one E11 run: the same sessions on both engines.
#[derive(Debug, Clone, Copy)]
pub struct ActorScaleOutcome {
    /// The configuration the run used.
    pub config: ActorScaleConfig,
    /// The thread-engine (round-robin FIFO) side.
    pub thread: EngineRun,
    /// The actor-engine (readiness-driven) side.
    pub actor: EngineRun,
}

impl ActorScaleOutcome {
    /// Aggregate-throughput advantage of the actor engine.
    pub fn speedup(&self) -> f64 {
        let thread = self.thread.events_per_s();
        if thread > 0.0 {
            self.actor.events_per_s() / thread
        } else {
            0.0
        }
    }
}

/// Folds one engine's dispatch/batch counters into simulated-clock metrics.
///
/// Makespan is `(dispatches × step_cost + batches × batch_cost) / workers`:
/// both engines pay the same per-batch work, the thread engine additionally
/// pays `poll_interval` visits per batch. The p99 is the session-completion
/// latency under the canonical single-queue round-robin order — session `i`
/// of `K` retires at work position `position(i)` out of `total`, so its
/// latency is that fraction of the makespan. Everything is counters times
/// model rates: machine-independent, CI-gateable.
fn engine_run(
    config: &ActorScaleConfig,
    dispatches: usize,
    batches: usize,
    wall: std::time::Duration,
    position: impl Fn(usize) -> usize,
    total: usize,
) -> EngineRun {
    let work = config.step_cost * dispatches as u32 + config.batch_cost * batches as u32;
    let makespan = work / config.workers.max(1) as u32;
    let sessions = config.sessions.max(1);
    let p99_rank = ((sessions - 1) as f64 * 0.99).round() as usize;
    let p99 = makespan.mul_f64(position(p99_rank) as f64 / total.max(1) as f64);
    EngineRun {
        dispatches,
        batches,
        makespan,
        p99,
        wall,
    }
}

/// Runs the E11 scaling workload: the same `sessions` simulated card
/// sessions once on the thread scheduler ([`sdds_dsp::SessionScheduler`],
/// FIFO round-robin) and once on the actor engine
/// ([`sdds_dsp::ActorEngine`], per-session mailboxes, events delivered
/// round-robin by a driver). Both runs really execute — completion and
/// dispatch counts are asserted — and the reported throughput/latency is
/// computed from the counters on the simulated clock, so the gated `e11.*`
/// keys are machine independent.
pub fn actor_scale(config: ActorScaleConfig) -> ActorScaleOutcome {
    actor_scale_observed(config, None)
}

/// Like [`actor_scale`], optionally wiring both engines' telemetry into a
/// [`sdds_dsp::DspObs`] bundle (E11 runs standalone, so the harness hands it
/// a dedicated bundle rather than a service's). The outcome is byte-identical
/// with or without `obs` — telemetry is parallel tallies only.
pub fn actor_scale_observed(
    config: ActorScaleConfig,
    obs: Option<&sdds_dsp::DspObs>,
) -> ActorScaleOutcome {
    let sessions = config.sessions.max(1);
    let polls = config.poll_interval.max(1);
    let batches = config.batches.max(1);

    // Thread engine: every session rides the FIFO until its batches arrive.
    let start = std::time::Instant::now();
    let mut scheduler = sdds_dsp::SessionScheduler::new(config.workers, 1);
    if let Some(obs) = obs {
        scheduler = scheduler.with_obs(obs);
    }
    let report = scheduler.run(
        (0..sessions)
            .map(|_| SimCardSession::new(&config))
            .collect(),
    );
    let thread_wall = start.elapsed();
    assert!(
        report.failures().is_empty(),
        "E11 thread sessions failed: {:?}",
        report.failures()
    );
    let thread_dispatches = report.steps_total;
    assert_eq!(thread_dispatches, sessions * polls * batches);
    // Session i's last step is step (polls·batches − 1)·K + i + 1 of the
    // round-robin total: all sessions march in lockstep and retire on the
    // final lap.
    let thread = engine_run(
        &config,
        thread_dispatches,
        sessions * batches,
        thread_wall,
        |i| (polls * batches - 1) * sessions + i + 1,
        thread_dispatches,
    );

    // Actor engine: a driver delivers each session's batches round-robin;
    // parked sessions cost nothing between arrivals.
    let start = std::time::Instant::now();
    let mut engine = sdds_dsp::ActorEngine::new(config.workers);
    if let Some(obs) = obs {
        engine = engine.with_obs(obs.actors());
    }
    let actor_report = engine.run(
        (0..sessions)
            .map(|_| SimCardSession::new(&config))
            .collect::<Vec<_>>(),
        |handle| {
            for _ in 0..batches {
                for id in 0..sessions {
                    // lint: infallible — sessions retire only after their
                    // last batch, and this loop sends exactly that many.
                    handle.send(id, ()).expect("session retired early");
                }
            }
        },
    );
    let actor_wall = start.elapsed();
    assert!(
        actor_report.all_complete(),
        "E11 actor sessions failed: {:?}",
        actor_report.failures()
    );
    assert_eq!(actor_report.events_total, sessions * batches);
    // Session i's last batch is delivery (batches − 1)·K + i + 1 of the
    // driver's round-robin total.
    let actor = engine_run(
        &config,
        actor_report.dispatches_total,
        actor_report.events_total,
        actor_wall,
        |i| (batches - 1) * sessions + i + 1,
        sessions * batches,
    );

    ActorScaleOutcome {
        config,
        thread,
        actor,
    }
}

/// Configuration of one E10 **hot-document** run: every client pulls the
/// same single document.
#[derive(Debug, Clone, Copy)]
pub struct HotDocumentConfig {
    /// Concurrent card clients, all pulling the one hot document.
    pub clients: usize,
    /// Shards of the DSP service store.
    pub shards: usize,
    /// Serving copies the hot document is pinned to (`1` = the single-copy
    /// baseline: everything queues on the home shard).
    pub replicas: usize,
    /// Scheduler worker threads (keep constant across compared runs).
    pub workers: usize,
    /// Chunk requests served per scheduler step.
    pub quantum: usize,
    /// Elements of the hot hospital document.
    pub doc_elements: usize,
}

impl HotDocumentConfig {
    /// The E10 hot-document defaults: 4 workers, quantum 8, one folder big
    /// enough (~18 chunks at 256-byte chunks) that chunk-index routing can
    /// spread its serving over every replica.
    pub fn new(clients: usize, shards: usize, replicas: usize) -> Self {
        HotDocumentConfig {
            clients,
            shards,
            replicas,
            workers: 4,
            quantum: 8,
            doc_elements: 160,
        }
    }
}

/// Runs the E10 hot-document scenario: `clients` cards all hammer **one**
/// document on a sharded service. With `replicas = 1` every request queues
/// on the document's home shard however many shards exist — the scenario the
/// ROADMAP's "hot-document replication" lever exists for; with `replicas >
/// 1` the publisher pins the document (`Publisher::builder().replicate(n)`)
/// and reads spread deterministically over the copies (chunk index / subject
/// hash picks the copy), so the outcome is byte-deterministic on the
/// simulated clock like every other E10 metric.
pub fn hot_document(config: HotDocumentConfig) -> MultiClientOutcome {
    hot_document_observed(config).0
}

/// Like [`hot_document`], additionally returning the service's telemetry:
/// the metric snapshot (counters, gauges, latency histograms across every
/// layer the run exercised) and the flight-recorder dump. The outcome stays
/// byte-identical to [`hot_document`] — telemetry is parallel tallies only.
pub fn hot_document_observed(
    config: HotDocumentConfig,
) -> (MultiClientOutcome, sdds::ObsSnapshot, String) {
    use sdds::{CardSession, Client, Publisher};

    const SUBJECTS: &[&str] = &["doctor", "secretary", "researcher"];
    let mut builder = Publisher::builder(b"sdds-bench-e10-hot")
        .rules(medical_rules())
        .shards(config.shards)
        .chunk_size(256);
    if config.replicas > 1 {
        builder = builder.replicate(config.replicas);
    }
    let publisher = builder
        .build()
        // lint: infallible — bench inputs are static and valid by construction;
        // a panic here is a harness bug, not a recoverable condition.
        .expect("the E10 hot-document publisher configuration is valid");
    let doc = Corpus::Hospital.generate(config.doc_elements, &GeneratorConfig::default());
    publisher
        .publish("hot-folder", &doc)
        // lint: infallible — bench inputs are static and valid by construction;
        // a panic here is a harness bug, not a recoverable condition.
        .expect("publishing the hot folder");

    let clients: Vec<Client> = (0..config.clients)
        .map(|i| {
            Client::builder(SUBJECTS[i % SUBJECTS.len()])
                .provision(&publisher)
                // lint: infallible — bench inputs are static and valid by construction;
                // a panic here is a harness bug, not a recoverable condition.
                .expect("provisioning the client")
        })
        .collect();
    publisher.service().reset_stats();

    let sessions: Vec<CardSession> = clients
        .iter()
        .map(|client| {
            client
                .connect("hot-folder")
                // lint: infallible — bench inputs are static and valid by construction;
                // a panic here is a harness bug, not a recoverable condition.
                .expect("connecting the session")
        })
        .collect();

    let outcome = run_sessions(
        publisher.service(),
        sessions,
        config.workers,
        config.quantum,
    );
    let snapshot = publisher.service().obs_snapshot();
    let flight = publisher.service().flight_recorder_json();
    (outcome, snapshot, flight)
}
