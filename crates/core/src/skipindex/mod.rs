//! The skip index (§2.3).
//!
//! "To reduce the flow of data received by the SOE and thus the decryption
//! time, we devise a new indexation structure that enables to skip irrelevant
//! (i.e., forbidden) parts of the documents. [...] the minimal information
//! required to achieve this goal is the set of element tags that appear in
//! each subtree (to check whether an access rule automaton is likely to reach
//! its final state) as well as the subtree size (to make the skip actually
//! possible). [...] we compress the document structure using a dictionary of
//! tags and encode the set of tags thanks to a bit array referring to the tag
//! dictionary. To further reduce the indexing overhead, we apply recursive
//! compression on both the set of tags bit array and the subtree size."
//!
//! * [`compress`] — varints, bit arrays and the recursive bitmap compression,
//! * [`encode`] — the compact binary token stream with embedded subtree
//!   summaries, produced by the publisher from an in-memory document,
//! * [`decode`] — the streaming reader used inside the SOE, able to *skip*
//!   a summarised subtree in O(1) without reading (hence without transferring
//!   or decrypting) its bytes.

pub mod compress;
pub mod decode;
pub mod encode;

pub use decode::{SkipDecision, TokenEvent, TokenReader};
pub use encode::{DocumentEncoder, EncodedDocument, EncoderConfig, SubtreeSummary};
