//! Model-checked invariants of the `sdds-obs` telemetry substrate.
//!
//! The observability layer rides inside the serving hot paths, so it is held
//! to the same standard as the paths themselves: built on `sdds-sync`, and
//! model-checked here under the `sdds-check` shims. In a normal build these
//! are plain concurrency smoke tests; compiled with
//! `RUSTFLAGS="--cfg sdds_check"` the same closures explore every
//! interleaving up to the preemption bound.
//!
//! Invariants:
//!
//! 1. The flight-recorder ring never tears: whatever the interleaving, every
//!    surviving record is internally consistent, each lane holds at most
//!    `capacity` records, and each lane keeps exactly its **newest** records
//!    (overwrite-oldest), in admission order.
//! 2. Registry counters lose no increments across threads.

use sdds_check::shim::thread;
use sdds_check::Model;
use sdds_obs::{FlightRecorder, Registry};

fn model() -> Model {
    // `Model::new()` honours SDDS_CHECK_BRANCHES / SDDS_CHECK_PREEMPTIONS,
    // so the CI soak can widen the search without touching the tests.
    Model::new()
}

fn assert_explored(report: &sdds_check::Report, name: &str) {
    #[cfg(sdds_check)]
    {
        assert!(
            report.exhausted,
            "{name}: search must exhaust within the branch budget"
        );
        assert!(
            report.executions > 1,
            "{name}: instrumented model must branch"
        );
    }
    #[cfg(not(sdds_check))]
    {
        assert!(report.executions >= 1, "{name}: model must run");
    }
}

/// Two writer threads, one lane each, writing more records than the ring
/// holds. Each record is written with `duration = start + 1`, so a torn slot
/// (fields from two different writes) is detectable by inspection.
#[test]
fn flight_ring_overwrites_oldest_without_tearing() {
    // Tiny on purpose: each write is several scheduling points under the
    // shims, and the search must exhaust within the default branch budget.
    const CAPACITY: usize = 1;
    const WRITES: u64 = 2;

    let report = model()
        .check("obs_flight_ring_overwrite_oldest", || {
            let recorder = FlightRecorder::new(2, CAPACITY);
            thread::scope(|scope| {
                for lane in 0..2usize {
                    let recorder = &recorder;
                    scope.spawn(move || {
                        for i in 0..WRITES {
                            recorder.record(lane, "check.span", i, i + 1);
                        }
                    });
                }
            });

            assert_eq!(recorder.recorded(), 2 * WRITES, "every write admitted");
            let records = recorder.records();
            for lane in 0..2usize {
                let in_lane: Vec<_> = records.iter().filter(|r| r.lane == lane).collect();
                assert_eq!(in_lane.len(), CAPACITY, "lane {lane} full, not over");
                for (slot, record) in in_lane.iter().enumerate() {
                    assert_eq!(
                        record.duration_nanos,
                        record.start_nanos + 1,
                        "lane {lane} slot {slot} is torn: {record:?}"
                    );
                }
                // Overwrite-oldest: the lane keeps its newest writes, in the
                // order the (single) writer admitted them.
                let starts: Vec<u64> = in_lane.iter().map(|r| r.start_nanos).collect();
                let expected: Vec<u64> = (WRITES - CAPACITY as u64..WRITES).collect();
                assert_eq!(starts, expected, "lane {lane} must keep newest records");
                let seqs: Vec<u64> = in_lane.iter().map(|r| r.seq).collect();
                assert!(
                    seqs.windows(2).all(|w| w[0] < w[1]),
                    "lane {lane} records out of admission order: {seqs:?}"
                );
            }
        })
        .expect("no interleaving may tear the ring");
    assert_explored(&report, "obs_flight_ring_overwrite_oldest");
}

/// Concurrent increments through independent counter handles cloned from one
/// registry: the snapshot must account every increment exactly once.
#[test]
fn registry_counters_lose_no_increments() {
    const PER_THREAD: u64 = 4;

    let report = model()
        .check("obs_registry_counter_no_lost_updates", || {
            let registry = Registry::new();
            let counter = registry.counter("check.counter");
            thread::scope(|scope| {
                for _ in 0..2 {
                    let counter = counter.clone();
                    scope.spawn(move || {
                        for _ in 0..PER_THREAD {
                            counter.inc();
                        }
                    });
                }
            });
            let snapshot = registry.snapshot();
            assert_eq!(
                snapshot.counter("check.counter"),
                2 * PER_THREAD,
                "increments must not be lost"
            );
        })
        .expect("no interleaving may drop a counter increment");
    assert_explored(&report, "obs_registry_counter_no_lost_updates");
}
