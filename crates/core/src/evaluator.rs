//! Facade tying the automata engine and the view assembler together.
//!
//! [`StreamingEvaluator`] is the component the paper calls the *access rights
//! evaluator*: events in, authorized events out, with a working set bounded by
//! the document depth, the number of active rule states and the pending
//! buffer. It is used directly on unencrypted event streams (tests, baselines,
//! dissemination filtering on a trusted gateway) and embedded by
//! [`crate::engine`] inside the SOE for encrypted documents.

use sdds_xml::Event;

use crate::assembler::{AssemblerStats, ViewAssembler};
use crate::conflict::{AccessPolicy, Decision};
use crate::error::CoreError;
use crate::query::Query;
use crate::rule::{RuleSet, Subject};
use crate::runtime::{EngineRule, EngineStats, RuleEngine};

/// Configuration of a streaming evaluation session.
#[derive(Debug, Clone)]
pub struct EvaluatorConfig {
    /// The rules granted to the subject of the session.
    pub rules: RuleSet,
    /// The subject the session runs for (rules of other subjects in
    /// [`EvaluatorConfig::rules`] are ignored).
    pub subject: Subject,
    /// Optional query restricting the delivered view.
    pub query: Option<Query>,
    /// Conflict-resolution policy.
    pub policy: AccessPolicy,
    /// Optional cap on the assembler's pending-decision buffer, in events.
    /// `None` (the default) buffers without limit, which is exact; with a cap,
    /// decisions still blocked at the mark are resolved conservatively (see
    /// [`crate::assembler::ViewAssembler::with_pending_high_water`]).
    pub pending_high_water: Option<usize>,
}

impl EvaluatorConfig {
    /// Creates a configuration for `subject` with the paper's default policy.
    pub fn new(rules: RuleSet, subject: impl Into<String>) -> Self {
        EvaluatorConfig {
            rules,
            subject: Subject::new(subject),
            query: None,
            policy: AccessPolicy::paper(),
            pending_high_water: None,
        }
    }

    /// Sets the query.
    pub fn with_query(mut self, query: Query) -> Self {
        self.query = Some(query);
        self
    }

    /// Sets the policy.
    pub fn with_policy(mut self, policy: AccessPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Caps the pending buffer at `events` queued events (eager conservative
    /// resolution on overflow).
    pub fn with_pending_high_water(mut self, events: usize) -> Self {
        self.pending_high_water = Some(events);
        self
    }

    /// Derives the pending high-water mark from a secure-RAM budget in
    /// `bytes` (e.g. the card profile's RAM size): half the budget is left to
    /// the engine working set (token stack, automaton states, render stack),
    /// the other half bounds the pending-decision buffer at
    /// [`PENDING_EVENT_ESTIMATE_BYTES`] per queued event. The mark is never
    /// below one event, so pendency degrades to immediate conservative
    /// resolution rather than panicking on tiny budgets.
    ///
    /// This is the automatic counterpart of
    /// [`EvaluatorConfig::with_pending_high_water`]: the SOE picks the mark
    /// from the hardware budget instead of the caller tuning it by hand.
    pub fn with_ram_budget(self, bytes: usize) -> Self {
        self.with_pending_high_water(derive_pending_high_water(bytes))
    }
}

/// Estimated secure-RAM cost of one queued pending event: ~16 B of queue
/// bookkeeping plus the serialized payload of a typical small element event
/// (see `ViewAssembler::ram_bytes`, which charges `serialized_len() + 16` per
/// queued event).
pub const PENDING_EVENT_ESTIMATE_BYTES: usize = 64;

/// The [`EvaluatorConfig::with_ram_budget`] derivation, exposed for tests and
/// for callers that want the mark without building a config: half of `bytes`
/// divided by the per-event estimate, floored at one event.
pub fn derive_pending_high_water(bytes: usize) -> usize {
    ((bytes / 2) / PENDING_EVENT_ESTIMATE_BYTES).max(1)
}

/// Combined statistics of an evaluation session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvaluatorStats {
    /// Engine-side counters (token stack, predicate set).
    pub engine: EngineStats,
    /// Assembler-side counters (decisions, scaffolding, pending buffer).
    pub assembler: AssemblerStats,
    /// Input events consumed.
    pub events_in: usize,
    /// Output events produced.
    pub events_out: usize,
}

impl EvaluatorStats {
    /// Peak secure-RAM footprint of the whole evaluator, in bytes.
    pub fn peak_ram_bytes(&self) -> usize {
        // Engine and assembler peaks are tracked independently but coexist;
        // summing them is the conservative estimate charged to the card.
        self.engine.peak_ram_bytes + self.assembler.peak_ram_bytes
    }
}

/// The streaming access-rights evaluator.
#[derive(Debug)]
pub struct StreamingEvaluator {
    engine: RuleEngine,
    assembler: ViewAssembler,
    subject: Subject,
    events_in: usize,
    events_out: usize,
}

impl StreamingEvaluator {
    /// Builds an evaluator from a configuration. Rules that do not concern the
    /// configured subject are ignored; rules outside the streaming fragment
    /// are reported as errors.
    pub fn new(config: &EvaluatorConfig) -> Result<Self, CoreError> {
        let mut compiled = Vec::new();
        for rule in config.rules.for_subject(&config.subject) {
            compiled.push(EngineRule::compile(rule)?);
        }
        // alloc: startup — evaluator construction at session open.
        let query = config.query.as_ref().map(|q| q.compiled().clone());
        let has_query = query.is_some();
        Ok(StreamingEvaluator {
            engine: RuleEngine::new(compiled, query),
            assembler: ViewAssembler::new(config.policy, has_query)
                .with_pending_high_water(config.pending_high_water),
            // alloc: startup — evaluator construction at session open.
            subject: config.subject.clone(),
            events_in: 0,
            events_out: 0,
        })
    }

    /// Number of rules installed for the session's subject.
    pub fn rule_count(&self) -> usize {
        self.engine.rules().len()
    }

    /// Installs an additional rule mid-stream (experiment E7: dynamic access
    /// rights). Like at construction, a rule granted to a different subject is
    /// ignored — a policy delta may carry every subject's rules, and this
    /// session must only ever honour its own. The engine's combined dispatch
    /// automaton is rebuilt incrementally; matches of the existing rules are
    /// unaffected and the new rule applies from the current stream position
    /// onwards (retroactivity over the currently open subtree is best-effort —
    /// see [`crate::runtime::RuleEngine::add_rule`]; apply policy changes
    /// between documents when exactness matters). Fails if the rule's id is
    /// already installed.
    pub fn add_rule(&mut self, rule: &crate::rule::AccessRule) -> Result<(), CoreError> {
        if rule.subject != self.subject {
            return Ok(());
        }
        self.engine
            .add_rule(crate::runtime::EngineRule::compile(rule)?)
    }

    /// Removes a rule by id mid-stream; returns true if it was installed.
    pub fn remove_rule(&mut self, id: crate::rule::RuleId) -> bool {
        self.engine.remove_rule(id)
    }

    /// Feeds one event and returns the authorized events that became ready.
    pub fn push(&mut self, event: &Event) -> Vec<Event> {
        self.events_in += 1;
        for output in self.engine.process(event) {
            self.assembler.push(output);
        }
        let ready = self.assembler.take_ready();
        self.events_out += ready.len();
        ready
    }

    /// Effective decision and query scope of the innermost open element when
    /// no decision is pending (used by the skip logic).
    pub fn current_context(&self) -> Option<(Decision, bool)> {
        self.assembler.current_context()
    }

    /// Active navigational positions per rule (skip-index satisfiability).
    pub fn active_rule_positions(&self) -> Vec<Vec<usize>> {
        self.engine.active_positions()
    }

    /// Active navigational positions of the query automaton.
    pub fn active_query_positions(&self) -> Vec<usize> {
        self.engine.active_query_positions()
    }

    /// True while at least one predicate instance is unresolved.
    pub fn has_pending(&self) -> bool {
        self.engine.has_unresolved_instances() || !self.assembler.is_drained()
    }

    /// Current secure-RAM footprint of the evaluator, in bytes.
    pub fn ram_bytes(&self) -> usize {
        self.engine.ram_bytes() + self.assembler.ram_bytes()
    }

    /// Finishes the stream, returning any remaining authorized events and the
    /// session statistics.
    pub fn finish(self) -> Result<(Vec<Event>, EvaluatorStats), CoreError> {
        let engine_stats = self.engine.stats();
        let events_in = self.events_in;
        let mut events_out = self.events_out;
        let (rest, assembler_stats) = self.assembler.finish()?;
        events_out += rest.len();
        Ok((
            rest,
            EvaluatorStats {
                engine: engine_stats,
                assembler: assembler_stats,
                events_in,
                events_out,
            },
        ))
    }

    /// Convenience helper: evaluates a whole event stream and returns the
    /// authorized view and the statistics.
    pub fn evaluate_all(
        config: &EvaluatorConfig,
        events: &[Event],
    ) -> Result<(Vec<Event>, EvaluatorStats), CoreError> {
        let mut evaluator = StreamingEvaluator::new(config)?;
        let mut out = Vec::new();
        for event in events {
            out.extend(evaluator.push(event));
        }
        let (rest, stats) = evaluator.finish()?;
        out.extend(rest);
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_xml::{writer, Parser};

    fn medical_rules() -> RuleSet {
        RuleSet::parse(
            "+, doctor, //patient\n\
             -, doctor, //patient/ssn\n\
             +, secretary, //patient/name\n\
             +, secretary, //patient/address\n\
             -, secretary, //patient/diagnosis\n\
             +, researcher, //diagnosis",
        )
        .unwrap()
    }

    fn doc() -> String {
        "<hospital>\
           <patient id=\"P1\"><name>Alice</name><ssn>111</ssn><address>Paris</address>\
             <diagnosis><item>flu</item></diagnosis></patient>\
           <patient id=\"P2\"><name>Bob</name><ssn>222</ssn><address>Lyon</address>\
             <diagnosis><item>cold</item></diagnosis></patient>\
         </hospital>"
            .to_owned()
    }

    fn view_for(subject: &str, query: Option<&str>) -> (String, EvaluatorStats) {
        let mut config = EvaluatorConfig::new(medical_rules(), subject);
        if let Some(q) = query {
            config = config.with_query(Query::parse(q).unwrap());
        }
        let events = Parser::parse_all(&doc()).unwrap();
        let (out, stats) = StreamingEvaluator::evaluate_all(&config, &events).unwrap();
        (writer::to_string(&out), stats)
    }

    #[test]
    fn doctor_sees_everything_but_ssn() {
        let (view, stats) = view_for("doctor", None);
        assert!(view.contains("<name>Alice</name>"));
        assert!(view.contains("<diagnosis>"));
        assert!(view.contains("<address>Paris</address>"));
        assert!(!view.contains("111"));
        assert!(!view.contains("222"));
        // ssn elements are not even present as scaffolding (nothing inside them
        // is authorized).
        assert!(!view.contains("<ssn>"));
        assert_eq!(stats.events_in, Parser::parse_all(&doc()).unwrap().len());
        assert!(stats.events_out > 0);
        assert!(stats.peak_ram_bytes() > 0);
    }

    #[test]
    fn secretary_sees_administrative_data_only() {
        let (view, _) = view_for("secretary", None);
        assert!(view.contains("<name>Alice</name>"));
        assert!(view.contains("<address>Lyon</address>"));
        assert!(!view.contains("diagnosis"));
        assert!(!view.contains("flu"));
        assert!(!view.contains("111"));
        // patient appears as scaffolding without its id attribute.
        assert!(view.contains("<patient>"));
        assert!(!view.contains("P1"));
    }

    #[test]
    fn researcher_sees_anonymous_diagnosis_only() {
        let (view, _) = view_for("researcher", None);
        assert!(view.contains("<diagnosis><item>flu</item></diagnosis>"));
        assert!(!view.contains("Alice"));
        assert!(!view.contains("111"));
        assert!(!view.contains("Paris"));
    }

    #[test]
    fn unknown_subject_sees_nothing() {
        let (view, stats) = view_for("intruder", None);
        assert_eq!(view, "");
        assert_eq!(stats.assembler.nodes_delivered, 0);
    }

    #[test]
    fn query_intersects_with_access_rights() {
        let (view, _) = view_for("doctor", Some("//patient[@id = \"P2\"]"));
        assert!(view.contains("Bob"));
        assert!(!view.contains("Alice"));
        assert!(!view.contains("222")); // ssn stays denied even inside the query scope
        let (view, _) = view_for("secretary", Some("//diagnosis"));
        assert_eq!(view, ""); // the query targets denied data only
    }

    #[test]
    fn rule_count_reflects_subject_filtering() {
        let config = EvaluatorConfig::new(medical_rules(), "secretary");
        let eval = StreamingEvaluator::new(&config).unwrap();
        assert_eq!(eval.rule_count(), 3);
        let config = EvaluatorConfig::new(medical_rules(), "researcher");
        assert_eq!(StreamingEvaluator::new(&config).unwrap().rule_count(), 1);
    }

    #[test]
    fn add_rule_honours_the_session_subject() {
        let config = EvaluatorConfig::new(medical_rules(), "secretary");
        let mut eval = StreamingEvaluator::new(&config).unwrap();
        assert_eq!(eval.rule_count(), 3);
        // A policy delta may carry every subject's rules: a doctor grant must
        // not widen the secretary's session.
        let doctor = crate::rule::AccessRule::permit(100, "doctor", "//patient/ssn").unwrap();
        eval.add_rule(&doctor).unwrap();
        assert_eq!(eval.rule_count(), 3);
        let own = crate::rule::AccessRule::permit(101, "secretary", "//patient/phone").unwrap();
        eval.add_rule(&own).unwrap();
        assert_eq!(eval.rule_count(), 4);
    }

    #[test]
    fn push_streams_output_incrementally() {
        let config = EvaluatorConfig::new(medical_rules(), "doctor");
        let mut eval = StreamingEvaluator::new(&config).unwrap();
        let events = Parser::parse_all(&doc()).unwrap();
        let mut produced_early = false;
        let mut total = 0usize;
        for (i, ev) in events.iter().enumerate() {
            let out = eval.push(ev);
            total += out.len();
            if i < events.len() / 2 && !out.is_empty() {
                produced_early = true;
            }
        }
        assert!(
            produced_early,
            "output should stream before the end of input"
        );
        let (rest, stats) = eval.finish().unwrap();
        total += rest.len();
        assert_eq!(total, stats.events_out);
    }

    #[test]
    fn ram_stays_bounded_relative_to_document_size() {
        // The document grows 8x; the evaluator's working set must not.
        let small = doc();
        let mut large = String::from("<hospital>");
        for _ in 0..8 {
            large.push_str(&small["<hospital>".len()..small.len() - "</hospital>".len()]);
        }
        large.push_str("</hospital>");

        let measure = |text: &str| {
            let config = EvaluatorConfig::new(medical_rules(), "doctor");
            let events = Parser::parse_all(text).unwrap();
            let (_, stats) = StreamingEvaluator::evaluate_all(&config, &events).unwrap();
            stats.peak_ram_bytes()
        };
        let small_peak = measure(&small);
        let large_peak = measure(&large);
        assert!(
            large_peak <= small_peak * 2,
            "peak RAM should not scale with document size (small {small_peak}, large {large_peak})"
        );
    }

    #[test]
    fn pending_high_water_flows_through_the_evaluator() {
        // A pending permit whose condition arrives only at the end of a long
        // subtree: exact evaluation buffers everything, the capped one stays
        // bounded and under-delivers conservatively.
        let mut rules = RuleSet::new();
        rules
            .push(crate::rule::Sign::Permit, "user", "//b[flag]")
            .unwrap();
        let mut doc = String::from("<r><b>");
        for i in 0..50 {
            doc.push_str(&format!("<x>{i}</x>"));
        }
        doc.push_str("<flag/></b></r>");
        let events = Parser::parse_all(&doc).unwrap();

        let exact_config = EvaluatorConfig::new(rules.clone(), "user");
        let (exact, exact_stats) =
            StreamingEvaluator::evaluate_all(&exact_config, &events).unwrap();
        assert!(writer::to_string(&exact).contains("<x>0</x>"));
        assert!(exact_stats.assembler.peak_pending_events > 50);
        assert_eq!(exact_stats.assembler.forced_resolutions, 0);

        let capped_config = EvaluatorConfig::new(rules, "user").with_pending_high_water(8);
        let (capped, capped_stats) =
            StreamingEvaluator::evaluate_all(&capped_config, &events).unwrap();
        assert!(capped.is_empty(), "forced permit drops the subtree");
        assert!(capped_stats.assembler.forced_resolutions >= 1);
        assert!(capped_stats.assembler.peak_pending_events <= 9);
        assert!(
            capped_stats.peak_ram_bytes() < exact_stats.peak_ram_bytes() / 4,
            "capping pendency must cap the assembler's RAM (capped {}, exact {})",
            capped_stats.peak_ram_bytes(),
            exact_stats.peak_ram_bytes()
        );
    }

    #[test]
    fn ram_budget_derives_the_pending_high_water_mark() {
        // The derivation contract: half the budget, 64 estimated bytes per
        // queued event, floored at one event. Pinned on the two card profiles
        // and the degenerate budgets.
        assert_eq!(derive_pending_high_water(1024), 8); // e-gate: 1 KiB
        assert_eq!(derive_pending_high_water(8 * 1024), 64); // modern SE: 8 KiB
        assert_eq!(derive_pending_high_water(0), 1);
        assert_eq!(derive_pending_high_water(127), 1);
        assert_eq!(
            derive_pending_high_water(2 * PENDING_EVENT_ESTIMATE_BYTES),
            1
        );
        assert_eq!(
            derive_pending_high_water(4 * PENDING_EVENT_ESTIMATE_BYTES),
            2
        );

        // The builder wires the derived mark into the config.
        let config = EvaluatorConfig::new(RuleSet::new(), "user").with_ram_budget(1024);
        assert_eq!(config.pending_high_water, Some(8));

        // And the derived mark really bounds the pending buffer: same
        // workload as the manual-mark test above, budget-driven this time.
        let mut rules = RuleSet::new();
        rules
            .push(crate::rule::Sign::Permit, "user", "//b[flag]")
            .unwrap();
        let mut doc = String::from("<r><b>");
        for i in 0..50 {
            doc.push_str(&format!("<x>{i}</x>"));
        }
        doc.push_str("<flag/></b></r>");
        let events = Parser::parse_all(&doc).unwrap();
        let config = EvaluatorConfig::new(rules, "user").with_ram_budget(1024);
        let (_, stats) = StreamingEvaluator::evaluate_all(&config, &events).unwrap();
        assert!(stats.assembler.peak_pending_events <= 9);
        assert!(stats.assembler.forced_resolutions >= 1);
    }

    #[test]
    fn unparseable_rule_surfaces_at_construction() {
        let mut rules = RuleSet::new();
        rules
            .push(crate::rule::Sign::Permit, "bob", "//a[b[c]]")
            .unwrap();
        let config = EvaluatorConfig::new(rules, "bob");
        assert!(StreamingEvaluator::new(&config).is_err());
    }

    #[test]
    fn open_policy_with_negative_rules_only() {
        let rules = RuleSet::parse("-, child, //item[rating > 12]").unwrap();
        let config = EvaluatorConfig::new(rules, "child").with_policy(AccessPolicy::open());
        let doc = "<stream><item><rating>7</rating><title>ok</title></item>\
                   <item><rating>16</rating><title>blocked</title></item></stream>";
        let events = Parser::parse_all(doc).unwrap();
        let (out, _) = StreamingEvaluator::evaluate_all(&config, &events).unwrap();
        let view = writer::to_string(&out);
        assert!(view.contains("ok"));
        assert!(!view.contains("blocked"));
    }
}
