//! Error type for the XML substrate.

use std::fmt;

/// Errors raised by the streaming parser and the tree builder.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XmlError {
    /// The input ended while an element was still open.
    UnexpectedEof {
        /// Names of the elements still open, outermost first.
        open_elements: Vec<String>,
    },
    /// A closing tag did not match the innermost open element.
    MismatchedClose {
        /// Name found in the closing tag.
        found: String,
        /// Name of the innermost open element (if any).
        expected: Option<String>,
        /// Byte offset of the offending tag.
        offset: usize,
    },
    /// Malformed markup (bad tag syntax, unterminated comment, bad entity, ...).
    Malformed {
        /// Human readable description.
        message: String,
        /// Byte offset at which the problem was detected.
        offset: usize,
    },
    /// Content found after the document (root) element was closed.
    TrailingContent {
        /// Byte offset of the trailing content.
        offset: usize,
    },
    /// The document contains no root element at all.
    EmptyDocument,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { open_elements } => write!(
                f,
                "unexpected end of input, {} element(s) still open (innermost: {:?})",
                open_elements.len(),
                open_elements.last()
            ),
            XmlError::MismatchedClose {
                found,
                expected,
                offset,
            } => write!(
                f,
                "mismatched closing tag </{found}> at byte {offset}, expected {expected:?}"
            ),
            XmlError::Malformed { message, offset } => {
                write!(f, "malformed XML at byte {offset}: {message}")
            }
            XmlError::TrailingContent { offset } => {
                write!(f, "content after the root element at byte {offset}")
            }
            XmlError::EmptyDocument => write!(f, "document contains no root element"),
        }
    }
}

impl std::error::Error for XmlError {}

impl XmlError {
    /// Convenience constructor for [`XmlError::Malformed`].
    pub fn malformed(message: impl Into<String>, offset: usize) -> Self {
        XmlError::Malformed {
            message: message.into(),
            offset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = XmlError::malformed("oops", 12);
        assert!(e.to_string().contains("byte 12"));
        assert!(e.to_string().contains("oops"));

        let e = XmlError::MismatchedClose {
            found: "b".into(),
            expected: Some("a".into()),
            offset: 3,
        };
        assert!(e.to_string().contains("</b>"));

        let e = XmlError::UnexpectedEof {
            open_elements: vec!["a".into(), "b".into()],
        };
        assert!(e.to_string().contains("2 element(s)"));

        let e = XmlError::TrailingContent { offset: 9 };
        assert!(e.to_string().contains("byte 9"));

        assert!(XmlError::EmptyDocument.to_string().contains("no root"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(XmlError::EmptyDocument, XmlError::EmptyDocument);
        assert_ne!(
            XmlError::EmptyDocument,
            XmlError::TrailingContent { offset: 0 }
        );
    }
}
