//! Quickstart: protect an XML document with user-specific rules, store it
//! encrypted at an untrusted DSP, and read it back through a smart-card SOE.
//!
//! Run with: `cargo run --example quickstart`

use sdds_card::CardProfile;
use sdds_core::rule::RuleSet;
use sdds_core::secdoc::SecureDocumentBuilder;
use sdds_core::session::TrustedServer;
use sdds_dsp::DspServer;
use sdds_proxy::{SimulatedPki, Terminal};
use sdds_xml::Document;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A document the family wants to share safely.
    let document = Document::parse(
        r#"<family>
             <agenda>
               <event private="false"><date>2005-06-14</date><title>SIGMOD demo session</title></event>
               <event private="true"><date>2005-06-20</date><title>Surprise party</title></event>
             </agenda>
             <budget><item>rent</item><amount>900</amount></budget>
           </family>"#,
    )?;

    // 2. The sharing policy: the parents see everything, the teenager sees the
    //    agenda but neither private events nor the budget.
    let rules = RuleSet::parse(
        "+, parent, /family\n\
         +, teen, /family/agenda\n\
         -, teen, //event[@private = \"true\"]\n\
         -, teen, //budget",
    )?;

    // 3. The trusted (family-owned) side: keys + rules. The PKI of the demo is
    //    simulated: every family card shares a transport secret with it.
    let server = TrustedServer::new(b"family-secret", rules);
    let pki = SimulatedPki::new(b"family-secret");

    // 4. Encrypt the document and publish it on the untrusted DSP.
    let secure =
        SecureDocumentBuilder::new("family-agenda", server.document_key()).build(&document);
    println!(
        "published `family-agenda`: {} encrypted chunks, {} bytes of skip index",
        secure.chunk_count(),
        secure.encode_stats.index_bytes
    );
    let mut dsp = DspServer::new();
    dsp.store_mut().put_document(secure);

    // 5. Each user plugs their card into a terminal, gets provisioned, and
    //    reads the document: access control runs *inside the card*.
    for user in ["parent", "teen", "stranger"] {
        let mut terminal = Terminal::issue_card(
            user,
            pki.card_transport_key(&sdds_core::rule::Subject::new(user)),
            CardProfile::modern_secure_element(),
        );
        // A stranger's card is not provisioned for this community at all.
        let view = if user == "stranger" {
            String::from("(no access: the card holds neither the keys nor any rule)")
        } else {
            terminal.provision_from(&server)?;
            terminal.evaluate_from_dsp(&mut dsp, "family-agenda")?
        };
        println!("\n=== view of `{user}` ===\n{view}");
    }
    Ok(())
}
