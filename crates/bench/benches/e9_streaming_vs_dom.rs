//! E9 — streaming SOE engine vs. DOM materialisation on the terminal.
use criterion::{criterion_group, criterion_main, Criterion};
use sdds_bench::workloads;
use sdds_core::baseline::DomBaseline;
use sdds_core::conflict::AccessPolicy;
use sdds_core::rule::Subject;

fn bench(c: &mut Criterion) {
    let doc = workloads::hospital(2_000);
    let secure = workloads::secure(&doc, 128, 32);
    let rules = workloads::medical_rules();
    let mut group = c.benchmark_group("e9_streaming_vs_dom");
    group.sample_size(10);
    group.bench_function("streaming_soe", |b| {
        b.iter(|| workloads::run_secure(&secure, &rules, "secretary", None, true))
    });
    group.bench_function("dom_baseline", |b| {
        b.iter(|| {
            DomBaseline::run(
                &secure,
                &workloads::bench_key(),
                &rules,
                &Subject::new("secretary"),
                None,
                &AccessPolicy::paper(),
            )
            .unwrap()
            .materialized_bytes
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
