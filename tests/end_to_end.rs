//! End-to-end integration tests spanning every crate — publisher → sharded
//! DSP service → terminal proxy → smart-card SOE → authorized view — driven
//! entirely through the `sdds::Client` / `sdds::Publisher` facade and
//! compared against the tree-based oracle.

use sdds::{AccessPolicy, CardProfile, Client, CostModel, Publisher, RuleSet, Sign, Subject};
use sdds_core::baseline::{authorized_view_oracle, DomBaseline};
use sdds_core::secdoc::SecureDocumentBuilder;
use sdds_xml::generator::{self, Corpus, GeneratorConfig};
use sdds_xml::{writer, Document, Parser};

fn medical_rules() -> RuleSet {
    RuleSet::parse(
        "+, doctor, //patient\n\
         -, doctor, //patient/ssn\n\
         +, secretary, //patient/name\n\
         +, secretary, //patient/address\n\
         -, secretary, //patient[diagnosis/item/@sensitive = \"true\"]/address\n\
         +, researcher, //diagnosis",
    )
    .unwrap()
}

fn publish(doc: &Document, doc_id: &str) -> Publisher {
    let publisher = Publisher::new(b"hospital", medical_rules());
    publisher.publish(doc_id, doc).unwrap();
    publisher
}

#[test]
fn every_subject_gets_exactly_the_oracle_view_through_the_full_stack() {
    let doc = Corpus::Hospital.generate(1_500, &GeneratorConfig::default());
    let publisher = publish(&doc, "folders");

    for subject in ["doctor", "secretary", "researcher", "outsider"] {
        let client = Client::builder(subject).provision(&publisher).unwrap();
        let view = client.authorized_view("folders").unwrap();
        let oracle = authorized_view_oracle(
            &doc,
            &medical_rules(),
            &Subject::new(subject),
            None,
            &AccessPolicy::paper(),
        );
        assert_eq!(
            view,
            writer::to_string(&oracle),
            "view of `{subject}` differs from the oracle"
        );
        // The delivered view must re-parse as well-formed XML (or be empty).
        if !view.is_empty() {
            Parser::parse_all(&view).expect("authorized view is well-formed XML");
        }
        // The incremental stream renders the very same bytes.
        let streamed = client
            .open_stream("folders")
            .unwrap()
            .collect_view()
            .unwrap();
        assert_eq!(streamed, view, "`{subject}` stream differs from card path");
    }
}

#[test]
fn queries_compose_with_access_control_across_the_stack() {
    let doc = Corpus::Hospital.generate(1_000, &GeneratorConfig::default());
    let publisher = publish(&doc, "folders");

    let client = Client::builder("doctor")
        .query("//patient/name")
        .provision(&publisher)
        .unwrap();
    let view = client.authorized_view("folders").unwrap();
    assert!(view.contains("<name>"));
    assert!(!view.contains("<report>"));
    assert!(!view.contains("<ssn>"));

    let oracle = authorized_view_oracle(
        &doc,
        &medical_rules(),
        &Subject::new("doctor"),
        Some(&sdds_core::Query::parse("//patient/name").unwrap()),
        &AccessPolicy::paper(),
    );
    assert_eq!(view, writer::to_string(&oracle));
}

#[test]
fn dynamic_policy_changes_need_no_reencryption_but_static_baseline_does() {
    let doc = Corpus::Hospital.generate(800, &GeneratorConfig::default());
    let mut publisher = publish(&doc, "folders");
    let stored_before = publisher.service().store().stored_bytes();

    // Before the change the nurse sees nothing.
    let nurse = Client::builder("nurse").provision(&publisher).unwrap();
    assert!(nurse.authorized_view("folders").unwrap().is_empty());

    // Grant the nurse access to names: only a new protected rule set travels
    // (to the DSP), and the very same client sees it on its next pull.
    publisher
        .grant("nurse", Sign::Permit, "//patient/name")
        .unwrap();
    let view = nurse.authorized_view("folders").unwrap();
    assert!(view.contains("<name>"));
    assert_eq!(
        publisher.service().store().stored_bytes(),
        stored_before,
        "no re-encryption happened"
    );
    assert_eq!(publisher.service().revision("folders"), Some(0));

    // The static-encryption baseline pays for the same change.
    let mut scheme = sdds_core::baseline::StaticEncryptionScheme::build(
        &doc,
        &medical_rules(),
        &AccessPolicy::paper(),
    );
    let mut new_rules = medical_rules();
    new_rules
        .push(Sign::Permit, "nurse", "//patient/name")
        .unwrap();
    let cost = scheme.apply_rule_change(&doc, &new_rules, &AccessPolicy::paper());
    assert!(cost.bytes_reencrypted > 0);
    assert!(cost.keys_redistributed > 0);
}

#[test]
fn dom_baseline_agrees_with_the_card_but_fetches_everything() {
    let doc = Corpus::Hospital.generate(1_000, &GeneratorConfig::default());
    // 128-byte chunks so that the skip granularity is fine enough for the
    // comparison (see EXPERIMENTS.md, E2 chunk-size ablation).
    let publisher = Publisher::builder(b"hospital")
        .rules(medical_rules())
        .chunk_size(128)
        .build()
        .unwrap();
    publisher.publish("folders", &doc).unwrap();

    // The researcher only reads diagnosis subtrees: most chunks are skippable.
    let researcher = Client::builder("researcher").provision(&publisher).unwrap();
    publisher.service().reset_stats();
    let card_view = researcher.authorized_view("folders").unwrap();
    let card_chunks = publisher.stats().chunks_served;

    // The DOM baseline runs on the same encrypted bytes (the builder is
    // deterministic for a given key, id and chunk size).
    let secure = SecureDocumentBuilder::new("folders", publisher.server().document_key())
        .chunk_size(128)
        .build(&doc);
    let dom = DomBaseline::run(
        &secure,
        &publisher.server().document_key(),
        &medical_rules(),
        &Subject::new("researcher"),
        None,
        &AccessPolicy::paper(),
    )
    .unwrap();
    assert_eq!(card_view, writer::to_string(&dom.view));
    // The DOM baseline decrypts the whole document; the card fetched fewer chunks.
    assert!(dom.ledger.bytes_decrypted as u64 >= secure.header.plaintext_len);
    assert!(
        card_chunks < secure.chunk_count(),
        "card fetched {card_chunks} of {} chunks",
        secure.chunk_count()
    );
    // And its working set is far beyond the e-gate's 1 KiB.
    assert!(dom.materialized_bytes > CardProfile::egate().ram_bytes);
}

#[test]
fn simulated_latency_reflects_the_egate_bottlenecks() {
    let doc = Corpus::Hospital.generate(600, &GeneratorConfig::default());
    let publisher = publish(&doc, "folders");
    let client = Client::builder("doctor").provision(&publisher).unwrap();
    let mut session = client.connect("folders").unwrap();
    session.run().unwrap();

    let egate = session.terminal().latency(&CostModel::egate());
    let modern = session
        .terminal()
        .latency(&CostModel::modern_secure_element());
    assert!(egate.total() > modern.total());
    // On the e-gate, the 2 KB/s channel dominates the breakdown.
    assert!(egate.transfer >= egate.evaluation);
    assert!(egate.transfer_share() > 0.3);
}

#[test]
fn all_generated_corpora_survive_the_full_pipeline() {
    for corpus in Corpus::all() {
        let doc = corpus.generate(600, &GeneratorConfig::default());
        let rules = RuleSet::parse("+, user, /*").unwrap();
        let publisher = Publisher::new(b"generic", rules);
        publisher.publish(corpus.name(), &doc).unwrap();
        let client = Client::builder("user").provision(&publisher).unwrap();
        let view = client.authorized_view(corpus.name()).unwrap();
        // Full permission: the view re-parses and contains the same number of
        // elements as the original document.
        let view_events = Parser::parse_all(&view).unwrap();
        let original = doc.to_events();
        assert_eq!(
            view_events.iter().filter(|e| e.name().is_some()).count(),
            original.iter().filter(|e| e.name().is_some()).count(),
            "corpus {} lost or duplicated elements",
            corpus.name()
        );
    }
}

#[test]
fn generated_documents_roundtrip_through_text_serialisation() {
    for corpus in Corpus::all() {
        let doc = corpus.generate(400, &GeneratorConfig::default());
        let text = doc.to_xml();
        let reparsed = Document::parse(&text).unwrap();
        assert_eq!(reparsed.to_xml(), text, "corpus {}", corpus.name());
        let events =
            generator::Corpus::generate(corpus, 400, &GeneratorConfig::default()).to_events();
        assert_eq!(events, doc.to_events());
    }
}
