//! Planted-allocation fixtures for the hot-path escape analyzer.
//!
//! Each fixture is a tiny workspace (a `HotConfig` plus in-memory source
//! files) with one deliberate allocation on a hot path; the test asserts the
//! analyzer reports it with the expected rule at the expected `file:line`
//! and with full call-chain provenance in the message. The clean fixtures at
//! the bottom guard against false positives on the patterns the real
//! workspace relies on (cold fns, test-only code, justified annotations,
//! refcount bumps, startup/builder code outside the roots).

use sdds_lint::escape::{analyze, HotConfig};
use sdds_lint::taint::SourceFile;
use sdds_lint::{Rule, Violation};

/// A minimal hot-path model mirroring the real `hotpath.toml` shape: two
/// root patterns (a prefixed method family and a bare fn) and the same
/// vocabulary the workspace config uses.
const CONFIG: &str = r#"
[roots]
hot = ["Store::serve*", "next_event"]

[vocabulary]
methods = ["clone", "to_vec", "to_owned", "to_string", "collect"]
constructors = ["Vec::new", "Vec::with_capacity", "Box::new", "String::from"]
macros = ["format", "vec"]
exempt = ["Arc::clone", "Rc::clone"]

[annotations]
keywords = ["amortized", "startup", "cold"]
"#;

fn config() -> HotConfig {
    HotConfig::parse(CONFIG).unwrap_or_else(|e| panic!("fixture config parses: {e}"))
}

fn file(path: &str, contents: &str) -> SourceFile {
    SourceFile {
        path: path.to_owned(),
        contents: contents.to_owned(),
    }
}

fn run(files: &[SourceFile]) -> Vec<Violation> {
    analyze(&config(), files)
}

/// Every fixture must satisfy both root patterns, or the analyzer reports
/// the unmatched pattern against the config file and drowns the assertion.
const ROOT_STUBS: &str = "fn next_event() {}\n";

/// Asserts at least one violation of `rule` at `file:line` (and echoes the
/// whole report on failure so the planted allocation is easy to locate).
#[track_caller]
fn assert_caught(violations: &[Violation], rule: Rule, path: &str, line: usize) {
    let caught = violations
        .iter()
        .any(|v| v.rule == rule && v.file.to_string_lossy() == path && v.line == line);
    assert!(
        caught,
        "expected a {} at {path}:{line}, got: {violations:#?}",
        rule.name()
    );
}

/// Fetches the message of the `rule` violation at `file:line` for
/// provenance assertions.
#[track_caller]
fn message_of(violations: &[Violation], rule: Rule, path: &str, line: usize) -> String {
    violations
        .iter()
        .find(|v| v.rule == rule && v.file.to_string_lossy() == path && v.line == line)
        .unwrap_or_else(|| panic!("no {} at {path}:{line}: {violations:#?}", rule.name()))
        .message
        .clone()
}

// ---------------------------------------------------- planted allocations --

#[test]
fn alloc_1_direct_method_in_hot_root_is_caught() {
    let src = format!(
        "struct Store;\nimpl Store {{\n    fn serve_chunk(&self, x: &[u8]) -> Vec<u8> {{\n        x.to_vec()\n    }}\n}}\n{ROOT_STUBS}"
    );
    let v = run(&[file("dsp/src/shard.rs", &src)]);
    assert_caught(&v, Rule::HotAlloc, "dsp/src/shard.rs", 4);
    let msg = message_of(&v, Rule::HotAlloc, "dsp/src/shard.rs", 4);
    assert!(
        msg.contains("Store::serve_chunk → .to_vec() @ dsp/src/shard.rs:4"),
        "chain provenance should name the root and the construct: {msg}"
    );
}

#[test]
fn alloc_2_transitive_two_deep_carries_full_chain() {
    // root → helper → deeper → format!: the report must spell out every hop.
    let src = format!(
        "struct Store;\nimpl Store {{\n    fn serve(&self) {{ helper(); }}\n}}\nfn helper() {{ deeper(); }}\nfn deeper() {{ let s = format!(\"x\"); }}\n{ROOT_STUBS}"
    );
    let v = run(&[file("dsp/src/shard.rs", &src)]);
    assert_caught(&v, Rule::HotAlloc, "dsp/src/shard.rs", 6);
    let msg = message_of(&v, Rule::HotAlloc, "dsp/src/shard.rs", 6);
    assert!(
        msg.contains("Store::serve → helper → deeper → format!"),
        "chain should list root, both hops, and the macro: {msg}"
    );
}

#[test]
fn alloc_3_transitive_across_files_is_caught() {
    // The call graph is workspace-wide: the root lives in one file, the
    // allocating helper in another.
    let root = format!(
        "struct Store;\nimpl Store {{\n    fn serve(&self) {{ encode_reply(); }}\n}}\n{ROOT_STUBS}"
    );
    let v = run(&[
        file("dsp/src/shard.rs", &root),
        file(
            "dsp/src/wire.rs",
            "pub fn encode_reply() -> Vec<u8> {\n    Vec::with_capacity(64)\n}\n",
        ),
    ]);
    assert_caught(&v, Rule::HotAlloc, "dsp/src/wire.rs", 2);
    let msg = message_of(&v, Rule::HotAlloc, "dsp/src/wire.rs", 2);
    assert!(
        msg.contains("Store::serve → encode_reply"),
        "cross-file provenance should start at the root: {msg}"
    );
}

#[test]
fn alloc_4_method_chain_collect_is_caught() {
    let src = format!(
        "struct Store;\nimpl Store {{\n    fn serve(&self, xs: &[u8]) -> Vec<u8> {{\n        xs.iter().map(|b| b.wrapping_add(1)).collect()\n    }}\n}}\n{ROOT_STUBS}"
    );
    let v = run(&[file("dsp/src/shard.rs", &src)]);
    assert_caught(&v, Rule::HotAlloc, "dsp/src/shard.rs", 4);
    let msg = message_of(&v, Rule::HotAlloc, "dsp/src/shard.rs", 4);
    assert!(msg.contains(".collect()"), "{msg}");
}

#[test]
fn alloc_5_format_macro_in_bare_fn_root_is_caught() {
    // The bare-name root (`next_event`) is hot too, not just `Type::method`
    // patterns.
    let v = run(&[
        file(
            "src/stream.rs",
            "fn next_event(id: u64) -> String {\n    format!(\"event-{id}\")\n}\n",
        ),
        file(
            "dsp/src/shard.rs",
            "struct Store;\nimpl Store {\n    fn serve(&self) {}\n}\n",
        ),
    ]);
    assert_caught(&v, Rule::HotAlloc, "src/stream.rs", 2);
}

#[test]
fn alloc_6_inside_closure_body_is_caught() {
    // Closures run in the enclosing fn's frame: an owning conversion inside
    // a `map` closure on the hot path is still a per-event allocation.
    let src = format!(
        "struct Store;\nimpl Store {{\n    fn serve(&self, names: &[&str]) -> usize {{\n        names.iter().map(|n| n.to_owned()).count()\n    }}\n}}\n{ROOT_STUBS}"
    );
    let v = run(&[file("dsp/src/shard.rs", &src)]);
    assert_caught(&v, Rule::HotAlloc, "dsp/src/shard.rs", 4);
    let msg = message_of(&v, Rule::HotAlloc, "dsp/src/shard.rs", 4);
    assert!(msg.contains(".to_owned()"), "{msg}");
}

#[test]
fn alloc_7_transitive_method_call_on_own_type_is_caught() {
    // `self.frame()` resolves to the sibling method, whose `clone` is then
    // on the hot path with the method hop in the chain.
    let src = format!(
        "struct Store {{ buf: Vec<u8> }}\nimpl Store {{\n    fn serve(&self) {{ self.frame(); }}\n    fn frame(&self) -> Vec<u8> {{\n        self.buf.clone()\n    }}\n}}\n{ROOT_STUBS}"
    );
    let v = run(&[file("dsp/src/shard.rs", &src)]);
    assert_caught(&v, Rule::HotAlloc, "dsp/src/shard.rs", 5);
    let msg = message_of(&v, Rule::HotAlloc, "dsp/src/shard.rs", 5);
    assert!(
        msg.contains("Store::serve") && msg.contains("frame") && msg.contains(".clone()"),
        "chain should include the method hop: {msg}"
    );
}

#[test]
fn alloc_8_owning_constructor_in_root_is_caught() {
    let src = format!(
        "struct Store;\nimpl Store {{\n    fn serve(&self, n: u8) -> Box<u8> {{\n        Box::new(n)\n    }}\n}}\n{ROOT_STUBS}"
    );
    let v = run(&[file("dsp/src/shard.rs", &src)]);
    assert_caught(&v, Rule::HotAlloc, "dsp/src/shard.rs", 4);
    let msg = message_of(&v, Rule::HotAlloc, "dsp/src/shard.rs", 4);
    assert!(msg.contains("Box::new"), "{msg}");
}

#[test]
fn alloc_9_vec_macro_transitively_reached_is_caught() {
    let src = format!(
        "struct Store;\nimpl Store {{\n    fn serve_rules(&self) {{ scratch(); }}\n}}\nfn scratch() {{ let v = vec![0u8; 16]; }}\n{ROOT_STUBS}"
    );
    let v = run(&[file("dsp/src/shard.rs", &src)]);
    assert_caught(&v, Rule::HotAlloc, "dsp/src/shard.rs", 5);
    let msg = message_of(&v, Rule::HotAlloc, "dsp/src/shard.rs", 5);
    assert!(msg.contains("vec!"), "{msg}");
}

// ------------------------------------------------- annotation discipline --

#[test]
fn annotation_without_reason_is_malformed_and_does_not_suppress() {
    let src = format!(
        "struct Store;\nimpl Store {{\n    fn serve(&self) {{\n        // alloc: amortized\n        let v: Vec<u8> = Vec::new();\n    }}\n}}\n{ROOT_STUBS}"
    );
    let v = run(&[file("dsp/src/shard.rs", &src)]);
    assert_caught(&v, Rule::HotAnnotation, "dsp/src/shard.rs", 4);
    // A malformed justification must not silence the allocation either.
    assert_caught(&v, Rule::HotAlloc, "dsp/src/shard.rs", 5);
}

#[test]
fn stale_annotation_in_cold_fn_is_flagged() {
    // A justification in a fn no hot root reaches is dead weight that would
    // mislead reviewers; the analyzer demands it be removed.
    let src = format!(
        "struct Store;\nimpl Store {{\n    fn serve(&self) {{}}\n}}\nfn offline_report() {{\n    // alloc: cold — report built off the serving path\n    let v: Vec<u8> = Vec::new();\n}}\n{ROOT_STUBS}"
    );
    let v = run(&[file("dsp/src/shard.rs", &src)]);
    assert_caught(&v, Rule::HotAnnotation, "dsp/src/shard.rs", 6);
    let msg = message_of(&v, Rule::HotAnnotation, "dsp/src/shard.rs", 6);
    assert!(msg.contains("stale"), "{msg}");
}

#[test]
fn unknown_keyword_is_malformed() {
    let src = format!(
        "struct Store;\nimpl Store {{\n    fn serve(&self) {{\n        // alloc: whenever — sounds fine\n        let v: Vec<u8> = Vec::new();\n    }}\n}}\n{ROOT_STUBS}"
    );
    let v = run(&[file("dsp/src/shard.rs", &src)]);
    assert_caught(&v, Rule::HotAnnotation, "dsp/src/shard.rs", 4);
}

#[test]
fn root_pattern_matching_no_fn_is_reported_against_the_config() {
    // Only `next_event` exists; `Store::serve*` matches nothing, so the
    // config itself is flagged — a rename must not silently un-root a path.
    let v = run(&[file("src/stream.rs", ROOT_STUBS)]);
    let hit = v
        .iter()
        .find(|v| v.rule == Rule::HotAnnotation && v.message.contains("Store::serve*"))
        .unwrap_or_else(|| panic!("{v:#?}"));
    assert_eq!(
        hit.file.to_string_lossy(),
        sdds_lint::escape::CONFIG_PATH,
        "{hit:#?}"
    );
}

// ------------------------------------------------------- false positives --

#[test]
fn clean_cold_fn_may_allocate_freely() {
    // Nothing reaches `build_report` from a root: its allocations are fine
    // and need no annotation.
    let src = format!(
        "struct Store;\nimpl Store {{\n    fn serve(&self) {{}}\n}}\nfn build_report(n: usize) -> Vec<String> {{\n    let mut out = Vec::with_capacity(n);\n    out.push(format!(\"{{n}} shards\"));\n    out\n}}\n{ROOT_STUBS}"
    );
    let v = run(&[file("dsp/src/shard.rs", &src)]);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn clean_test_code_is_exempt() {
    // `#[cfg(test)]` modules may allocate and may even shadow hot names.
    let src = format!(
        "struct Store;\nimpl Store {{\n    fn serve(&self) {{}}\n}}\n{ROOT_STUBS}#[cfg(test)]\nmod tests {{\n    fn serve_fixture() -> Vec<u8> {{\n        vec![1, 2, 3]\n    }}\n    fn label(i: usize) -> String {{\n        format!(\"case-{{i}}\")\n    }}\n}}\n"
    );
    let v = run(&[file("dsp/src/shard.rs", &src)]);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn clean_justified_annotation_suppresses() {
    let src = format!(
        "struct Store;\nimpl Store {{\n    fn serve(&self) {{\n        // alloc: amortized — buffer reuses spare capacity across events\n        let v: Vec<u8> = Vec::with_capacity(8);\n    }}\n}}\n{ROOT_STUBS}"
    );
    let v = run(&[file("dsp/src/shard.rs", &src)]);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn clean_justification_in_comment_block_above_suppresses() {
    // The annotation may sit in the contiguous comment block above the
    // flagged line, with prose wrapping onto following comment lines.
    let src = format!(
        "struct Store;\nimpl Store {{\n    fn serve(&self) {{\n        // alloc: startup — the directory entry is created on first\n        // touch and reused for the rest of the session.\n        let v: Vec<u8> = Vec::new();\n    }}\n}}\n{ROOT_STUBS}"
    );
    let v = run(&[file("dsp/src/shard.rs", &src)]);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn clean_arc_clone_is_a_refcount_bump_not_an_allocation() {
    let src = format!(
        "struct Store;\nimpl Store {{\n    fn serve(&self, blob: &Arc<[u8]>) -> Arc<[u8]> {{\n        Arc::clone(blob)\n    }}\n}}\n{ROOT_STUBS}"
    );
    let v = run(&[file("dsp/src/shard.rs", &src)]);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn clean_builder_outside_roots_may_allocate() {
    // Startup/builder code (session setup, config loading) is outside the
    // roots by design: per-session allocation is not per-event allocation.
    let src = format!(
        "struct Store;\nimpl Store {{\n    fn serve(&self) {{}}\n}}\nstruct StoreBuilder {{ shards: Vec<String> }}\nimpl StoreBuilder {{\n    fn shard(mut self, name: &str) -> Self {{\n        self.shards.push(name.to_owned());\n        self\n    }}\n    fn build(self) -> Store {{\n        let _labels: Vec<String> = self.shards.iter().map(|s| format!(\"shard-{{s}}\")).collect();\n        Store\n    }}\n}}\n{ROOT_STUBS}"
    );
    let v = run(&[file("dsp/src/shard.rs", &src)]);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn clean_vocabulary_words_in_string_literals_are_ignored() {
    let src = format!(
        "struct Store;\nimpl Store {{\n    fn serve(&self) -> &'static str {{\n        \"justify with `// alloc: amortized — <reason>` or drop the clone\"\n    }}\n}}\n{ROOT_STUBS}"
    );
    let v = run(&[file("dsp/src/shard.rs", &src)]);
    assert!(v.is_empty(), "{v:#?}");
}
