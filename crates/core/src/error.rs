//! Error type of the access-control core.

use std::fmt;

/// Errors raised by rule compilation, the secure document codec and the engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A rule object or query uses a construct outside the supported streaming
    /// fragment (e.g. predicates nested inside predicate paths).
    UnsupportedRule {
        /// The offending expression.
        expression: String,
        /// Why it is not supported by the streaming automata.
        reason: String,
    },
    /// A rule or query failed to parse.
    Parse(String),
    /// The secure document is malformed (bad magic, truncated section, ...).
    BadDocument {
        /// Description of the problem.
        message: String,
    },
    /// Cryptographic failure (integrity, missing key, ...).
    Crypto(sdds_crypto::CryptoError),
    /// Card-level failure (RAM budget exceeded, APDU problems, ...).
    Card(sdds_card::CardError),
    /// XML-level failure in the decoded document.
    Xml(sdds_xml::XmlError),
    /// The evaluation session is not in the expected state for the operation.
    BadState {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnsupportedRule { expression, reason } => {
                write!(f, "unsupported rule `{expression}`: {reason}")
            }
            CoreError::Parse(msg) => write!(f, "parse error: {msg}"),
            CoreError::BadDocument { message } => write!(f, "bad secure document: {message}"),
            CoreError::Crypto(e) => write!(f, "cryptographic error: {e}"),
            CoreError::Card(e) => write!(f, "card error: {e}"),
            CoreError::Xml(e) => write!(f, "xml error: {e}"),
            CoreError::BadState { message } => write!(f, "bad state: {message}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<sdds_crypto::CryptoError> for CoreError {
    fn from(e: sdds_crypto::CryptoError) -> Self {
        CoreError::Crypto(e)
    }
}

impl From<sdds_card::CardError> for CoreError {
    fn from(e: sdds_card::CardError) -> Self {
        CoreError::Card(e)
    }
}

impl From<sdds_xml::XmlError> for CoreError {
    fn from(e: sdds_xml::XmlError) -> Self {
        CoreError::Xml(e)
    }
}

impl From<sdds_xpath::ParseError> for CoreError {
    fn from(e: sdds_xpath::ParseError) -> Self {
        CoreError::Parse(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = sdds_crypto::CryptoError::BadPadding.into();
        assert!(e.to_string().contains("padding"));
        let e: CoreError = sdds_card::CardError::RamExceeded {
            requested: 1,
            in_use: 2,
            budget: 3,
        }
        .into();
        assert!(e.to_string().contains("RAM"));
        let e: CoreError = sdds_xml::XmlError::EmptyDocument.into();
        assert!(e.to_string().contains("root"));
        let e: CoreError = sdds_xpath::ParseError::new("bad", 0, "/x[").into();
        assert!(e.to_string().contains("bad"));
        let e = CoreError::UnsupportedRule {
            expression: "//a[b[c]]".into(),
            reason: "nested predicate".into(),
        };
        assert!(e.to_string().contains("nested predicate"));
        assert!(CoreError::BadState {
            message: "no session".into()
        }
        .to_string()
        .contains("no session"));
        assert!(CoreError::BadDocument {
            message: "magic".into()
        }
        .to_string()
        .contains("magic"));
    }
}
