//! Regression tests pinning the E7 (dynamic access rights) semantics of the
//! combined dispatch automaton: adding or removing a rule mid-stream rebuilds
//! the shared trie and remaps every live run, and that rebuild must be
//! invisible — the matches of every rule that exists both before and after
//! the change are identical to a run that never rebuilt.

use sdds_core::evaluator::{EvaluatorConfig, StreamingEvaluator};
use sdds_core::rule::{AccessRule, RuleId, RuleSet};
use sdds_xml::{writer, Event, Parser};

/// A document that keeps runs, pending predicate instances and text watchers
/// alive at every boundary: nested descendants, a deferred `[date = "2004"]`
/// predicate resolving late, and a failing sibling predicate.
const DOC: &str = "<hospital><patient><name>Alice</name>\
     <acts><act><report>r1</report><date>2004</date></act>\
     <act><report>r2</report><date>2005</date></act></acts></patient>\
     <patient><name>Bob</name><acts><act><report>r3</report></act></acts></patient>\
     </hospital>";

/// Rules exercising child/descendant axes, wildcards and deferred predicates.
const RULES: &str = "+, user, //patient\n\
     -, user, //act[date = \"2004\"]/report\n\
     +, user, /hospital/*/name\n\
     -, user, //acts//report";

fn events() -> Vec<Event> {
    Parser::parse_all(DOC).unwrap()
}

fn static_view(rules_text: &str) -> String {
    let rules = RuleSet::parse(rules_text).unwrap();
    let config = EvaluatorConfig::new(rules, "user");
    let (out, _) = StreamingEvaluator::evaluate_all(&config, &events()).unwrap();
    writer::to_string(&out)
}

/// Evaluates `DOC` under `RULES`, performing `churn(evaluator)` at event
/// boundary `k`.
fn view_with_change_at(k: usize, churn: impl Fn(&mut StreamingEvaluator)) -> String {
    let rules = RuleSet::parse(RULES).unwrap();
    let config = EvaluatorConfig::new(rules, "user");
    let mut evaluator = StreamingEvaluator::new(&config).unwrap();
    let mut out = Vec::new();
    for (i, ev) in events().iter().enumerate() {
        if i == k {
            churn(&mut evaluator);
        }
        out.extend(evaluator.push(ev));
    }
    let (rest, _) = evaluator.finish().unwrap();
    out.extend(rest);
    writer::to_string(&out)
}

/// A net-zero policy change (add then remove an unrelated rule) at *every*
/// stream boundary leaves the view identical to a run that never rebuilt:
/// live runs, pending instances and watchers all survive the remap.
#[test]
fn net_zero_rule_churn_is_invisible_at_every_boundary() {
    let baseline = static_view(RULES);
    for k in 0..events().len() {
        let churned = view_with_change_at(k, |evaluator| {
            let grant = AccessRule::permit(77, "user", "//ward[unit]/bed").unwrap();
            evaluator.add_rule(&grant).unwrap();
            assert!(evaluator.remove_rule(RuleId(77)));
        });
        assert_eq!(
            churned, baseline,
            "rebuild at boundary {k} changed the authorized view"
        );
    }
}

/// Adding a rule before the first event is equivalent to configuring it
/// statically, and removing it again restores the original behaviour.
#[test]
fn add_and_remove_at_stream_start_match_static_configurations() {
    let with_extra = format!("{RULES}\n-, user, //name");
    let added = view_with_change_at(0, |evaluator| {
        // Ids 0..3 are taken by RULES.
        let deny = AccessRule::deny(4, "user", "//name").unwrap();
        evaluator.add_rule(&deny).unwrap();
    });
    assert_eq!(added, static_view(&with_extra), "dynamic add diverges");

    let removed = view_with_change_at(0, |evaluator| {
        // Removing `-, user, //acts//report` leaves rules 0..=2.
        assert!(evaluator.remove_rule(RuleId(3)));
    });
    let without_last = "+, user, //patient\n\
         -, user, //act[date = \"2004\"]/report\n\
         +, user, /hospital/*/name";
    assert_eq!(
        removed,
        static_view(without_last),
        "dynamic remove diverges"
    );
}

/// A rule removed mid-stream stops matching from that point on while the
/// surviving rules keep their in-flight state (including a pending predicate
/// instance spawned before the removal).
#[test]
fn surviving_rules_keep_pending_state_across_removal() {
    let boundary = events()
        .iter()
        .position(|e| matches!(e, Event::Open { name, .. } if name == "report"))
        .expect("a report element exists");
    // Remove the unconditional //acts//report denial right before the first
    // <report> opens. The first act's `[date = "2004"]` instance was spawned
    // *before* the rebuild; it must survive the run remap, keep the report
    // match pending, and resolve true on the late <date>2004</date> — denying
    // r1. The other reports are only governed by the removed rule, so they
    // now flow through (r2's act has date 2005, r3's act has no date).
    let view = view_with_change_at(boundary, |evaluator| {
        assert!(evaluator.remove_rule(RuleId(3)));
    });
    assert!(
        !view.contains("r1"),
        "the pending [date = \"2004\"] instance must survive the rebuild and deny r1"
    );
    assert!(view.contains("r2"), "r2 is only denied by the removed rule");
    assert!(view.contains("r3"), "r3 is only denied by the removed rule");
}
