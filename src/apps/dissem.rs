//! Demonstration application 2: selective dissemination of streams.
//!
//! "The second one deals with the selective dissemination of multimedia
//! streams through unsecured channels" (§3). The publisher broadcasts every
//! encrypted item to every subscriber; each subscriber's SOE filters the
//! stream against that subscriber's rules (channel subscriptions, parental
//! control on ratings) with a per-item latency that must stay compatible with
//! the stream rate — experiment E6 measures exactly that.
//!
//! Push mode has no DSP in the loop, so subscriber cards are provisioned with
//! their protected rules up front ([`crate::Client::terminal_with_rules`])
//! and each broadcast item is evaluated locally on the card.

use std::time::Duration;

use sdds_card::{CardProfile, CostModel};
use sdds_core::conflict::AccessPolicy;
use sdds_core::engine::{evaluate_secure_document, EngineConfig};
use sdds_core::evaluator::EvaluatorConfig;
use sdds_core::rule::{RuleSet, Subject};
use sdds_proxy::DisseminationChannel;
use sdds_xml::Document;

use crate::client::{Client, Publisher};
use crate::error::SddsError;

/// Per-subscriber outcome of consuming the whole stream.
#[derive(Debug, Clone)]
pub struct SubscriberReport {
    /// Subscriber name.
    pub subscriber: String,
    /// Items delivered (at least partially visible).
    pub items_delivered: usize,
    /// Items entirely filtered out by the subscriber's rules.
    pub items_blocked: usize,
    /// Total simulated time spent by the card on the whole stream (e-gate cost
    /// model), used against the real-time requirement.
    pub total_latency: Duration,
    /// Worst per-item simulated latency.
    pub max_item_latency: Duration,
    /// Bytes the subscriber's SOE skipped thanks to the index.
    pub bytes_skipped: usize,
}

impl SubscriberReport {
    /// True if every item was processed within `deadline` (the stream period).
    pub fn meets_real_time(&self, deadline: Duration) -> bool {
        self.max_item_latency <= deadline
    }
}

/// The dissemination application: one publisher, many subscribers.
pub struct DisseminationApp {
    publisher: Publisher,
    channel: DisseminationChannel,
    card_profile: CardProfile,
}

impl DisseminationApp {
    /// Creates the application and publishes every item of `stream_doc`.
    pub fn new(
        community_secret: &[u8],
        stream_doc: &Document,
        subscriber_rules: RuleSet,
        card_profile: CardProfile,
    ) -> Self {
        let publisher = Publisher::builder(community_secret)
            .rules(subscriber_rules)
            .build()
            // lint: infallible — the builder only errors on an explicit
            // out-of-range shard count, which this path never sets.
            .expect("the dissemination publisher configuration is valid");
        let mut channel = DisseminationChannel::new("broadcast", publisher.server().document_key());
        channel.publish_all(stream_doc);
        DisseminationApp {
            publisher,
            channel,
            card_profile,
        }
    }

    /// The publisher's channel.
    pub fn channel(&self) -> &DisseminationChannel {
        &self.channel
    }

    /// The community publisher (policy and keys).
    pub fn publisher(&self) -> &Publisher {
        &self.publisher
    }

    /// Subscribers named in the policy.
    pub fn subscribers(&self) -> Vec<Subject> {
        self.publisher.subjects()
    }

    /// Runs the whole stream through the subscriber's card terminal (full
    /// APDU path) and reports per-item outcomes. `policy` selects the default
    /// decision: parental-control subscribers use [`AccessPolicy::open`] (only
    /// their prohibitions filter the stream), subscription-based subscribers
    /// use the closed world of the paper.
    pub fn consume_with_card(
        &self,
        subscriber: &str,
        policy: AccessPolicy,
    ) -> Result<SubscriberReport, SddsError> {
        let client = Client::builder(subscriber)
            .card_profile(self.card_profile)
            .open_policy(policy == AccessPolicy::open())
            .provision(&self.publisher)?;
        let mut terminal = client.terminal_with_rules()?;
        let mut report = SubscriberReport {
            subscriber: subscriber.to_owned(),
            items_delivered: 0,
            items_blocked: 0,
            total_latency: Duration::ZERO,
            max_item_latency: Duration::ZERO,
            bytes_skipped: 0,
        };
        let model = CostModel::egate();
        let mut previous_total = Duration::ZERO;
        for item in self.channel.published() {
            let view = terminal.evaluate_local(&item.document)?;
            let total = terminal.latency(&model).total();
            let item_latency = total.saturating_sub(previous_total);
            previous_total = total;
            report.total_latency = total;
            report.max_item_latency = report.max_item_latency.max(item_latency);
            if view.is_empty() {
                report.items_blocked += 1;
            } else {
                report.items_delivered += 1;
            }
        }
        Ok(report)
    }

    /// Lighter-weight variant used by the benches: evaluates the stream with
    /// the in-process engine (no APDU framing).
    pub fn consume_in_process(
        &self,
        subscriber: &str,
        policy: AccessPolicy,
    ) -> Result<SubscriberReport, SddsError> {
        let rules = self.publisher.rules().clone();
        let mut report = SubscriberReport {
            subscriber: subscriber.to_owned(),
            items_delivered: 0,
            items_blocked: 0,
            total_latency: Duration::ZERO,
            max_item_latency: Duration::ZERO,
            bytes_skipped: 0,
        };
        let model = CostModel::egate();
        for item in self.channel.published() {
            let config = EngineConfig::new(
                EvaluatorConfig::new(rules.clone(), subscriber).with_policy(policy),
            );
            let (view, stats) =
                evaluate_secure_document(&item.document, self.channel.key(), config)?;
            let latency = stats.ledger.breakdown(&model).total();
            report.total_latency += latency;
            report.max_item_latency = report.max_item_latency.max(latency);
            report.bytes_skipped += stats.ledger.bytes_skipped;
            if view.is_empty() {
                report.items_blocked += 1;
            } else {
                report.items_delivered += 1;
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_xml::generator::{self, GeneratorConfig, StreamProfile};

    fn app(items: usize) -> DisseminationApp {
        let stream = generator::stream(
            &StreamProfile {
                items,
                payload_len: 64,
                ..StreamProfile::default()
            },
            &GeneratorConfig::default(),
        );
        // Parental control for "kid" (open world: blocks items rated above 12)
        // and a channel subscription for "trader" (closed world: only the
        // finance channel is granted).
        let rules = RuleSet::parse(
            "-, kid, //item[rating > 12]\n\
             +, trader, //item[@channel = \"finance\"]",
        )
        .unwrap();
        DisseminationApp::new(
            b"broadcast-2005",
            &stream,
            rules,
            CardProfile::modern_secure_element(),
        )
    }

    #[test]
    fn parental_control_filters_in_the_subscribers_card() {
        let app = app(8);
        assert_eq!(app.subscribers().len(), 2);
        assert_eq!(app.channel().published().len(), 8);
        let report = app.consume_with_card("kid", AccessPolicy::open()).unwrap();
        assert_eq!(report.items_delivered + report.items_blocked, 8);
        assert!(report.items_delivered > 0);
        assert!(report.items_blocked > 0);
        assert!(report.total_latency > Duration::ZERO);
        assert!(report.max_item_latency <= report.total_latency);
    }

    #[test]
    fn channel_subscription_filters_by_attribute() {
        let app = app(12);
        let report = app
            .consume_in_process("trader", AccessPolicy::paper())
            .unwrap();
        assert_eq!(report.items_delivered + report.items_blocked, 12);
        assert!(
            report.items_blocked > 0,
            "non-finance items must be blocked"
        );
        // Real-time check: each item must be processed faster than a (slow)
        // one-item-per-ten-seconds stream on the e-gate model.
        assert!(report.meets_real_time(Duration::from_secs(10)));
    }

    #[test]
    fn in_process_and_card_paths_agree_on_delivery_counts() {
        let app = app(6);
        let card = app.consume_with_card("kid", AccessPolicy::open()).unwrap();
        let fast = app.consume_in_process("kid", AccessPolicy::open()).unwrap();
        assert_eq!(card.items_delivered, fast.items_delivered);
        assert_eq!(card.items_blocked, fast.items_blocked);
    }
}
