//! Concurrent-read property: N reader threads hammer one document through
//! the full facade (fresh card session per pull) while a republisher thread
//! keeps replacing it. Every pull that completes must return a view that is
//! **byte-identical to the oracle view of some published revision** — no
//! torn interleaving mixing two revisions — and every pull that fails must
//! fail with the typed `StaleRevision` (a republish raced the session),
//! never with a crypto/Merkle error.
//!
//! Honours `SDDS_PROP_CASES` (default 64, CI raises it): the case budget is
//! the number of completed reads demanded across the reader threads.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use sdds::{Client, Publisher, RuleSet, SddsError};
use sdds_core::baseline::authorized_view_oracle;
use sdds_core::conflict::AccessPolicy;
use sdds_core::rule::Subject;
use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};
use sdds_xml::{writer, Document};

fn cases() -> usize {
    std::env::var("SDDS_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn rules() -> RuleSet {
    RuleSet::parse("+, doctor, //patient\n-, doctor, //patient/ssn\n+, secretary, //patient/name")
        .unwrap()
}

/// Distinct document contents the republisher cycles through (patient count
/// varies, so every revision has a different authorized view).
fn variants() -> Vec<Document> {
    (2..=5)
        .map(|patients| {
            generator::hospital(
                &HospitalProfile {
                    patients,
                    ..HospitalProfile::default()
                },
                &GeneratorConfig::default(),
            )
        })
        .collect()
}

#[test]
fn completed_views_always_match_the_oracle_of_some_revision() {
    let variants = variants();
    let subjects = ["doctor", "secretary"];

    // The oracle views a correct serve may produce, per subject: one per
    // content variant (self-consistent revision), nothing else.
    let mut oracle: BTreeSet<(String, String)> = BTreeSet::new();
    for subject in subjects {
        for doc in &variants {
            let view = writer::to_string(&authorized_view_oracle(
                doc,
                &rules(),
                &Subject::new(subject),
                None,
                &AccessPolicy::paper(),
            ));
            oracle.insert((subject.to_owned(), view));
        }
    }

    // Small chunks ⇒ long sessions ⇒ many chances for a republish to land
    // mid-pull. 4 shards + replication exercise the routed read path too.
    let publisher = Publisher::builder(b"hospital-2005")
        .rules(rules())
        .shards(4)
        .replicate(4)
        .chunk_size(128)
        .build()
        .unwrap();
    publisher.publish("folders", &variants[0]).unwrap();

    let readers = 4usize;
    let demanded = cases().max(readers);
    let completed = AtomicUsize::new(0);
    let stale_retries = AtomicUsize::new(0);
    let publishing = AtomicBool::new(true);
    let clients: Vec<(String, Client)> = (0..readers)
        .map(|i| {
            let subject = subjects[i % subjects.len()];
            (
                subject.to_owned(),
                Client::builder(subject).provision(&publisher).unwrap(),
            )
        })
        .collect();

    std::thread::scope(|scope| {
        // The republisher: keeps replacing the document while readers pull,
        // then stops so the remaining reads drain stale-free.
        let publisher_ref = &publisher;
        let publishing_ref = &publishing;
        let completed_ref = &completed;
        let variants_ref = &variants;
        scope.spawn(move || {
            // Bounded on both axes: stop once the readers made real progress
            // OR after a fixed publish budget — a machine where publishing
            // vastly outpaces pulling must not starve the readers into
            // retrying forever.
            let mut round = 0usize;
            while completed_ref.load(Ordering::Relaxed) < demanded / 2 && round < demanded * 4 {
                round += 1;
                publisher_ref
                    .publish("folders", &variants_ref[round % variants_ref.len()])
                    .unwrap();
                std::thread::yield_now();
            }
            publishing_ref.store(false, Ordering::Relaxed);
        });

        for (subject, client) in &clients {
            let oracle = &oracle;
            let completed = &completed;
            let stale_retries = &stale_retries;
            scope.spawn(move || {
                while completed.load(Ordering::Relaxed) < demanded {
                    match client.authorized_view("folders") {
                        Ok(view) => {
                            assert!(
                                oracle.contains(&(subject.clone(), view.clone())),
                                "subject `{subject}` read a view matching no published \
                                 revision (torn interleaving?): {view:?}"
                            );
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(SddsError::StaleRevision { .. }) => {
                            // A republish raced this pull: the one legal
                            // failure. Retry.
                            stale_retries.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!(
                            "subject `{subject}` failed with a non-staleness error: {other:?}"
                        ),
                    }
                }
            });
        }
    });

    assert!(completed.load(Ordering::Relaxed) >= demanded);
    assert!(
        !publishing.load(Ordering::Relaxed),
        "the republisher retired before the readers finished"
    );
    // Not asserted ≥1: whether a republish lands mid-pull is timing
    // dependent; the property is that staleness is the *only* legal failure.
    let _ = stale_retries.load(Ordering::Relaxed);
}

#[test]
fn view_streams_see_one_revision_or_go_stale() {
    // Same property through the incremental `ViewStream` path: each stream
    // either drains to an oracle view or yields exactly one typed
    // StaleRevision error.
    let variants = variants();
    let oracle: BTreeSet<String> = variants
        .iter()
        .map(|doc| {
            writer::to_string(&authorized_view_oracle(
                doc,
                &rules(),
                &Subject::new("doctor"),
                None,
                &AccessPolicy::paper(),
            ))
        })
        .collect();

    let publisher = Publisher::builder(b"hospital-2005")
        .rules(rules())
        .shards(2)
        .chunk_size(128)
        .build()
        .unwrap();
    publisher.publish("folders", &variants[0]).unwrap();
    let client = Arc::new(Client::builder("doctor").provision(&publisher).unwrap());

    let rounds = (cases() / 8).max(4);
    let stopped = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let publisher_ref = &publisher;
        let stopped_ref = &stopped;
        let variants_ref = &variants;
        scope.spawn(move || {
            let mut round = 0usize;
            while !stopped_ref.load(Ordering::Relaxed) {
                round += 1;
                publisher_ref
                    .publish("folders", &variants_ref[round % variants_ref.len()])
                    .unwrap();
                std::thread::yield_now();
            }
        });

        for _ in 0..rounds {
            match client.open_stream("folders") {
                Ok(stream) => match stream.collect_view() {
                    Ok(view) => assert!(
                        oracle.contains(&view),
                        "stream drained to a view matching no revision"
                    ),
                    Err(SddsError::StaleRevision { .. }) => {}
                    Err(other) => panic!("stream failed with {other:?}"),
                },
                // The open itself can race the republish window.
                Err(SddsError::StaleRevision { .. }) => {}
                Err(other) => panic!("open failed with {other:?}"),
            }
        }
        stopped.store(true, Ordering::Relaxed);
    });
}
