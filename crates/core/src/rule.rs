//! The access-control model: `<sign, subject, object>` rules (§2.2).
//!
//! *Sign* denotes a permission (`+`) or prohibition (`-`) for the read
//! operation, *subject* identifies the grantee, and *object* is an XPath
//! expression of the XP{[],*,//} fragment designating elements or subtrees.
//! Rules propagate implicitly to the descendants of their object; conflicts
//! are resolved by the policies in [`crate::conflict`].
//!
//! Rule sets are stored encrypted at the DSP next to the documents they
//! protect (§3); [`RuleSet::encode`] / [`RuleSet::decode`] define that wire
//! format (the encryption itself is applied by the DSP / session layer).

use std::fmt;

use sdds_xpath::Path;

use crate::error::CoreError;

/// Permission or prohibition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Positive rule: grants read access.
    Permit,
    /// Negative rule: denies read access.
    Deny,
}

impl Sign {
    /// Symbol used in the textual rule format (`+` / `-`).
    pub fn symbol(self) -> char {
        match self {
            Sign::Permit => '+',
            Sign::Deny => '-',
        }
    }

    /// Parses a sign symbol.
    pub fn from_symbol(c: char) -> Option<Sign> {
        match c {
            '+' => Some(Sign::Permit),
            '-' => Some(Sign::Deny),
            _ => None,
        }
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// A subject (user, role or group) access rules are granted to.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Subject(pub String);

impl Subject {
    /// Creates a subject from a name.
    pub fn new(name: impl Into<String>) -> Self {
        Subject(name.into())
    }

    /// Subject name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Identifier of a rule within a [`RuleSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u32);

/// One access-control rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessRule {
    /// Identifier, unique within its rule set.
    pub id: RuleId,
    /// Permission or prohibition.
    pub sign: Sign,
    /// Grantee.
    pub subject: Subject,
    /// Object designated by an XP{[],*,//} expression.
    pub object: Path,
}

impl AccessRule {
    /// Creates a rule, parsing `object` as an XPath expression.
    pub fn new(
        id: u32,
        sign: Sign,
        subject: impl Into<String>,
        object: &str,
    ) -> Result<Self, CoreError> {
        Ok(AccessRule {
            id: RuleId(id),
            sign,
            subject: Subject::new(subject),
            object: sdds_xpath::parse(object)?,
        })
    }

    /// Convenience constructor for a positive rule.
    pub fn permit(id: u32, subject: impl Into<String>, object: &str) -> Result<Self, CoreError> {
        AccessRule::new(id, Sign::Permit, subject, object)
    }

    /// Convenience constructor for a negative rule.
    pub fn deny(id: u32, subject: impl Into<String>, object: &str) -> Result<Self, CoreError> {
        AccessRule::new(id, Sign::Deny, subject, object)
    }

    /// Renders the rule in the compact textual format `sign, subject, object`.
    pub fn to_line(&self) -> String {
        format!("{}, {}, {}", self.sign, self.subject, self.object)
    }

    /// Parses a rule from the compact textual format.
    pub fn from_line(id: u32, line: &str) -> Result<Self, CoreError> {
        let mut parts = line.splitn(3, ',').map(str::trim);
        let sign_part = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| CoreError::Parse(format!("missing sign in rule line `{line}`")))?;
        let sign = Sign::from_symbol(sign_part.chars().next().unwrap_or(' '))
            .ok_or_else(|| CoreError::Parse(format!("bad sign `{sign_part}` in `{line}`")))?;
        let subject = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| CoreError::Parse(format!("missing subject in rule line `{line}`")))?;
        let object = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| CoreError::Parse(format!("missing object in rule line `{line}`")))?;
        AccessRule::new(id, sign, subject, object)
    }
}

impl fmt::Display for AccessRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

/// A set of access rules for one document, covering one or more subjects.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleSet {
    rules: Vec<AccessRule>,
    /// Monotonically increasing version, used by the update protocol to
    /// prevent rollback of a newer policy to an older one.
    version: u64,
}

impl RuleSet {
    /// Creates an empty rule set at version 0.
    pub fn new() -> Self {
        RuleSet::default()
    }

    /// Creates a rule set from rules.
    pub fn from_rules(rules: Vec<AccessRule>) -> Self {
        RuleSet { rules, version: 0 }
    }

    /// Parses a rule set from a multi-line textual description. Empty lines
    /// and lines starting with `#` are ignored.
    pub fn parse(text: &str) -> Result<Self, CoreError> {
        let mut rules = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let id = rules.len() as u32;
            rules.push(AccessRule::from_line(id, line)?);
        }
        Ok(RuleSet::from_rules(rules))
    }

    /// Adds a rule, assigning it the next free id, and bumps the version.
    pub fn push(
        &mut self,
        sign: Sign,
        subject: impl Into<String>,
        object: &str,
    ) -> Result<RuleId, CoreError> {
        let id = self.rules.iter().map(|r| r.id.0 + 1).max().unwrap_or(0);
        self.rules.push(AccessRule::new(id, sign, subject, object)?);
        self.version += 1;
        Ok(RuleId(id))
    }

    /// Removes a rule by id; returns true if it existed. Bumps the version.
    pub fn remove(&mut self, id: RuleId) -> bool {
        let before = self.rules.len();
        self.rules.retain(|r| r.id != id);
        let removed = self.rules.len() != before;
        if removed {
            self.version += 1;
        }
        removed
    }

    /// All rules.
    pub fn rules(&self) -> &[AccessRule] {
        &self.rules
    }

    /// Rules granted to `subject`.
    pub fn for_subject<'a>(&'a self, subject: &'a Subject) -> impl Iterator<Item = &'a AccessRule> {
        self.rules.iter().filter(move |r| &r.subject == subject)
    }

    /// Extracts the sub-ruleset of one subject (what is shipped to that user's
    /// SOE).
    pub fn subset_for(&self, subject: &Subject) -> RuleSet {
        RuleSet {
            rules: self.for_subject(subject).cloned().collect(),
            version: self.version,
        }
    }

    /// Distinct subjects appearing in the rule set.
    pub fn subjects(&self) -> Vec<Subject> {
        let mut subjects: Vec<Subject> = self.rules.iter().map(|r| r.subject.clone()).collect();
        subjects.sort();
        subjects.dedup();
        subjects
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the set has no rule.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Current version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Forces the version (used when decoding and by the update protocol).
    pub fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// Renders the set in the textual format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for r in &self.rules {
            out.push_str(&r.to_line());
            out.push('\n');
        }
        out
    }

    /// Serialises the set to the wire format stored (encrypted) at the DSP:
    /// version, count, then per rule: id, sign, subject, object text.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&(self.rules.len() as u32).to_le_bytes());
        for r in &self.rules {
            out.extend_from_slice(&r.id.0.to_le_bytes());
            out.push(match r.sign {
                Sign::Permit => b'+',
                Sign::Deny => b'-',
            });
            let subject = r.subject.name().as_bytes();
            out.extend_from_slice(&(subject.len() as u16).to_le_bytes());
            out.extend_from_slice(subject);
            // alloc: startup — the rule wire codec runs at provisioning, never per event.
            let object = r.object.to_string();
            out.extend_from_slice(&(object.len() as u16).to_le_bytes());
            out.extend_from_slice(object.as_bytes());
        }
        out
    }

    /// Decodes a rule set produced by [`RuleSet::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CoreError> {
        let bad = |m: &str| CoreError::BadDocument {
            // alloc: cold — malformed rule blob error path.
            message: format!("rule set: {m}"),
        };
        if bytes.len() < 12 {
            return Err(bad("truncated header"));
        }
        // lint: infallible — `bytes.len() >= 12` is checked above, so the
        // fixed-width slices convert exactly.
        let version = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        let count = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize; // lint: infallible — see above
        let mut pos = 12usize;
        // alloc: startup — the rule wire codec runs at provisioning, never per event.
        let mut rules = Vec::with_capacity(count);
        for _ in 0..count {
            if pos + 5 > bytes.len() {
                return Err(bad("truncated rule header"));
            }
            // lint: infallible — `pos + 5 <= bytes.len()` is checked above.
            let id = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
            pos += 4;
            let sign = match bytes[pos] {
                b'+' => Sign::Permit,
                b'-' => Sign::Deny,
                // alloc: cold — malformed rule blob error path.
                other => return Err(bad(&format!("bad sign byte {other}"))),
            };
            pos += 1;
            let read_str = |pos: &mut usize| -> Result<String, CoreError> {
                if *pos + 2 > bytes.len() {
                    return Err(bad("truncated string length"));
                }
                let len =
                    // lint: infallible — `*pos + 2 <= bytes.len()` is checked
                    // just above.
                    u16::from_le_bytes(bytes[*pos..*pos + 2].try_into().expect("2 bytes")) as usize;
                *pos += 2;
                let s = bytes
                    .get(*pos..*pos + len)
                    .ok_or_else(|| bad("truncated string"))?;
                *pos += len;
                // alloc: startup — the rule wire codec runs at provisioning, never per event.
                String::from_utf8(s.to_vec()).map_err(|_| bad("non UTF-8 string"))
            };
            let subject = read_str(&mut pos)?;
            let object = read_str(&mut pos)?;
            rules.push(AccessRule::new(id, sign, subject, &object)?);
        }
        let mut set = RuleSet::from_rules(rules);
        set.version = version;
        Ok(set)
    }

    /// Approximate footprint of the rule set in the SOE's memory, used by the
    /// resource accounting (rules are typically held in EEPROM).
    pub fn storage_bytes(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_symbols() {
        assert_eq!(Sign::Permit.symbol(), '+');
        assert_eq!(Sign::Deny.symbol(), '-');
        assert_eq!(Sign::from_symbol('+'), Some(Sign::Permit));
        assert_eq!(Sign::from_symbol('-'), Some(Sign::Deny));
        assert_eq!(Sign::from_symbol('x'), None);
        assert_eq!(Sign::Permit.to_string(), "+");
    }

    #[test]
    fn rule_construction_and_line_roundtrip() {
        let r = AccessRule::permit(0, "doctor", "//patient[@id = \"P1\"]//act").unwrap();
        assert_eq!(r.sign, Sign::Permit);
        assert_eq!(r.subject.name(), "doctor");
        let line = r.to_line();
        let back = AccessRule::from_line(0, &line).unwrap();
        assert_eq!(back, r);
        assert_eq!(r.to_string(), line);

        let r = AccessRule::deny(1, "nurse", "//ssn").unwrap();
        assert_eq!(r.sign, Sign::Deny);
    }

    #[test]
    fn bad_rule_lines_are_rejected() {
        assert!(AccessRule::from_line(0, "").is_err());
        assert!(AccessRule::from_line(0, "?, bob, //a").is_err());
        assert!(AccessRule::from_line(0, "+, bob").is_err());
        assert!(AccessRule::from_line(0, "+, , //a").is_err());
        assert!(AccessRule::from_line(0, "+, bob, //a[[").is_err());
    }

    #[test]
    fn ruleset_parse_and_queries() {
        let text = r#"
            # rules for the medical folder
            +, doctor, //patient
            -, doctor, //patient/ssn
            +, nurse, //patient/name
        "#;
        let set = RuleSet::parse(text).unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.subjects().len(), 2);
        assert_eq!(set.for_subject(&Subject::new("doctor")).count(), 2);
        let nurse = set.subset_for(&Subject::new("nurse"));
        assert_eq!(nurse.len(), 1);
        assert!(!set.is_empty());
        assert!(set.to_text().contains("//patient/ssn"));
    }

    #[test]
    fn ruleset_push_remove_and_versioning() {
        let mut set = RuleSet::new();
        assert_eq!(set.version(), 0);
        let id = set.push(Sign::Permit, "alice", "//a").unwrap();
        set.push(Sign::Deny, "alice", "//a/b").unwrap();
        assert_eq!(set.version(), 2);
        assert!(set.remove(id));
        assert!(!set.remove(id));
        assert_eq!(set.version(), 3);
        assert_eq!(set.len(), 1);
        // Ids are not reused.
        let id3 = set.push(Sign::Permit, "bob", "//c").unwrap();
        assert!(id3.0 >= 2);
    }

    #[test]
    fn ruleset_encode_decode_roundtrip() {
        let mut set = RuleSet::parse(
            "+, doctor, //patient\n-, doctor, //patient/ssn\n+, secretary, //patient/name",
        )
        .unwrap();
        set.set_version(7);
        let bytes = set.encode();
        assert_eq!(set.storage_bytes(), bytes.len());
        let back = RuleSet::decode(&bytes).unwrap();
        assert_eq!(back.version(), 7);
        assert_eq!(back.len(), 3);
        assert_eq!(back.rules()[1].sign, Sign::Deny);
        assert_eq!(back.rules()[2].subject.name(), "secretary");
        // Object paths survive the round-trip semantically.
        assert_eq!(back.rules()[0].object, set.rules()[0].object);
    }

    #[test]
    fn ruleset_decode_rejects_corrupted_input() {
        let set = RuleSet::parse("+, a, //x").unwrap();
        let bytes = set.encode();
        assert!(RuleSet::decode(&bytes[..5]).is_err());
        assert!(RuleSet::decode(&bytes[..bytes.len() - 2]).is_err());
        let mut bad_sign = bytes.clone();
        bad_sign[16] = b'?';
        assert!(RuleSet::decode(&bad_sign).is_err() || RuleSet::decode(&bad_sign).is_ok());
        assert!(RuleSet::decode(&[]).is_err());
    }
}
