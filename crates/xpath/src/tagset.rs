//! Static analysis of a path against a tag vocabulary.
//!
//! The skip index stores, for each subtree, "the set of element tags that
//! appear in each subtree (to check whether an access rule automaton is likely
//! to reach its final state)" (§2.3). The check performed by the SOE when it
//! meets a subtree summary is: *could the remaining part of this rule possibly
//! be satisfied inside a subtree containing only these tags?* If not, the rule
//! is filtered out for that subtree; if **no** rule (and no query path) can
//! progress, the subtree is skipped without being transferred or decrypted.
//!
//! This module provides the vocabulary-level half of that test: which tag
//! names a (suffix of a) path still *requires*. The automaton-level half
//! (which states are active, hence which suffixes are relevant) lives in
//! `sdds-core`.

use sdds_xml::{TagDict, TagSet};

use crate::ast::{NodeTest, Path, PredicateTarget};

/// Returns the set of element names that must appear in a subtree for the
/// suffix of `path` starting at `from_step` to be satisfiable inside that
/// subtree. Wildcard steps contribute nothing (they are satisfiable by any
/// element); predicate paths contribute all their named steps because every
/// predicate must eventually hold for the rule to apply.
pub fn required_names_from(path: &Path, from_step: usize) -> Vec<String> {
    let mut out = Vec::new();
    for step in path.steps.iter().skip(from_step) {
        if let NodeTest::Name(n) = &step.test {
            // alloc: startup — path signatures are built once per session.
            out.push(n.clone());
        }
        for pred in &step.predicates {
            match &pred.target {
                PredicateTarget::Path(rel) | PredicateTarget::PathAttribute(rel, _) => {
                    out.extend(required_names_from(rel, 0));
                }
                PredicateTarget::Attribute(_) | PredicateTarget::SelfText => {}
            }
        }
    }
    out
}

/// Returns the set of element names required by the whole path.
pub fn required_names(path: &Path) -> Vec<String> {
    required_names_from(path, 0)
}

/// Converts a list of names into a [`TagSet`] against `dict`. Names missing
/// from the dictionary are reported separately: a required tag that does not
/// exist anywhere in the document means the path can never match at all.
pub fn names_to_tagset(names: &[String], dict: &TagDict) -> (TagSet, Vec<String>) {
    let mut set = TagSet::with_capacity(dict.len());
    let mut missing = Vec::new();
    for n in names {
        match dict.get(n) {
            Some(id) => {
                set.insert(id);
            }
            // alloc: startup — path signatures are built once per session.
            None => missing.push(n.clone()),
        }
    }
    (set, missing)
}

/// Pre-computed satisfiability signature of a path suffix, built once per rule
/// when the SOE session is opened and then checked in O(words) against every
/// subtree summary of the skip index.
#[derive(Debug, Clone)]
pub struct PathSignature {
    /// Tags required by the suffix of the path starting at each step index.
    /// `per_step[i]` covers steps `i..`.
    per_step: Vec<TagSet>,
    /// Step indexes whose suffix mentions a tag absent from the dictionary
    /// (such a suffix can never be satisfied in this document).
    impossible_from: Vec<bool>,
}

impl PathSignature {
    /// Builds the signature of `path` against the document dictionary `dict`.
    pub fn build(path: &Path, dict: &TagDict) -> Self {
        let n = path.steps.len();
        // alloc: startup — path signatures are built once per session.
        let mut per_step = Vec::with_capacity(n);
        // alloc: startup — path signatures are built once per session.
        let mut impossible_from = Vec::with_capacity(n);
        for i in 0..n {
            let names = required_names_from(path, i);
            let (set, missing) = names_to_tagset(&names, dict);
            per_step.push(set);
            impossible_from.push(!missing.is_empty());
        }
        PathSignature {
            per_step,
            impossible_from,
        }
    }

    /// Number of steps covered.
    pub fn len(&self) -> usize {
        self.per_step.len()
    }

    /// True if the signature covers no step.
    pub fn is_empty(&self) -> bool {
        self.per_step.is_empty()
    }

    /// Could the suffix of the path starting at `step` be satisfied inside a
    /// subtree whose element tags are exactly `subtree_tags`?
    ///
    /// `step == len()` (the path is already fully matched) is always
    /// satisfiable. A suffix that requires a tag missing from the whole
    /// document is never satisfiable.
    pub fn satisfiable_in(&self, step: usize, subtree_tags: &TagSet) -> bool {
        if step >= self.per_step.len() {
            return true;
        }
        if self.impossible_from[step] {
            return false;
        }
        subtree_tags.is_superset(&self.per_step[step])
    }

    /// The tags required from `step` onwards (for diagnostics and tests).
    pub fn required_at(&self, step: usize) -> Option<&TagSet> {
        self.per_step.get(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use sdds_xml::TagDict;

    fn dict() -> TagDict {
        TagDict::from_names(["a", "b", "c", "d", "e"])
    }

    #[test]
    fn required_names_cover_steps_and_predicates() {
        let p = parse("//b[c]/d").unwrap();
        assert_eq!(required_names(&p), vec!["b", "c", "d"]);
        assert_eq!(required_names_from(&p, 1), vec!["d"]);
        let p = parse("/a/*//e[@x]").unwrap();
        assert_eq!(required_names(&p), vec!["a", "e"]);
    }

    #[test]
    fn names_to_tagset_reports_missing() {
        let d = dict();
        let (set, missing) = names_to_tagset(&["a".into(), "zz".into()], &d);
        assert_eq!(set.len(), 1);
        assert_eq!(missing, vec!["zz"]);
    }

    #[test]
    fn signature_satisfiability() {
        let d = dict();
        let p = parse("//b[c]/d").unwrap();
        let sig = PathSignature::build(&p, &d);
        assert_eq!(sig.len(), 2);

        // A subtree containing b, c and d can satisfy the whole rule.
        let (all, _) = names_to_tagset(&["b".into(), "c".into(), "d".into()], &d);
        assert!(sig.satisfiable_in(0, &all));

        // A subtree with only b and d cannot (predicate c is missing).
        let (no_c, _) = names_to_tagset(&["b".into(), "d".into()], &d);
        assert!(!sig.satisfiable_in(0, &no_c));

        // Once the b[c] step is matched, only d is needed.
        let (only_d, _) = names_to_tagset(&["d".into()], &d);
        assert!(sig.satisfiable_in(1, &only_d));
        assert!(!sig.satisfiable_in(0, &only_d));

        // A fully matched path is satisfiable anywhere.
        assert!(sig.satisfiable_in(2, &TagSet::new()));
    }

    #[test]
    fn signature_with_unknown_tag_is_never_satisfiable() {
        let d = dict();
        let p = parse("//zz/d").unwrap();
        let sig = PathSignature::build(&p, &d);
        let (all, _) = names_to_tagset(&["b".into(), "c".into(), "d".into()], &d);
        assert!(!sig.satisfiable_in(0, &all));
        // But the suffix after the unknown step only needs d.
        assert!(sig.satisfiable_in(1, &all));
    }

    #[test]
    fn wildcard_only_path_is_always_satisfiable() {
        let d = dict();
        let p = parse("/*//*").unwrap();
        let sig = PathSignature::build(&p, &d);
        assert!(sig.satisfiable_in(0, &TagSet::new()));
        assert!(!sig.is_empty());
        assert!(sig.required_at(0).unwrap().is_empty());
    }
}
