//! Readiness-driven actor engine: tens of thousands of card sessions on a
//! handful of worker threads.
//!
//! The thread scheduler ([`crate::service::SessionScheduler`]) round-robins
//! every live session through a blocking FIFO: a session that is *waiting* —
//! card channel drained, no chunk push pending — is still popped, stepped,
//! and requeued, so the scheduler burns one visit per session per lap
//! whether or not the session can make progress. At hundreds of sessions the
//! waste is noise; at tens of thousands it is the bottleneck (O(sessions)
//! work per lap). The actor engine inverts the control flow: a session is
//! **parked** when its mailbox is drained and re-enqueued only when a new
//! event — an APDU batch, a chunk push — arrives, so the engine does
//! O(changed work) per step, never O(sessions).
//!
//! # Architecture
//!
//! ```text
//!   driver thread ── send(actor, event) ──▶ bounded Mailbox (per actor)
//!                                            │ Parked → Scheduled: enqueue
//!                                            ▼
//!             ┌──────────── injector queue ─────────────┐
//!             │                                          │
//!   ┌─ worker 0 ─┐   ┌─ worker 1 ─┐    ...   ┌─ worker N-1 ─┐
//!   │ local FIFO │◀─▶│ local FIFO │◀──steal──▶│  local FIFO  │
//!   └────────────┘   └────────────┘           └──────────────┘
//!        │ claim: Scheduled → Running, drain ≤ batch events,
//!        ▼ deliver to ActorSession::on_event
//!   post-step: Ready or queued events → requeue (tail of local FIFO)
//!              drained + Parked        → park (no queue holds the id)
//!              Complete / Err          → retire (sends are rejected)
//! ```
//!
//! # Mailbox states
//!
//! Every actor owns one bounded mailbox whose state machine is guarded by a
//! single mutex (see `mailbox.rs`):
//!
//! * **Parked** — no queued events and no run-queue entry; only a send can
//!   wake the actor.
//! * **Scheduled** — the actor's id sits in *exactly one* run queue (a
//!   worker-local FIFO or the shared injector), waiting to be claimed.
//! * **Running** — a worker claimed the id and is delivering events.
//! * **Complete** — the actor retired (completed or failed); sends are
//!   rejected, queued events are dropped, blocked senders are woken.
//!
//! # Park/unpark protocol (no lost wakeup)
//!
//! The park decision and the send race on purpose — and resolve under the
//! same mailbox mutex. A sender pushes its event and, *iff* the state is
//! `Parked`, transitions it to `Scheduled` and enqueues the id. A worker
//! finishing a dispatch re-checks the queue under that same mutex: if a send
//! landed while the actor was `Running`, the queue is non-empty and the
//! worker requeues instead of parking. Either the sender sees `Parked` and
//! enqueues, or the worker sees the event and requeues — an event can never
//! sit in a mailbox whose actor is parked (`actor_park_unpark_never_loses_a_
//! wakeup` model-checks every interleaving of this hand-off).
//!
//! # No double-step
//!
//! An id enters a run queue only on the `Parked → Scheduled` transition (by
//! a sender) or the `Running → Scheduled` transition (by the one worker that
//! was running it), both under the mailbox mutex, and claiming an id is the
//! `Scheduled → Running` transition. The id therefore sits in at most one
//! queue at any time and at most one worker runs a given actor —
//! `actor_under_worker_race_is_stepped_exactly_once` soaks this with racing
//! workers under the model checker.
//!
//! # Fairness guarantee
//!
//! A dispatch delivers at most `batch` events; a still-ready actor is
//! requeued at the **tail** of the stepping worker's local FIFO, and workers
//! drain their local FIFO front-to-back, stealing (again from the front)
//! only when it is empty. Between two dispatches of one actor, every other
//! actor scheduled on that worker is dispatched once — a chatty session
//! cannot starve woken ones (`tests/actor_equivalence.rs` pins this with 1
//! chatty + 100 idle sessions).
//!
//! # Model checking
//!
//! The engine is built entirely on `sdds_sync` primitives (mutexes,
//! condvars, atomics, scoped threads) — no new shim was needed — so the
//! *same* sources run under the `sdds-check` bounded-exhaustive interleaving
//! checker when compiled with `--cfg sdds_check`
//! (`crates/check/tests/actor_invariants.rs`).

pub mod engine;
mod mailbox;

pub use engine::{ActorEngine, ActorHandle, ActorReport, FinishedActor, SendError};
pub use mailbox::MailboxState;

/// What an actor reports after handling an event (or a granted step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActorStatus {
    /// The actor has more self-driven work: re-enqueue it even if its
    /// mailbox is empty (used by the [`crate::service::SessionScheduler`]
    /// compatibility adapter, whose sessions pull rather than react).
    Ready,
    /// The actor is waiting for input: park it once its mailbox drains.
    Parked,
    /// The actor finished; retire it and reject further sends.
    Complete,
}

/// A session the actor engine can drive by events.
///
/// Implementations react to events ([`ActorSession::on_event`]) and may also
/// accept event-less steps ([`ActorSession::on_step`]) when they previously
/// reported [`ActorStatus::Ready`]. An `Err` from either hook retires the
/// actor with the message, exactly like a failing
/// [`crate::service::Schedulable`] step.
pub trait ActorSession: Send {
    /// What the actor's mailbox carries (an APDU batch, a chunk push, …).
    type Event: Send;

    /// Delivers one event; returns the actor's readiness afterwards.
    fn on_event(&mut self, event: Self::Event) -> Result<ActorStatus, String>;

    /// Grants a step with no pending event — only reachable after the actor
    /// reported [`ActorStatus::Ready`] (or when seeded ready, see
    /// [`ActorEngine::run_ready`]).
    fn on_step(&mut self) -> Result<ActorStatus, String>;
}
