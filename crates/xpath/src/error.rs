//! Parse errors for the XPath fragment.

use std::fmt;

/// Error produced when parsing an XPath expression outside the supported
/// XP{[],*,//} fragment, or syntactically malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// Character offset in the expression where the problem was found.
    pub offset: usize,
    /// The expression being parsed.
    pub expression: String,
}

impl ParseError {
    /// Creates a new parse error.
    pub fn new(message: impl Into<String>, offset: usize, expression: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
            offset,
            expression: expression.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XPath parse error at offset {} in `{}`: {}",
            self.offset, self.expression, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offset_and_expression() {
        let e = ParseError::new("unexpected token", 3, "/a[[");
        let s = e.to_string();
        assert!(s.contains("offset 3"));
        assert!(s.contains("/a[["));
        assert!(s.contains("unexpected token"));
    }
}
