//! Shared workload definitions for the SDDS benchmark harness.
//!
//! Every experiment of `EXPERIMENTS.md` (E1–E9) builds its inputs through this
//! module so that the Criterion benches (`benches/e*.rs`) and the table
//! printer (`src/bin/harness.rs`) measure exactly the same configurations.

#![forbid(unsafe_code)]

pub mod workloads;
