//! Self-tests for the model checker: plant known concurrency bugs and assert
//! the bounded-exhaustive search finds each one with a replayable
//! counterexample schedule — plus positive controls proving the fixed
//! variants pass exhaustively.

use sdds_check::shim::sync::{Arc, Condvar, Mutex};
use sdds_check::shim::thread;
use sdds_check::Model;

/// Small bounded model: these bugs all surface within a handful of
/// executions, and the bound keeps the failing tests snappy.
fn model() -> Model {
    Model::new().branches(5_000).preemption_bound(2)
}

// ---------------------------------------------------------------------------
// Planted bug 1: torn two-field update (Mutex misuse).
// ---------------------------------------------------------------------------

/// The writer keeps the invariant `a == b`, but updates the two fields in
/// two *separate* critical sections — a reader scheduled between them sees
/// the pair torn.
#[test]
fn finds_torn_two_field_update() {
    let counterexample = model()
        .check("torn_pair", || {
            let pair = Arc::new((Mutex::new(0u32), Mutex::new(0u32)));
            let writer = Arc::clone(&pair);
            let t = thread::spawn(move || {
                *writer.0.lock().unwrap() += 1;
                // BUG: the invariant a == b is broken here, outside any lock.
                *writer.1.lock().unwrap() += 1;
            });
            let a = *pair.0.lock().unwrap();
            let b = *pair.1.lock().unwrap();
            assert!(!(a == 1 && b == 0), "torn read: a={a} b={b}");
            t.join().unwrap();
        })
        .expect_err("the torn update must be found");
    assert!(
        counterexample.message.contains("torn read"),
        "unexpected failure: {counterexample}"
    );
    assert!(!counterexample.schedule.is_empty());

    // The counterexample replays: the same schedule fails the same way.
    let replayed = model()
        .replay("torn_pair_replay", &counterexample.schedule, || {
            let pair = Arc::new((Mutex::new(0u32), Mutex::new(0u32)));
            let writer = Arc::clone(&pair);
            let t = thread::spawn(move || {
                *writer.0.lock().unwrap() += 1;
                *writer.1.lock().unwrap() += 1;
            });
            let a = *pair.0.lock().unwrap();
            let b = *pair.1.lock().unwrap();
            assert!(!(a == 1 && b == 0), "torn read: a={a} b={b}");
            t.join().unwrap();
        })
        .expect_err("replaying the counterexample schedule must fail again");
    assert!(replayed.message.contains("torn read"), "{replayed}");
}

/// Positive control: one critical section updating both fields — no
/// interleaving tears the pair.
#[test]
fn fixed_two_field_update_passes_exhaustively() {
    let report = model()
        .check("whole_pair", || {
            let pair = Arc::new(Mutex::new((0u32, 0u32)));
            let writer = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let mut p = writer.lock().unwrap();
                p.0 += 1;
                p.1 += 1;
            });
            {
                let p = pair.lock().unwrap();
                assert_eq!(p.0, p.1, "torn read: {p:?}");
            }
            t.join().unwrap();
        })
        .expect("the fixed variant has no failing interleaving");
    assert!(report.exhausted, "search must exhaust: {report:?}");
    assert!(report.executions > 1, "model must actually branch");
}

// ---------------------------------------------------------------------------
// Planted bug 2: lost wakeup (check-then-wait gap).
// ---------------------------------------------------------------------------

/// The waiter checks the flag and *then* re-acquires the lock to wait: the
/// notifier can fire in the gap, and the notification is lost — every
/// remaining thread ends up parked on the condvar.
#[test]
fn finds_lost_wakeup() {
    let counterexample = model()
        .check("lost_wakeup", || {
            let ready = Arc::new((Mutex::new(false), Condvar::new()));
            let setter = Arc::clone(&ready);
            let t = thread::spawn(move || {
                *setter.0.lock().unwrap() = true;
                setter.1.notify_one();
            });
            // BUG: the flag check and the wait are two separate critical
            // sections; a notify in between is lost.
            let was_ready = *ready.0.lock().unwrap();
            if !was_ready {
                let guard = ready.0.lock().unwrap();
                let _guard = ready.1.wait(guard).unwrap();
            }
            t.join().unwrap();
        })
        .expect_err("the lost wakeup must be found");
    assert!(
        counterexample.message.contains("lost wakeup"),
        "expected a lost-wakeup report, got: {counterexample}"
    );

    // Deadlock counterexamples replay too.
    let replayed = model()
        .replay("lost_wakeup_replay", &counterexample.schedule, || {
            let ready = Arc::new((Mutex::new(false), Condvar::new()));
            let setter = Arc::clone(&ready);
            let t = thread::spawn(move || {
                *setter.0.lock().unwrap() = true;
                setter.1.notify_one();
            });
            let was_ready = *ready.0.lock().unwrap();
            if !was_ready {
                let guard = ready.0.lock().unwrap();
                let _guard = ready.1.wait(guard).unwrap();
            }
            t.join().unwrap();
        })
        .expect_err("replaying the lost-wakeup schedule must fail again");
    assert!(replayed.message.contains("lost wakeup"), "{replayed}");
}

/// Positive control: the canonical while-under-one-guard wait never loses
/// the notification.
#[test]
fn fixed_condvar_wait_passes_exhaustively() {
    let report = model()
        .check("condvar_ok", || {
            let ready = Arc::new((Mutex::new(false), Condvar::new()));
            let setter = Arc::clone(&ready);
            let t = thread::spawn(move || {
                *setter.0.lock().unwrap() = true;
                setter.1.notify_one();
            });
            let mut guard = ready.0.lock().unwrap();
            while !*guard {
                guard = ready.1.wait(guard).unwrap();
            }
            drop(guard);
            t.join().unwrap();
        })
        .expect("the fixed variant has no failing interleaving");
    assert!(report.exhausted, "search must exhaust: {report:?}");
}

// ---------------------------------------------------------------------------
// Planted bug 3: AB/BA deadlock.
// ---------------------------------------------------------------------------

#[test]
fn finds_ab_ba_deadlock() {
    let counterexample = model()
        .check("ab_ba", || {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _b = b2.lock().unwrap();
                let _a = a2.lock().unwrap();
            });
            {
                let _a = a.lock().unwrap();
                let _b = b.lock().unwrap();
            }
            t.join().unwrap();
        })
        .expect_err("the AB/BA deadlock must be found");
    assert!(
        counterexample.message.contains("deadlock"),
        "expected a deadlock report, got: {counterexample}"
    );
    assert!(
        counterexample.message.contains("blocked acquiring lock"),
        "report should name the locks: {counterexample}"
    );

    let replayed = model()
        .replay("ab_ba_replay", &counterexample.schedule, || {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _b = b2.lock().unwrap();
                let _a = a2.lock().unwrap();
            });
            {
                let _a = a.lock().unwrap();
                let _b = b.lock().unwrap();
            }
            t.join().unwrap();
        })
        .expect_err("replaying the deadlock schedule must fail again");
    assert!(replayed.message.contains("deadlock"), "{replayed}");
}

/// Positive control: a consistent lock order cannot deadlock.
#[test]
fn consistent_lock_order_passes_exhaustively() {
    let report = model()
        .check("ab_ab", || {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _a = a2.lock().unwrap();
                let _b = b2.lock().unwrap();
            });
            {
                let _a = a.lock().unwrap();
                let _b = b.lock().unwrap();
            }
            t.join().unwrap();
        })
        .expect("consistent lock order has no failing interleaving");
    assert!(report.exhausted, "search must exhaust: {report:?}");
}

// ---------------------------------------------------------------------------
// Engine behaviours the models above rely on.
// ---------------------------------------------------------------------------

/// Counterexamples are deterministic: the same model fails with the same
/// schedule every time (seed-replayable by construction).
#[test]
fn counterexamples_are_deterministic() {
    let run = || {
        model()
            .check("det", || {
                let n = Arc::new(Mutex::new(0u32));
                let n2 = Arc::clone(&n);
                let t = thread::spawn(move || {
                    *n2.lock().unwrap() += 1;
                });
                let seen = *n.lock().unwrap();
                t.join().unwrap();
                assert_eq!(seen, 0, "child ran first");
            })
            .expect_err("one interleaving runs the child first")
    };
    let (first, second) = (run(), run());
    assert_eq!(first.schedule, second.schedule);
    assert_eq!(first.executions, second.executions);
    assert_eq!(first.message, second.message);
}

/// Lost updates through a non-atomic read-modify-write on a shared counter
/// (two threads, RwLock misused as read-then-write) are found.
#[test]
fn finds_lost_update_through_rwlock() {
    use sdds_check::shim::sync::RwLock;
    let counterexample = model()
        .check("lost_update", || {
            let n = Arc::new(RwLock::new(0u32));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                // BUG: read and write are separate lock acquisitions.
                let seen = *n2.read().unwrap();
                *n2.write().unwrap() = seen + 1;
            });
            let seen = *n.read().unwrap();
            *n.write().unwrap() = seen + 1;
            t.join().unwrap();
            assert_eq!(*n.read().unwrap(), 2, "lost update");
        })
        .expect_err("the lost update must be found");
    assert!(
        counterexample.message.contains("lost update"),
        "{counterexample}"
    );
}

/// Scoped threads (the `SessionScheduler` shape) work under the model and
/// join cleanly in every schedule.
#[test]
fn scoped_threads_pass_exhaustively() {
    let report = model()
        .check("scoped", || {
            let total = Mutex::new(0u32);
            thread::scope(|scope| {
                for _ in 0..2 {
                    scope.spawn(|| {
                        *total.lock().unwrap() += 1;
                    });
                }
            });
            assert_eq!(total.into_inner().unwrap(), 2);
        })
        .expect("scoped counter has no failing interleaving");
    assert!(report.exhausted, "search must exhaust: {report:?}");
}

/// The counterexample display carries the schedule and replay instructions.
#[test]
fn counterexample_display_is_actionable() {
    let counterexample = model()
        .check("display", || {
            let flag = Arc::new(Mutex::new(false));
            let flag2 = Arc::clone(&flag);
            let t = thread::spawn(move || {
                *flag2.lock().unwrap() = true;
            });
            assert!(!*flag.lock().unwrap(), "flag flipped early");
            t.join().unwrap();
        })
        .expect_err("one interleaving flips the flag first");
    let text = counterexample.to_string();
    assert!(text.contains("schedule:"), "{text}");
    assert!(text.contains("SDDS_CHECK_REPLAY="), "{text}");
    assert!(text.contains(&counterexample.schedule_string()), "{text}");
}
