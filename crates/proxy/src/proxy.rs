//! The terminal proxy.
//!
//! "A terminal connected to the smart card [...] contains a proxy allowing the
//! applications to communicate easily with the different elements of the
//! architecture through an XML API independent of the underlying protocols
//! (JDBC, APDU)" (§3). [`Terminal`] is that proxy: it speaks the DSP request
//! API on one side and APDUs on the other, and never sees any key or
//! plaintext beyond what the card delivers. Pull-mode evaluation goes through
//! [`Terminal::connect_shared`] and the stepped [`crate::CardSession`]
//! against the shared `DspService` (the only serving path of the workspace);
//! push-mode items are evaluated in place with [`Terminal::evaluate_local`].
//! Applications normally reach this type through the top-level `sdds::Client`
//! facade rather than directly.

use sdds_card::apdu::{fragment_payload, ins, Apdu};
use sdds_card::{CardProfile, CardRuntime, CostLedger, CostModel, LatencyBreakdown};
use sdds_core::engine::{AccessControlApplet, SessionStats};
use sdds_core::rule::Subject;
use sdds_core::secdoc::SecureDocument;
use sdds_core::session::{KeyProvisioning, TrustedServer};
use sdds_core::CoreError;
use sdds_crypto::SecretKey;

/// Errors surfaced by the proxy to applications.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProxyError {
    /// The card refused a command or a budget was exceeded.
    Card(sdds_card::CardError),
    /// A core-level failure (bad document, crypto, ...).
    Core(CoreError),
    /// The proxy and the card disagree on the protocol state.
    Protocol(String),
}

impl std::fmt::Display for ProxyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProxyError::Card(e) => write!(f, "card error: {e}"),
            ProxyError::Core(e) => write!(f, "core error: {e}"),
            ProxyError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ProxyError {}

impl From<sdds_card::CardError> for ProxyError {
    fn from(e: sdds_card::CardError) -> Self {
        ProxyError::Card(e)
    }
}

impl From<CoreError> for ProxyError {
    fn from(e: CoreError) -> Self {
        ProxyError::Core(e)
    }
}

/// A user terminal hosting a smart card.
pub struct Terminal {
    subject: Subject,
    runtime: CardRuntime<AccessControlApplet>,
    /// When true, sessions are opened with the open-world policy (only
    /// negative rules filter content) instead of the paper's closed world.
    open_policy: bool,
}

impl std::fmt::Debug for Terminal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Terminal")
            .field("subject", &self.subject)
            .finish_non_exhaustive()
    }
}

impl Terminal {
    /// Issues a card for `subject` (personalised with `transport_key`) and
    /// plugs it into a terminal.
    pub fn issue_card(
        subject: impl Into<String>,
        transport_key: SecretKey,
        profile: CardProfile,
    ) -> Self {
        let subject = Subject::new(subject);
        let applet = AccessControlApplet::new(subject.name(), transport_key);
        Terminal {
            subject,
            runtime: CardRuntime::new(profile, applet),
            open_policy: false,
        }
    }

    /// Selects the open-world policy for subsequent sessions (dissemination
    /// scenarios where only prohibitions filter the stream).
    pub fn set_open_policy(&mut self, open: bool) {
        self.open_policy = open;
    }

    /// Whether sessions open with the open-world policy.
    pub(crate) fn open_policy(&self) -> bool {
        self.open_policy
    }

    /// The card runtime (used by the stepped shared-DSP session).
    pub(crate) fn runtime_mut(&mut self) -> &mut CardRuntime<AccessControlApplet> {
        &mut self.runtime
    }

    /// Cost model of the hosted card's hardware profile.
    pub fn cost_model(&self) -> CostModel {
        self.runtime.card().profile().cost
    }

    /// The subject this terminal's card belongs to.
    pub fn subject(&self) -> &Subject {
        &self.subject
    }

    /// Disables the skip index on the card (baseline runs).
    pub fn set_use_skip_index(&mut self, enabled: bool) {
        self.runtime.applet_mut().set_use_skip_index(enabled);
    }

    /// Installs a wrapped key on the card.
    pub fn install_key(&mut self, provisioning: &KeyProvisioning) -> Result<(), ProxyError> {
        self.runtime
            .exchange_expect_ok(&Apdu::new(ins::PUT_KEY, 0, 0, provisioning.encode())?)?;
        Ok(())
    }

    /// Installs (or refreshes) the protected rules of this subject, fetched as
    /// an opaque blob (typically from the DSP).
    pub fn install_rules(&mut self, protected_blob: &[u8]) -> Result<(), ProxyError> {
        let fragments = fragment_payload(protected_blob);
        for (i, frag) in fragments.iter().enumerate() {
            let more = u8::from(i + 1 < fragments.len());
            self.runtime
                // alloc: startup — rules travel once per session, at provisioning.
                .exchange_expect_ok(&Apdu::new(ins::PUT_RULES, more, 0, frag.to_vec())?)?;
        }
        Ok(())
    }

    /// Registers a query for the next evaluation sessions.
    pub fn set_query(&mut self, query: &str) -> Result<(), ProxyError> {
        self.runtime.exchange_expect_ok(&Apdu::new(
            ins::PUT_QUERY,
            0,
            0,
            query.as_bytes().to_vec(),
        )?)?;
        Ok(())
    }

    /// Convenience provisioning path against a [`TrustedServer`]: installs the
    /// document key, the rules key and the subject's protected rules.
    pub fn provision_from(&mut self, server: &TrustedServer) -> Result<(), ProxyError> {
        use sdds_core::engine::{DEFAULT_DOC_KEY_ID, RULES_KEY_ID};
        let subject = self.subject.clone();
        self.install_key(&server.provision_document_key(&subject, DEFAULT_DOC_KEY_ID))?;
        self.install_key(&server.provision_rules_key(&subject, RULES_KEY_ID))?;
        self.install_rules(&server.protected_rules_for(&subject).encode())?;
        Ok(())
    }

    /// Evaluates a locally available secure document (push-mode: the item was
    /// broadcast to the terminal, e.g. by a dissemination channel).
    pub fn evaluate_local(&mut self, document: &SecureDocument) -> Result<String, ProxyError> {
        self.runtime.exchange_expect_ok(&Apdu::new(
            ins::OPEN_SESSION,
            0,
            u8::from(self.open_policy),
            document.header.encode(),
        )?)?;
        loop {
            let next = self
                .runtime
                .exchange_expect_ok(&Apdu::simple(ins::NEXT_REQUEST, 0, 0))?;
            if next.len() != 4 {
                return Err(ProxyError::Protocol("bad NEXT_REQUEST response".into()));
            }
            // lint: infallible — the length is checked to be exactly 4 above.
            let index = u32::from_le_bytes(next[..4].try_into().expect("4 bytes"));
            if index == u32::MAX {
                break;
            }
            let chunk = document
                .chunk(index as usize)
                .ok_or_else(|| ProxyError::Protocol(format!("chunk {index} out of range")))?;
            let proof = document.proof(index as usize)?.encode();
            self.push_chunk(index, chunk, &proof)?;
        }
        let view = self.collect_output()?;
        self.runtime
            .exchange_expect_ok(&Apdu::simple(ins::CLOSE_SESSION, 0, 0))?;
        Ok(view)
    }

    /// Pushes one chunk (with its proof) to the card; returns the payload
    /// size shipped, which the batched-channel accounting of the shared
    /// session queues per logical request.
    pub(crate) fn push_chunk(
        &mut self,
        index: u32,
        chunk: &[u8],
        proof: &[u8],
    ) -> Result<usize, ProxyError> {
        // alloc: amortized — one framing buffer per served chunk (index + proof + ciphertext), handed to the APDU layer.
        let mut payload = Vec::with_capacity(6 + proof.len() + chunk.len());
        payload.extend_from_slice(&index.to_le_bytes());
        payload.extend_from_slice(&(proof.len() as u16).to_le_bytes());
        payload.extend_from_slice(proof);
        payload.extend_from_slice(chunk);
        let fragments = fragment_payload(&payload);
        for (i, frag) in fragments.iter().enumerate() {
            let more = u8::from(i + 1 < fragments.len());
            self.runtime.exchange_expect_ok(&Apdu::new(
                ins::PUSH_CHUNK,
                more,
                0,
                // alloc: amortized — an APDU command owns its data: one copy of at most 255 bytes per fragment.
                frag.to_vec(),
            )?)?;
        }
        Ok(payload.len())
    }

    pub(crate) fn collect_output(&mut self) -> Result<String, ProxyError> {
        let mut bytes = Vec::new();
        loop {
            let part = self
                .runtime
                .exchange_expect_ok(&Apdu::simple(ins::GET_OUTPUT, 0, 0))?;
            if part.is_empty() {
                break;
            }
            bytes.extend_from_slice(&part);
        }
        String::from_utf8(bytes).map_err(|_| ProxyError::Protocol("non UTF-8 output".into()))
    }

    /// Card-side cost counters (channel bytes, APDU count, crypto work).
    pub fn card_ledger(&self) -> &CostLedger {
        self.runtime.card().ledger_ref()
    }

    /// Statistics of the card's current or last session, if any.
    pub fn session_stats(&self) -> Option<&SessionStats> {
        self.runtime.applet().session_stats()
    }

    /// Simulated latency of everything exchanged so far under `model`.
    pub fn latency(&self, model: &CostModel) -> LatencyBreakdown {
        self.runtime.card().ledger_ref().breakdown(model)
    }

    /// Peak secure RAM used on the card so far.
    pub fn card_peak_ram(&self) -> usize {
        self.runtime.card().ram_ref().peak()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pki::SimulatedPki;
    use sdds_core::baseline::authorized_view_oracle;
    use sdds_core::conflict::AccessPolicy;
    use sdds_core::rule::RuleSet;
    use sdds_core::secdoc::SecureDocumentBuilder;
    use sdds_dsp::DspService;
    use sdds_xml::generator::{self, GeneratorConfig, HospitalProfile};
    use sdds_xml::writer;
    use std::sync::Arc;

    fn rules() -> RuleSet {
        RuleSet::parse(
            "+, doctor, //patient\n-, doctor, //patient/ssn\n+, secretary, //patient/name",
        )
        .unwrap()
    }

    fn setup() -> (TrustedServer, Arc<DspService>, sdds_xml::Document) {
        let server = TrustedServer::new(b"hospital-2005", rules());
        let doc = generator::hospital(
            &HospitalProfile {
                patients: 3,
                ..HospitalProfile::default()
            },
            &GeneratorConfig::default(),
        );
        let secure = SecureDocumentBuilder::new("folder", server.document_key()).build(&doc);
        let service = DspService::new(1);
        service.put_document(secure);
        for subject in ["doctor", "secretary"] {
            service
                .put_rules(
                    "folder",
                    subject,
                    &server.protected_rules_for(&Subject::new(subject)),
                )
                .unwrap();
        }
        (server, Arc::new(service), doc)
    }

    fn keyed_terminal(server: &TrustedServer, pki: &SimulatedPki, subject: &str) -> Terminal {
        use sdds_core::engine::{DEFAULT_DOC_KEY_ID, RULES_KEY_ID};
        let subj = Subject::new(subject);
        let mut terminal = Terminal::issue_card(
            subject,
            pki.card_transport_key(&subj),
            CardProfile::modern_secure_element(),
        );
        terminal
            .install_key(&server.provision_document_key(&subj, DEFAULT_DOC_KEY_ID))
            .unwrap();
        terminal
            .install_key(&server.provision_rules_key(&subj, RULES_KEY_ID))
            .unwrap();
        terminal
    }

    #[test]
    fn full_pull_flow_matches_the_oracle() {
        let (server, service, doc) = setup();
        let pki = SimulatedPki::new(b"hospital-2005");
        let terminal = keyed_terminal(&server, &pki, "doctor");
        let mut session = terminal.connect_shared(Arc::clone(&service), "folder");
        let view = session.run().unwrap().to_owned();
        let expected = authorized_view_oracle(
            &doc,
            &rules(),
            &Subject::new("doctor"),
            None,
            &AccessPolicy::paper(),
        );
        assert_eq!(view, writer::to_string(&expected));
        assert!(view.contains("<patient"));
        assert!(!view.contains("<ssn>"));
        // Both sides accounted the traffic.
        assert!(service.stats().chunks_served > 0);
        let terminal = session.terminal();
        assert!(terminal.card_ledger().channel.apdu_exchanges > 5);
        assert!(terminal.card_peak_ram() <= CardProfile::modern_secure_element().ram_bytes);
        let latency = terminal.latency(&CostModel::egate());
        assert!(latency.total().as_secs_f64() > 0.0);
    }

    #[test]
    fn query_through_the_proxy() {
        let (server, service, _) = setup();
        let pki = SimulatedPki::new(b"hospital-2005");
        let mut terminal = keyed_terminal(&server, &pki, "doctor");
        terminal.set_query("//patient/name").unwrap();
        let view = terminal
            .connect_shared(service, "folder")
            .run_to_completion()
            .unwrap();
        assert!(view.contains("<name>"));
        assert!(!view.contains("<report>"));
    }

    #[test]
    fn unprovisioned_terminal_cannot_evaluate() {
        let (_, service, _) = setup();
        let pki = SimulatedPki::new(b"hospital-2005");
        let subject = Subject::new("doctor");
        // No keys installed at all: the card refuses the rules it is offered.
        let terminal = Terminal::issue_card(
            "doctor",
            pki.card_transport_key(&subject),
            CardProfile::modern_secure_element(),
        );
        let result = terminal
            .connect_shared(service, "folder")
            .run_to_completion();
        assert!(result.is_err());
        assert!(format!("{}", result.unwrap_err()).contains("refused"));
    }

    #[test]
    fn wrong_community_card_cannot_open_the_document() {
        let (server, service, _) = setup();
        // A card personalised for another community: the provisioning messages
        // of this community do not verify on it.
        let foreign_pki = SimulatedPki::new(b"another-community");
        let subject = Subject::new("doctor");
        let mut terminal = Terminal::issue_card(
            "doctor",
            foreign_pki.card_transport_key(&subject),
            CardProfile::modern_secure_element(),
        );
        assert!(terminal.provision_from(&server).is_err());
        assert!(terminal
            .connect_shared(service, "folder")
            .run_to_completion()
            .is_err());
    }

    #[test]
    fn skip_index_toggle_changes_cost_not_result() {
        let (server, service, _) = setup();
        let pki = SimulatedPki::new(b"hospital-2005");
        let run = |use_index: bool| {
            let mut terminal = keyed_terminal(&server, &pki, "secretary");
            terminal.set_use_skip_index(use_index);
            service.reset_stats();
            let view = terminal
                .connect_shared(Arc::clone(&service), "folder")
                .run_to_completion()
                .unwrap();
            (view, service.stats().bytes_served)
        };
        let (with_view, with_bytes) = run(true);
        let (without_view, without_bytes) = run(false);
        assert_eq!(with_view, without_view);
        assert!(with_bytes <= without_bytes);
    }
}
