#![forbid(unsafe_code)]
//! `sdds-sync` — the one place SDDS service code gets its synchronization
//! primitives from.
//!
//! Concurrent library code in `sdds-dsp` / `sdds-proxy` imports
//! [`sync`] / [`thread`] from this crate instead of `std` (enforced by
//! `sdds-lint`). In a normal build the modules re-export the `std` types
//! unchanged — zero cost, zero behaviour change. Under `--cfg sdds_check`
//! (set via `RUSTFLAGS` by the model-check CI step) they re-export the
//! `sdds-check` shims instead, so the *same* production sources run under
//! the bounded-exhaustive interleaving checker without being forked.
//!
//! The crate also carries the poison-free locking extensions
//! ([`sync::MutexExt`], [`sync::RwLockExt`]) that let library code acquire locks without
//! `unwrap`/`expect` (banned by `sdds-lint` outside tests): the workspace
//! forbids panicking in library code, so a poisoned lock can only result
//! from a panic injected by *caller* code unwinding through a callback —
//! recovering the guard keeps the service serving instead of cascading the
//! caller's panic through every thread that touches the lock.

/// `std::sync` surface (or the `sdds-check` shims under `--cfg sdds_check`).
pub mod sync {
    #[cfg(not(sdds_check))]
    pub use std::sync::{
        Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    };

    #[cfg(sdds_check)]
    pub use sdds_check::shim::sync::{
        Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    };

    /// Atomic types (or the `sdds-check` shims under `--cfg sdds_check`).
    pub mod atomic {
        #[cfg(not(sdds_check))]
        pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

        #[cfg(sdds_check)]
        pub use sdds_check::shim::atomic::{
            AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }

    /// Acquires a `Mutex` without panicking on poison.
    pub trait MutexExt<T> {
        /// Locks, recovering the guard if a previous holder panicked.
        fn lock_np(&self) -> MutexGuard<'_, T>;
    }

    impl<T> MutexExt<T> for Mutex<T> {
        fn lock_np(&self) -> MutexGuard<'_, T> {
            self.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
        }
    }

    /// Acquires an `RwLock` without panicking on poison.
    pub trait RwLockExt<T> {
        /// Read-locks, recovering the guard if a previous holder panicked.
        fn read_np(&self) -> RwLockReadGuard<'_, T>;
        /// Write-locks, recovering the guard if a previous holder panicked.
        fn write_np(&self) -> RwLockWriteGuard<'_, T>;
    }

    impl<T> RwLockExt<T> for RwLock<T> {
        fn read_np(&self) -> RwLockReadGuard<'_, T> {
            self.read().unwrap_or_else(|poisoned| poisoned.into_inner())
        }

        fn write_np(&self) -> RwLockWriteGuard<'_, T> {
            self.write()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
        }
    }
}

/// `std::thread` surface (or the `sdds-check` shims under `--cfg sdds_check`).
pub mod thread {
    #[cfg(not(sdds_check))]
    pub use std::thread::{scope, sleep, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle};

    #[cfg(sdds_check)]
    pub use sdds_check::shim::thread::{
        scope, sleep, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle,
    };
}

#[cfg(test)]
mod tests {
    use super::sync::{Condvar, Mutex, MutexExt, RwLock, RwLockExt};
    use super::thread;

    #[test]
    fn np_locking_round_trips() {
        let m = Mutex::new(7u32);
        *m.lock_np() += 1;
        assert_eq!(*m.lock_np(), 8);

        let rw = RwLock::new(vec![1, 2]);
        rw.write_np().push(3);
        assert_eq!(rw.read_np().len(), 3);
    }

    #[test]
    fn facade_threads_and_condvars_work() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        thread::scope(|scope| {
            scope.spawn(|| {
                *m.lock_np() = true;
                cv.notify_all();
            });
            let mut ready = m.lock_np();
            while !*ready {
                ready = cv
                    .wait(ready)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        });
        assert!(*m.lock_np());
    }
}
