//! Property tests of the fan-out disseminator (experiment E10, push side).
//!
//! The claim the service layer rests on: fanning one published stream out to
//! M subscribers is **observationally identical** to M independent unicast
//! channels — same ciphertext on the wire, same per-subscriber SOE output —
//! while the publisher performs O(1) encryptions per item *regardless of M*
//! (a unicast deployment would re-encrypt per subscriber, or at best repeat
//! the broadcast bytes M times).
//!
//! The publisher (`sdds::proxy::DisseminationChannel`, holds the key) and the
//! DSP-side fan-out (`sdds::dsp::FanOutDisseminator`, ciphertext only) sit on
//! opposite sides of the trust boundary; the split itself is enforced by the
//! `sdds-lint` taint analyzer, and this test pins that the split loses no
//! behaviour.
//!
//! Like `streaming_vs_oracle_properties.rs`, each property runs over
//! `SDDS_PROP_CASES` seeded deterministic cases (default 64; CI 256).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use sdds::core::conflict::AccessPolicy;
use sdds::core::engine::{evaluate_secure_document, EngineConfig};
use sdds::core::evaluator::EvaluatorConfig;
use sdds::core::rule::RuleSet;
use sdds::crypto::SecretKey;
use sdds::dsp::FanOutDisseminator;
use sdds::proxy::DisseminationChannel;
use sdds::xml::generator::{self, GeneratorConfig, StreamProfile};
use sdds::xml::writer;

/// Cases per property: `SDDS_PROP_CASES` when set and parseable, else 64.
fn cases() -> u64 {
    std::env::var("SDDS_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// A random small stream document.
fn random_stream(rng: &mut SmallRng) -> sdds::xml::Document {
    generator::stream(
        &StreamProfile {
            items: rng.gen_range(2usize..7),
            payload_len: rng.gen_range(16usize..200),
            ..StreamProfile::default()
        },
        &GeneratorConfig {
            seed: rng.next_u64(),
            text_len: 8,
        },
    )
}

/// A parental-control subscriber with a random rating threshold: different
/// thresholds give genuinely different SOE outputs across subscribers.
fn subscriber_rules(rng: &mut SmallRng, subject: &str) -> RuleSet {
    let threshold = rng.gen_range(0u32..20);
    RuleSet::parse(&format!("-, {subject}, //item[rating > {threshold}]"))
        .expect("generated rule parses")
}

#[test]
fn fanout_is_byte_identical_to_independent_unicasts() {
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0xFA_0007 + case);
        let stream = random_stream(&mut rng);
        let key = SecretKey::derive(b"fanout-prop", &format!("case-{case}"));
        let subscribers = rng.gen_range(1usize..5);

        // One publisher encrypting once, with the DSP fanning the shared
        // ciphertext out to M subscribers...
        let mut publisher = DisseminationChannel::new("feed", key.clone());
        let mut fanout = FanOutDisseminator::new("feed");
        let members: Vec<(sdds::dsp::service::SubscriberId, RuleSet)> = (0..subscribers)
            .map(|m| {
                let subject = format!("sub{m}");
                let id = fanout.subscribe(&subject);
                (id, subscriber_rules(&mut rng, &subject))
            })
            .collect();
        let published = publisher.publish_all(&stream);
        assert!(published > 0, "case {case}: stream generated no items");
        let delivered = fanout.deliver_all(publisher.published());
        assert_eq!(delivered, published);

        // ...versus M independent unicast channels publishing the same stream.
        for (m, (id, rules)) in members.iter().enumerate() {
            let mut unicast = DisseminationChannel::new("feed", key.clone());
            unicast.publish_all(&stream);
            let received = fanout.drain(*id);
            assert_eq!(
                received.len(),
                unicast.published().len(),
                "case {case}: subscriber {m} item count"
            );
            for (item, uni) in received.iter().zip(unicast.published()) {
                // Same ciphertext, byte for byte: chunks and header.
                assert_eq!(
                    item.document.chunks, uni.document.chunks,
                    "case {case}: ciphertext differs for item {}",
                    item.sequence
                );
                assert_eq!(
                    item.document.header.encode(),
                    uni.document.header.encode(),
                    "case {case}: header differs for item {}",
                    item.sequence
                );
            }

            // Same SOE output for this subscriber on both copies. Byte
            // identity already implies it for every item, so the double
            // evaluation runs on one sampled item per subscriber — enough to
            // catch a future divergence of the two publication paths without
            // doubling the cost of the whole property.
            let sampled = rng.gen_range(0..received.len());
            let subject = format!("sub{m}");
            let view = |doc: &sdds::core::secdoc::SecureDocument| {
                let config = EngineConfig::new(
                    EvaluatorConfig::new(rules.clone(), subject.as_str())
                        .with_policy(AccessPolicy::open()),
                );
                let (events, _) = evaluate_secure_document(doc, &key, config)
                    .expect("subscriber SOE evaluation succeeds");
                writer::to_string(&events)
            };
            assert_eq!(
                view(&received[sampled].document),
                view(&unicast.published()[sampled].document),
                "case {case}: SOE output differs for subscriber {m}, item {sampled}"
            );
        }

        // The O(1)-encryptions invariant: publishing cost is independent of
        // M. The publisher's history counts one encryption per item, and the
        // DSP delivered exactly those allocations (no copy, no re-encrypt).
        assert_eq!(
            publisher.published().len(),
            published,
            "case {case}: fan-out must encrypt once per item, not per subscriber"
        );
        for (p, d) in publisher.published().iter().zip(fanout.delivered()) {
            assert!(
                std::sync::Arc::ptr_eq(p, d),
                "case {case}: DSP must forward the publisher's allocation"
            );
        }
        // And the broadcast medium carries each item once, not M times.
        let mut unicast = DisseminationChannel::new("feed", key.clone());
        unicast.publish_all(&stream);
        assert_eq!(fanout.broadcast_bytes(), unicast.broadcast_bytes());
    }
}
