//! Workloads of the E1–E9 experiments.

use sdds_card::CostModel;
use sdds_core::conflict::AccessPolicy;
use sdds_core::engine::{evaluate_secure_document, EngineConfig, SessionStats};
use sdds_core::evaluator::{EvaluatorConfig, StreamingEvaluator};
use sdds_core::query::Query;
use sdds_core::rule::{RuleSet, Sign};
use sdds_core::secdoc::{SecureDocument, SecureDocumentBuilder};
use sdds_core::skipindex::encode::EncoderConfig;
use sdds_crypto::SecretKey;
use sdds_xml::generator::{self, Corpus, GeneratorConfig};
use sdds_xml::{Document, Event};

/// The community key used by every benchmark document.
pub fn bench_key() -> SecretKey {
    SecretKey::derive(b"sdds-bench", "documents")
}

/// A hospital document of roughly `elements` element nodes.
pub fn hospital(elements: usize) -> Document {
    Corpus::Hospital.generate(elements, &GeneratorConfig::default())
}

/// Builds the secure form of a document with the given chunk size and skip
/// index granularity.
pub fn secure(doc: &Document, chunk_size: usize, min_index_bytes: usize) -> SecureDocument {
    SecureDocumentBuilder::new("bench-doc", bench_key())
        .chunk_size(chunk_size)
        .encoder_config(EncoderConfig {
            min_index_bytes,
            ..EncoderConfig::default()
        })
        .build(doc)
}

/// The medical rule set used throughout the experiments; the subject picks the
/// restrictiveness profile (doctor ≈ permissive, secretary ≈ restrictive).
pub fn medical_rules() -> RuleSet {
    RuleSet::parse(
        "+, doctor, //patient\n\
         -, doctor, //patient/ssn\n\
         +, secretary, //patient/name\n\
         +, secretary, //patient/address\n\
         +, researcher, //diagnosis\n\
         +, auditor, //acts/act[@type = \"surgery\"]/report",
    )
    // lint: infallible — bench inputs are static and valid by construction;
    // a panic here is a harness bug, not a recoverable condition.
    .expect("static rule set parses")
}

/// A synthetic pool of `n` rules of growing variety for one subject, used by
/// the E1 scaling experiment.
pub fn rule_pool(n: usize) -> RuleSet {
    const OBJECTS: &[&str] = &[
        "//patient/name",
        "//patient/ssn",
        "//patient/address",
        "//diagnosis/item",
        "//acts/act/report",
        "//acts/act[@type = \"surgery\"]",
        "//prescriptions/prescription/drug",
        "//patient[diagnosis/item/@sensitive = \"true\"]/name",
        "//act/physician",
        "//act/date",
        "//patient//report",
        "/hospital/patient",
    ];
    let mut rules = RuleSet::new();
    for i in 0..n {
        let sign = if i % 4 == 3 { Sign::Deny } else { Sign::Permit };
        rules
            .push(sign, "subject", OBJECTS[i % OBJECTS.len()])
            // lint: infallible — bench inputs are static and valid by construction;
            // a panic here is a harness bug, not a recoverable condition.
            .expect("pool rule parses");
    }
    rules
}

/// Evaluates a plaintext event stream for one subject (no crypto): the E1/E9
/// kernel.
pub fn evaluate_plain(events: &[Event], rules: &RuleSet, subject: &str) -> usize {
    let config = EvaluatorConfig::new(rules.clone(), subject);
    // lint: infallible — bench inputs are static and valid by construction;
    // a panic here is a harness bug, not a recoverable condition.
    let (out, _) = StreamingEvaluator::evaluate_all(&config, events).expect("evaluation succeeds");
    out.len()
}

/// Runs the full secure pipeline for one subject and returns its statistics.
pub fn run_secure(
    document: &SecureDocument,
    rules: &RuleSet,
    subject: &str,
    query: Option<&str>,
    use_skip_index: bool,
) -> SessionStats {
    let mut evaluator = EvaluatorConfig::new(rules.clone(), subject);
    if let Some(q) = query {
        // lint: infallible — bench inputs are static and valid by construction;
        // a panic here is a harness bug, not a recoverable condition.
        evaluator = evaluator.with_query(Query::parse(q).expect("query parses"));
    }
    let mut config = EngineConfig::new(evaluator);
    config.use_skip_index = use_skip_index;
    let (_, stats) = evaluate_secure_document(document, &bench_key(), config)
        // lint: infallible — bench inputs are static and valid by construction;
        // a panic here is a harness bug, not a recoverable condition.
        .expect("secure evaluation succeeds");
    stats
}

/// Convenience: simulated e-gate latency (seconds) of a session.
pub fn egate_seconds(stats: &SessionStats) -> f64 {
    stats
        .ledger
        .breakdown(&CostModel::egate())
        .total()
        .as_secs_f64()
}

/// A dissemination stream of `items` items.
pub fn stream(items: usize) -> Document {
    generator::stream(
        &generator::StreamProfile {
            items,
            payload_len: 128,
            ..generator::StreamProfile::default()
        },
        &GeneratorConfig::default(),
    )
}

/// Parental-control rules of the dissemination subscriber.
pub fn parental_rules() -> (RuleSet, AccessPolicy) {
    (
        // lint: infallible — bench inputs are static and valid by construction;
        // a panic here is a harness bug, not a recoverable condition.
        RuleSet::parse("-, child, //item[rating > 12]").expect("parses"),
        AccessPolicy::open(),
    )
}

// ---------------------------------------------------------------------------
// E10 — multi-client service workload
// ---------------------------------------------------------------------------

/// Configuration of one E10 multi-client run.
#[derive(Debug, Clone, Copy)]
pub struct MultiClientConfig {
    /// Concurrent card clients (one document pull each).
    pub clients: usize,
    /// Shards of the DSP service store.
    pub shards: usize,
    /// Scheduler worker threads (keep constant across compared runs).
    pub workers: usize,
    /// Chunk requests served per scheduler step.
    pub quantum: usize,
    /// Elements of each per-client hospital document.
    pub doc_elements: usize,
}

impl MultiClientConfig {
    /// The E10 defaults: 4 workers, quantum 8, small per-client folders.
    pub fn new(clients: usize, shards: usize) -> Self {
        MultiClientConfig {
            clients,
            shards,
            workers: 4,
            quantum: 8,
            doc_elements: 40,
        }
    }
}

/// Deterministic outcome of one E10 run.
///
/// Everything here is computed on the workspace's *simulated* clock (byte and
/// event counters times model rates — see `sdds_card::cost`), so the numbers
/// are machine independent: the service side is paced by the busiest shard
/// (shards serve concurrently, each shard serially), the client side by the
/// slowest card (cards run on their own hardware in parallel).
#[derive(Debug, Clone)]
pub struct MultiClientOutcome {
    /// Events evaluated across every card.
    pub total_events: usize,
    /// Simulated serial service time of the busiest shard.
    pub busiest_shard: std::time::Duration,
    /// Per-session simulated latencies (batched channel + card crypto),
    /// sorted ascending.
    pub session_latencies: Vec<std::time::Duration>,
    /// APDU exchanges saved by batching, across sessions.
    pub apdus_saved: usize,
    /// Wall-clock time of the run (informational; not gated).
    pub wall: std::time::Duration,
}

impl MultiClientOutcome {
    /// Slowest per-session simulated latency (the card-side makespan: cards
    /// run in parallel on their own hardware).
    pub fn slowest_session(&self) -> std::time::Duration {
        self.latency_percentile(1.0)
    }

    /// Simulated makespan: the slower of the service side and the card side.
    pub fn makespan(&self) -> std::time::Duration {
        self.busiest_shard.max(self.slowest_session())
    }

    /// Aggregate simulated throughput, events per second.
    pub fn events_per_s(&self) -> f64 {
        let makespan = self.makespan().as_secs_f64();
        if makespan > 0.0 {
            self.total_events as f64 / makespan
        } else {
            0.0
        }
    }

    /// Latency percentile (`p` in `[0, 1]`) across sessions.
    pub fn latency_percentile(&self, p: f64) -> std::time::Duration {
        if self.session_latencies.is_empty() {
            return std::time::Duration::ZERO;
        }
        let rank = ((self.session_latencies.len() - 1) as f64 * p).round() as usize;
        self.session_latencies[rank]
    }
}

/// Runs prepared facade sessions through the scheduler and folds the
/// deterministic outcome (shared by the per-client-folder and hot-document
/// E10 scenarios). Serving statistics must have been reset beforehand so
/// only the scheduled pulls are measured.
fn run_sessions(
    service: &std::sync::Arc<sdds_dsp::DspService>,
    sessions: Vec<sdds::CardSession>,
    workers: usize,
    quantum: usize,
) -> MultiClientOutcome {
    let start = std::time::Instant::now();
    let report = sdds::SessionScheduler::new(workers, quantum).run(sessions);
    let wall = start.elapsed();
    let failures = report.failures();
    assert!(failures.is_empty(), "E10 sessions failed: {failures:?}");

    let model = sdds_card::CardProfile::modern_secure_element().cost;
    let mut total_events = 0usize;
    let mut apdus_saved = 0usize;
    let mut session_latencies: Vec<std::time::Duration> = report
        .finished
        .iter()
        .map(|f| {
            total_events += f.session.terminal().card_ledger().events_processed;
            apdus_saved += f.session.batched_channel().apdus_saved();
            f.session.simulated_latency(&model)
        })
        .collect();
    session_latencies.sort();

    MultiClientOutcome {
        total_events,
        busiest_shard: service.busiest_shard_time(),
        session_latencies,
        apdus_saved,
        wall,
    }
}

/// Runs the E10 multi-client workload **through the `sdds` facade**:
/// `clients` cards, each pulling its own folder from one shared
/// [`sdds_dsp::DspService`], multiplexed by the fair round-robin session
/// scheduler. Subjects rotate doctor / secretary / researcher so per-session
/// work (and therefore latency) is heterogeneous.
///
/// Sessions are built with [`sdds::Client`] (the same entry point
/// applications use), so the gated `e10.*` keys — including the 1-client /
/// 1-shard sanity point — catch any serving overhead the facade introduces.
pub fn multi_client(config: MultiClientConfig) -> MultiClientOutcome {
    use sdds::{CardSession, Client, Publisher};

    const SUBJECTS: &[&str] = &["doctor", "secretary", "researcher"];
    let publisher = Publisher::builder(b"sdds-bench-e10")
        .rules(medical_rules())
        .shards(config.shards)
        .chunk_size(256)
        .build()
        // lint: infallible — bench inputs are static and valid by construction;
        // a panic here is a harness bug, not a recoverable condition.
        .expect("the E10 publisher configuration is valid");
    let doc = Corpus::Hospital.generate(config.doc_elements, &GeneratorConfig::default());
    for i in 0..config.clients {
        publisher
            .publish(&format!("folder-{i}"), &doc)
            // lint: infallible — bench inputs are static and valid by construction;
            // a panic here is a harness bug, not a recoverable condition.
            .expect("publishing the per-client folder");
    }

    let clients: Vec<Client> = (0..config.clients)
        .map(|i| {
            Client::builder(SUBJECTS[i % SUBJECTS.len()])
                .provision(&publisher)
                // lint: infallible — bench inputs are static and valid by construction;
                // a panic here is a harness bug, not a recoverable condition.
                .expect("provisioning the client")
        })
        .collect();
    // Setup (uploads, provisioning) is not part of the measured serving load.
    publisher.service().reset_stats();

    let sessions: Vec<CardSession> = clients
        .iter()
        .enumerate()
        .map(|(i, client)| {
            client
                .connect(format!("folder-{i}"))
                // lint: infallible — bench inputs are static and valid by construction;
                // a panic here is a harness bug, not a recoverable condition.
                .expect("connecting the session")
        })
        .collect();

    run_sessions(
        publisher.service(),
        sessions,
        config.workers,
        config.quantum,
    )
}

/// Configuration of one E10 **hot-document** run: every client pulls the
/// same single document.
#[derive(Debug, Clone, Copy)]
pub struct HotDocumentConfig {
    /// Concurrent card clients, all pulling the one hot document.
    pub clients: usize,
    /// Shards of the DSP service store.
    pub shards: usize,
    /// Serving copies the hot document is pinned to (`1` = the single-copy
    /// baseline: everything queues on the home shard).
    pub replicas: usize,
    /// Scheduler worker threads (keep constant across compared runs).
    pub workers: usize,
    /// Chunk requests served per scheduler step.
    pub quantum: usize,
    /// Elements of the hot hospital document.
    pub doc_elements: usize,
}

impl HotDocumentConfig {
    /// The E10 hot-document defaults: 4 workers, quantum 8, one folder big
    /// enough (~18 chunks at 256-byte chunks) that chunk-index routing can
    /// spread its serving over every replica.
    pub fn new(clients: usize, shards: usize, replicas: usize) -> Self {
        HotDocumentConfig {
            clients,
            shards,
            replicas,
            workers: 4,
            quantum: 8,
            doc_elements: 160,
        }
    }
}

/// Runs the E10 hot-document scenario: `clients` cards all hammer **one**
/// document on a sharded service. With `replicas = 1` every request queues
/// on the document's home shard however many shards exist — the scenario the
/// ROADMAP's "hot-document replication" lever exists for; with `replicas >
/// 1` the publisher pins the document (`Publisher::builder().replicate(n)`)
/// and reads spread deterministically over the copies (chunk index / subject
/// hash picks the copy), so the outcome is byte-deterministic on the
/// simulated clock like every other E10 metric.
pub fn hot_document(config: HotDocumentConfig) -> MultiClientOutcome {
    use sdds::{CardSession, Client, Publisher};

    const SUBJECTS: &[&str] = &["doctor", "secretary", "researcher"];
    let mut builder = Publisher::builder(b"sdds-bench-e10-hot")
        .rules(medical_rules())
        .shards(config.shards)
        .chunk_size(256);
    if config.replicas > 1 {
        builder = builder.replicate(config.replicas);
    }
    let publisher = builder
        .build()
        // lint: infallible — bench inputs are static and valid by construction;
        // a panic here is a harness bug, not a recoverable condition.
        .expect("the E10 hot-document publisher configuration is valid");
    let doc = Corpus::Hospital.generate(config.doc_elements, &GeneratorConfig::default());
    publisher
        .publish("hot-folder", &doc)
        // lint: infallible — bench inputs are static and valid by construction;
        // a panic here is a harness bug, not a recoverable condition.
        .expect("publishing the hot folder");

    let clients: Vec<Client> = (0..config.clients)
        .map(|i| {
            Client::builder(SUBJECTS[i % SUBJECTS.len()])
                .provision(&publisher)
                // lint: infallible — bench inputs are static and valid by construction;
                // a panic here is a harness bug, not a recoverable condition.
                .expect("provisioning the client")
        })
        .collect();
    publisher.service().reset_stats();

    let sessions: Vec<CardSession> = clients
        .iter()
        .map(|client| {
            client
                .connect("hot-folder")
                // lint: infallible — bench inputs are static and valid by construction;
                // a panic here is a harness bug, not a recoverable condition.
                .expect("connecting the session")
        })
        .collect();

    run_sessions(
        publisher.service(),
        sessions,
        config.workers,
        config.quantum,
    )
}
