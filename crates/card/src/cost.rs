//! Cost model and latency accounting of the SOE.
//!
//! The experiments of the paper are dominated by three cost components: the
//! transfer of (parts of) the encrypted document to the card, its decryption
//! and integrity checking inside the card, and the evaluation of the rule
//! automata. Wall-clock time measured on a workstation does not reflect the
//! relative weight of these components on a smart card, so every operation of
//! the embedded engine is *accounted* here and converted to simulated time
//! with per-profile rates. The benches report both the raw counters (exact,
//! hardware independent) and the simulated breakdown.

use std::time::Duration;

use crate::channel::{ChannelMeter, ChannelModel};

/// Throughput parameters of the card's processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Channel parameters.
    pub channel: ChannelModel,
    /// On-card symmetric decryption throughput, bytes per second.
    pub decrypt_bytes_per_second: f64,
    /// On-card hashing (integrity) throughput, bytes per second.
    pub hash_bytes_per_second: f64,
    /// Parsing + automata evaluation throughput, events per second.
    pub events_per_second: f64,
}

impl CostModel {
    /// The e-gate profile of the demo (§3): 2 KB/s channel, a crypto
    /// co-processor around 100 KB/s for 3DES-class decryption, ~50 KB/s
    /// hashing, and an evaluation rate of about 20 000 events/s measured for
    /// the C prototype on the cycle-accurate card simulator of \[2\].
    pub fn egate() -> Self {
        CostModel {
            channel: ChannelModel::egate(),
            decrypt_bytes_per_second: 100_000.0,
            hash_bytes_per_second: 50_000.0,
            events_per_second: 20_000.0,
        }
    }

    /// A modern secure element: faster channel and crypto, same architecture.
    pub fn modern_secure_element() -> Self {
        CostModel {
            channel: ChannelModel::usb(),
            decrypt_bytes_per_second: 5_000_000.0,
            hash_bytes_per_second: 2_000_000.0,
            events_per_second: 500_000.0,
        }
    }

    /// An idealised profile where only the channel costs anything — used to
    /// isolate the transfer-volume benefit of the skip index.
    pub fn channel_only() -> Self {
        CostModel {
            channel: ChannelModel::egate(),
            decrypt_bytes_per_second: f64::INFINITY,
            hash_bytes_per_second: f64::INFINITY,
            events_per_second: f64::INFINITY,
        }
    }
}

fn time_at_rate(amount: f64, rate: f64) -> Duration {
    if rate.is_finite() && rate > 0.0 {
        Duration::from_secs_f64(amount / rate)
    } else {
        Duration::ZERO
    }
}

/// Raw counters accumulated by a card session.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostLedger {
    /// Channel counters.
    pub channel: ChannelMeter,
    /// Bytes decrypted inside the SOE.
    pub bytes_decrypted: usize,
    /// Bytes hashed for integrity checking inside the SOE.
    pub bytes_hashed: usize,
    /// Parsing/evaluation events processed (open + value + close).
    pub events_processed: usize,
    /// Bytes of encrypted document that were *skipped* thanks to the index
    /// (never transferred nor decrypted).
    pub bytes_skipped: usize,
}

impl CostLedger {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Records decryption of `bytes`.
    pub fn record_decrypt(&mut self, bytes: usize) {
        self.bytes_decrypted += bytes;
    }

    /// Records hashing of `bytes`.
    pub fn record_hash(&mut self, bytes: usize) {
        self.bytes_hashed += bytes;
    }

    /// Records `count` evaluation events.
    pub fn record_events(&mut self, count: usize) {
        self.events_processed += count;
    }

    /// Records `bytes` skipped thanks to the index.
    pub fn record_skip(&mut self, bytes: usize) {
        self.bytes_skipped += bytes;
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &CostLedger) {
        self.channel.merge(&other.channel);
        self.bytes_decrypted += other.bytes_decrypted;
        self.bytes_hashed += other.bytes_hashed;
        self.events_processed += other.events_processed;
        self.bytes_skipped += other.bytes_skipped;
    }

    /// Converts the counters to a latency breakdown under `model`.
    pub fn breakdown(&self, model: &CostModel) -> LatencyBreakdown {
        LatencyBreakdown {
            transfer: self.channel.elapsed(&model.channel),
            decryption: time_at_rate(self.bytes_decrypted as f64, model.decrypt_bytes_per_second),
            integrity: time_at_rate(self.bytes_hashed as f64, model.hash_bytes_per_second),
            evaluation: time_at_rate(self.events_processed as f64, model.events_per_second),
        }
    }
}

/// Simulated latency split by cost component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Time on the terminal↔card channel.
    pub transfer: Duration,
    /// Time decrypting inside the SOE.
    pub decryption: Duration,
    /// Time hashing for integrity inside the SOE.
    pub integrity: Duration,
    /// Time parsing and evaluating rule automata.
    pub evaluation: Duration,
}

impl LatencyBreakdown {
    /// Total simulated latency.
    pub fn total(&self) -> Duration {
        self.transfer + self.decryption + self.integrity + self.evaluation
    }

    /// Fraction of the total spent on the channel, in `[0, 1]`.
    pub fn transfer_share(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.transfer.as_secs_f64() / total
        }
    }

    /// Renders a compact `a/b/c/d` millisecond summary for the harness output.
    pub fn summary_ms(&self) -> String {
        format!(
            "transfer {:.1} ms / decrypt {:.1} ms / integrity {:.1} ms / eval {:.1} ms (total {:.1} ms)",
            self.transfer.as_secs_f64() * 1e3,
            self.decryption.as_secs_f64() * 1e3,
            self.integrity.as_secs_f64() * 1e3,
            self.evaluation.as_secs_f64() * 1e3,
            self.total().as_secs_f64() * 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_uses_model_rates() {
        let mut ledger = CostLedger::new();
        ledger.channel.record_exchange(2048, 0);
        ledger.record_decrypt(100_000);
        ledger.record_hash(50_000);
        ledger.record_events(20_000);
        let b = ledger.breakdown(&CostModel::egate());
        // Each component should be roughly one second under the e-gate rates.
        assert!((b.decryption.as_secs_f64() - 1.0).abs() < 1e-9);
        assert!((b.integrity.as_secs_f64() - 1.0).abs() < 1e-9);
        assert!((b.evaluation.as_secs_f64() - 1.0).abs() < 1e-9);
        assert!(b.transfer.as_secs_f64() > 0.9);
        assert!(b.total() > Duration::from_secs(3));
        assert!(b.transfer_share() > 0.2 && b.transfer_share() < 0.3);
        assert!(b.summary_ms().contains("total"));
    }

    #[test]
    fn channel_only_model_ignores_cpu_costs() {
        let mut ledger = CostLedger::new();
        ledger.record_decrypt(1 << 20);
        ledger.record_events(1 << 20);
        ledger.record_hash(1 << 20);
        let b = ledger.breakdown(&CostModel::channel_only());
        assert_eq!(b.decryption, Duration::ZERO);
        assert_eq!(b.evaluation, Duration::ZERO);
        assert_eq!(b.integrity, Duration::ZERO);
    }

    #[test]
    fn ledgers_merge_componentwise() {
        let mut a = CostLedger::new();
        a.record_decrypt(10);
        a.record_skip(5);
        a.channel.record_exchange(1, 2);
        let mut b = CostLedger::new();
        b.record_decrypt(20);
        b.record_events(7);
        a.merge(&b);
        assert_eq!(a.bytes_decrypted, 30);
        assert_eq!(a.events_processed, 7);
        assert_eq!(a.bytes_skipped, 5);
        assert_eq!(a.channel.total_bytes(), 3);
    }

    #[test]
    fn modern_profile_is_faster_than_egate() {
        let mut ledger = CostLedger::new();
        ledger.channel.record_exchange(100_000, 1000);
        ledger.record_decrypt(100_000);
        ledger.record_events(50_000);
        let old = ledger.breakdown(&CostModel::egate()).total();
        let new = ledger
            .breakdown(&CostModel::modern_secure_element())
            .total();
        assert!(new < old);
    }

    #[test]
    fn empty_ledger_has_zero_breakdown() {
        let b = CostLedger::new().breakdown(&CostModel::egate());
        assert_eq!(b.total(), Duration::ZERO);
        assert_eq!(b.transfer_share(), 0.0);
    }
}
