//! Demo application 1: collaborative work within a community (pull mode),
//! through the facade-based workspace of `sdds::apps::collab`.
//!
//! Run with: `cargo run --example collaborative_community`

use sdds::apps::collab::CollaborativeWorkspace;
use sdds::{CardProfile, RuleSet, SddsError, Sign};
use sdds_xml::generator::{self, CommunityProfile, GeneratorConfig};

fn main() -> Result<(), SddsError> {
    let document = generator::community(
        &CommunityProfile {
            members: 4,
            ..CommunityProfile::default()
        },
        &GeneratorConfig::default(),
    );

    // Initial sharing policy of the research team.
    let rules = RuleSet::parse(
        "+, lead, /community\n\
         +, member, //project/title\n\
         +, member, //member/name\n\
         -, member, //meeting[@private = \"true\"]\n\
         +, guest, //project[@status = \"active\"]/title",
    )?;

    let mut workspace = CollaborativeWorkspace::new(
        b"research-team-2005",
        "team-workspace",
        &document,
        rules,
        CardProfile::modern_secure_element(),
    )?;

    println!("community members with rules: {:?}", workspace.members());

    for member in ["lead", "member", "guest"] {
        let access = workspace.access(member, None)?;
        println!(
            "\n=== {member} === ({} bytes fetched from the DSP, latency {})",
            access.bytes_from_dsp,
            access.latency.summary_ms()
        );
        let preview: String = access.view.chars().take(240).collect();
        println!("{preview}...");
    }

    // The collaboration evolves: the guest becomes a partner on budgets.
    println!("\n-- policy change: guests may now read project budgets --");
    workspace.grant("guest", Sign::Permit, "//project/budget")?;
    let access = workspace.access("guest", None)?;
    println!(
        "guest view now includes budgets: {}",
        access.view.contains("<budget>")
    );
    println!(
        "and the stored encrypted document is unchanged (revision {})",
        workspace
            .publisher()
            .service()
            .revision("team-workspace")
            .expect("workspace is stored")
    );

    // Pull with a query: only the agenda of the community.
    let access = workspace.access("lead", Some("//agenda"))?;
    println!(
        "\nlead queried //agenda: {} bytes of authorized result",
        access.view.len()
    );
    Ok(())
}
