//! Smart-card Secure Operating Environment (SOE) emulator.
//!
//! The demonstrator of the paper runs on an Axalto e-gate smart card: "a
//! powerful CPU and strong security features but still a limited memory (only
//! 1 KB of RAM available for on-board applications) and a low bandwidth
//! (2KB/s)" (§3). Reproducing the experiments does not require the silicon —
//! it requires the three constraints the silicon imposes, all of which this
//! crate models explicitly:
//!
//! * [`resources`] — a secure working-memory (RAM) budget and an EEPROM budget
//!   that the embedded engine must never exceed (overruns are hard errors),
//! * [`channel`] — the APDU communication channel with its bandwidth, per-APDU
//!   latency and maximum payload, plus byte counters,
//! * [`cost`] — a cost model converting bytes transferred / decrypted / hashed
//!   and events evaluated into a simulated latency breakdown,
//! * [`apdu`] — the Application Protocol Data Unit encoding used between the
//!   terminal proxy and the card,
//! * [`card`] — the card runtime tying the above together and hosting an
//!   [`card::Applet`] (the access-control engine of `sdds-core`).

#![forbid(unsafe_code)]

pub mod apdu;
pub mod card;
pub mod channel;
pub mod cost;
pub mod error;
pub mod resources;

pub use apdu::{Apdu, ApduResponse, StatusWord};
pub use card::{Applet, CardProfile, CardRuntime, SmartCard};
pub use channel::{BatchedChannel, ChannelMeter, ChannelModel};
pub use cost::{CostLedger, CostModel, LatencyBreakdown};
pub use error::CardError;
pub use resources::{EepromBudget, RamBudget};
