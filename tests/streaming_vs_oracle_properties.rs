//! Property-based tests: the streaming evaluator (the paper's contribution)
//! must agree with the tree-based oracle on randomly generated documents and
//! randomly generated rule sets of the XP{[],*,//} fragment, and the secure
//! pipeline must preserve that equivalence.

use proptest::prelude::*;

use sdds_core::baseline::authorized_view_oracle;
use sdds_core::conflict::AccessPolicy;
use sdds_core::engine::{evaluate_secure_document, EngineConfig};
use sdds_core::evaluator::{EvaluatorConfig, StreamingEvaluator};
use sdds_core::rule::{RuleSet, Sign, Subject};
use sdds_core::secdoc::SecureDocumentBuilder;
use sdds_crypto::SecretKey;
use sdds_xml::generator::{self, GeneratorConfig, RandomProfile};
use sdds_xml::{writer, Document};

/// Strategy generating a random document from the bounded-vocabulary profile.
fn document_strategy() -> impl Strategy<Value = Document> {
    (1usize..120, 2usize..7, 1usize..5, 2usize..7, any::<u64>()).prop_map(
        |(elements, depth, fanout, vocabulary, seed)| {
            generator::random(
                &RandomProfile {
                    elements,
                    max_depth: depth,
                    max_fanout: fanout,
                    vocabulary,
                    text_probability: 0.6,
                },
                &GeneratorConfig {
                    seed,
                    text_len: 8,
                },
            )
        },
    )
}

/// Strategy generating a random rule object within the streaming fragment over
/// the `t0..t5` vocabulary of the random generator (plus the root tag).
fn path_strategy() -> impl Strategy<Value = String> {
    let name = prop_oneof![
        Just("root".to_owned()),
        (0u8..6).prop_map(|i| format!("t{i}")),
        Just("*".to_owned()),
    ];
    let axis = prop_oneof![Just("/".to_owned()), Just("//".to_owned())];
    let predicate = prop_oneof![
        Just(String::new()),
        (0u8..6).prop_map(|i| format!("[t{i}]")),
        Just("[.]".to_owned()),
    ];
    let step = (axis, name, predicate).prop_map(|(a, n, p)| format!("{a}{n}{p}"));
    prop::collection::vec(step, 1..4).prop_map(|steps| {
        let mut s: String = steps.concat();
        if !s.starts_with('/') {
            s.insert(0, '/');
        }
        s
    })
}

fn rules_strategy() -> impl Strategy<Value = RuleSet> {
    prop::collection::vec((path_strategy(), any::<bool>()), 0..6).prop_map(|entries| {
        let mut rules = RuleSet::new();
        for (path, permit) in entries {
            let sign = if permit { Sign::Permit } else { Sign::Deny };
            // Paths from the strategy are always parseable members of the
            // fragment; push cannot fail.
            rules.push(sign, "user", &path).expect("generated rule parses");
        }
        rules
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The streaming evaluator and the tree oracle produce identical views.
    #[test]
    fn streaming_matches_oracle(doc in document_strategy(), rules in rules_strategy(), open in any::<bool>()) {
        let policy = if open { AccessPolicy::open() } else { AccessPolicy::paper() };
        let config = EvaluatorConfig::new(rules.clone(), "user").with_policy(policy);
        let events = doc.to_events();
        let (streaming, stats) = StreamingEvaluator::evaluate_all(&config, &events).unwrap();
        let oracle = authorized_view_oracle(&doc, &rules, &Subject::new("user"), None, &policy);
        prop_assert_eq!(writer::to_string(&streaming), writer::to_string(&oracle));
        prop_assert_eq!(stats.events_in, events.len());
    }

    /// Encrypt → skip-index → decrypt → evaluate gives the same view as
    /// evaluating the plaintext, for any rules, with and without the index.
    #[test]
    fn secure_pipeline_matches_plaintext_evaluation(
        doc in document_strategy(),
        rules in rules_strategy(),
        use_index in any::<bool>(),
    ) {
        prop_assume!(doc.root().is_some());
        let key = SecretKey::derive(b"prop", "doc");
        let secure = SecureDocumentBuilder::new("prop-doc", key.clone())
            .chunk_size(128)
            .build(&doc);
        let mut config = EngineConfig::new(EvaluatorConfig::new(rules.clone(), "user"));
        config.use_skip_index = use_index;
        let (view, _) = evaluate_secure_document(&secure, &key, config).unwrap();
        let oracle = authorized_view_oracle(
            &doc,
            &rules,
            &Subject::new("user"),
            None,
            &AccessPolicy::paper(),
        );
        prop_assert_eq!(writer::to_string(&view), writer::to_string(&oracle));
    }

    /// The authorized view is always a well-formed fragment and never leaks
    /// text from elements the oracle says are not delivered.
    #[test]
    fn views_are_well_formed_and_monotone(doc in document_strategy(), rules in rules_strategy()) {
        let config = EvaluatorConfig::new(rules.clone(), "user");
        let events = doc.to_events();
        let (view, _) = StreamingEvaluator::evaluate_all(&config, &events).unwrap();
        if !view.is_empty() {
            prop_assert!(sdds_xml::event::is_well_formed(&view));
        }
        // Adding a permit-everything rule can only grow the view.
        let mut wider = rules.clone();
        wider.push(Sign::Permit, "user", "/*").unwrap();
        let config = EvaluatorConfig::new(wider, "user");
        let (wider_view, _) = StreamingEvaluator::evaluate_all(&config, &events).unwrap();
        prop_assert!(wider_view.len() >= view.len());
    }
}
