//! Minimal, deterministic, dependency-free stand-in for the parts of the
//! `rand` crate this workspace uses. The build environment has no network
//! access to crates.io, so the workspace vendors this stub instead of the
//! real crate. Only `rngs::SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer ranges (`a..b` and `a..=b`), and
//! `Rng::gen_bool` are provided — exactly the surface `sdds-xml`'s corpus
//! generators call.
//!
//! The generator is SplitMix64, which passes the statistical bar needed for
//! synthetic-document shaping (it is NOT cryptographic; the workspace's
//! cryptography lives in `sdds-crypto` and never draws from here).

use std::ops::{Range, RangeInclusive};

/// Integer types that [`Rng::gen_range`] can draw uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// `end - start` as a `u64` (ranges used here always fit).
    fn diff(end: Self, start: Self) -> u64;
    /// `start + offset`.
    fn add_offset(start: Self, offset: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn diff(end: Self, start: Self) -> u64 {
                end.wrapping_sub(start) as u64
            }
            fn add_offset(start: Self, offset: u64) -> Self {
                start.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_sample_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Range shapes accepted by [`Rng::gen_range`]: `a..b` and `a..=b`.
pub trait SampleRange<T: SampleUniform> {
    /// Number of representable values, or `None` for an empty range.
    fn span(&self) -> Option<u64>;
    fn start(&self) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn span(&self) -> Option<u64> {
        if self.end <= self.start {
            return None;
        }
        Some(T::diff(self.end, self.start))
    }
    fn start(&self) -> T {
        self.start
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn span(&self) -> Option<u64> {
        if self.end() < self.start() {
            return None;
        }
        // checked_add catches the full-domain `0..=u64::MAX` edge.
        T::diff(*self.end(), *self.start()).checked_add(1)
    }
    fn start(&self) -> T {
        *self.start()
    }
}

/// Subset of `rand::Rng` used by the workspace.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `a..b` or `a..=b`. Panics on an empty range, like
    /// the real crate.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let span = range.span().expect("cannot sample empty range");
        T::add_offset(range.start(), self.next_u64() % span)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Subset of `rand::SeedableRng` used by the workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    // The empty range is the point of the test: the panic message is the API.
    #[allow(clippy::reversed_empty_ranges)]
    fn reversed_range_panics() {
        let mut rng = SmallRng::seed_from_u64(3);
        rng.gen_range(5i32..3);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
